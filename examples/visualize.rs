//! Visualize: render a benchmark's global placement and its legalized
//! result as SVG files, with displacement vectors.
//!
//! ```text
//! cargo run --release --example visualize -- des_perf_b_md1 0.01 /tmp/rlleg_viz
//! ```

use rlleg_suite::design::viz::{render_svg, SvgOptions};
use rlleg_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "des_perf_b_md1".to_owned());
    let scale: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.01);
    let out_dir = std::path::PathBuf::from(
        args.next()
            .unwrap_or_else(|| std::env::temp_dir().join("rlleg_viz").display().to_string()),
    );
    std::fs::create_dir_all(&out_dir)?;

    let spec = find_spec(&name).ok_or("unknown benchmark (see `rlleg bench-list`)")?;
    let mut design = generate(&spec.scaled(scale));
    println!(
        "{}: {} cells, density {:.2}",
        design.name,
        design.num_movable(),
        design.density()
    );

    let opts = SvgOptions::default();
    let gp_path = out_dir.join(format!("{name}_global.svg"));
    std::fs::write(&gp_path, render_svg(&design, &opts))?;
    println!("wrote {}", gp_path.display());

    let mut lg = Legalizer::new(&design);
    let stats = lg.run(&mut design, &Ordering::SizeDescending);
    println!(
        "legalized {} cells ({} failed): {}",
        stats.legalized,
        stats.failed.len(),
        Qor::measure(&design)
    );

    let legal_path = out_dir.join(format!("{name}_legalized.svg"));
    let vec_opts = SvgOptions {
        displacement_vectors: true,
        ..SvgOptions::default()
    };
    std::fs::write(&legal_path, render_svg(&design, &vec_opts))?;
    println!("wrote {} (with displacement vectors)", legal_path.display());
    Ok(())
}
