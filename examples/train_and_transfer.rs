//! Train-and-transfer: the paper's deployment scheme. Train one shared
//! cell-priority model on several benchmarks, save it to JSON, reload it,
//! and apply the frozen model to a design it has never seen.
//!
//! ```text
//! cargo run --release --example train_and_transfer
//! ```

use rl_legalizer::{train, CellWiseNet, RlConfig, RlLegalizer};
use rlleg_bench::run_size_ordered;
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::{legality, metrics::Qor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Training set: three small OpenCores-style designs.
    let train_designs: Vec<_> = ["mc_top", "sasc_top", "spi_top"]
        .iter()
        .map(|name| generate(&find_spec(name).expect("spec").scaled(0.5)))
        .collect();
    for d in &train_designs {
        println!("train design {}: {} cells", d.name, d.num_movable());
    }

    // 2. Train the shared model.
    let cfg = RlConfig {
        episodes: 45,
        agents: 4,
        hidden_dim: 48,
        ..RlConfig::tuned()
    };
    let result = train(&train_designs, &cfg);
    println!(
        "trained {} episodes across {} agents",
        result.history.len(),
        cfg.agents
    );

    // 3. Persist and reload (what a real flow would ship).
    let path = std::env::temp_dir().join("rl_legalizer_model.json");
    std::fs::write(&path, result.best_model.to_json()?)?;
    let loaded = CellWiseNet::from_json(&std::fs::read_to_string(&path)?)?;
    println!("model saved/reloaded via {}", path.display());

    // 4. Transfer to a held-out design.
    let test = generate(&find_spec("usb_phy").expect("spec"));
    println!(
        "\ntest design {}: {} cells (never trained on)",
        test.name,
        test.num_movable()
    );
    let (_, baseline) = run_size_ordered(&test, true);
    println!(
        "size-ordered [26]: avg_disp={:.0} max_disp={} hpwl={}",
        baseline.avg_disp, baseline.max_disp, baseline.hpwl
    );
    let mut ours = test.clone();
    let report = RlLegalizer::new(loaded).legalize(&mut ours);
    assert!(legality::is_legal(&ours) || !report.is_complete());
    let q = Qor::measure(&ours);
    println!("RL-Legalizer:      {q}");
    println!(
        "transfer inference: {:.1} ms total, {:.1} ms features, {:.1} ms network",
        report.total_time.as_secs_f64() * 1e3,
        report.feature_time.as_secs_f64() * 1e3,
        report.network_time.as_secs_f64() * 1e3
    );
    Ok(())
}
