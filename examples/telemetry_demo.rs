//! End-to-end telemetry tour: enable the subsystem, install a JSONL event
//! journal, train briefly, run trained-model inference, and dump the merged
//! snapshot — every instrumented layer (legalizer, trainer, inference, DRC)
//! shows up in one report.
//!
//! ```text
//! cargo run --release --example telemetry_demo
//! ```

use rlleg_suite::prelude::*;
use rlleg_suite::telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::enable();
    let journal_path = std::env::temp_dir().join("rlleg_telemetry_demo.jsonl");
    let file = std::fs::File::create(&journal_path)?;
    telemetry::install_journal(telemetry::Journal::new(file, 1024));

    // A small design, a short training run, then frozen-policy inference.
    let spec = find_spec("usb_phy")
        .ok_or("unknown benchmark")?
        .scaled(0.05);
    let design = generate(&spec);
    println!(
        "design {}: {} movable cells",
        design.name,
        design.num_movable()
    );

    let cfg = RlConfig {
        episodes: 4,
        agents: 2,
        ..RlConfig::tuned()
    };
    let result = train(std::slice::from_ref(&design), &cfg);
    telemetry::emit(telemetry::Event::new("demo.trained").with("episodes", cfg.episodes as u64));

    let mut legalized = design.clone();
    let report = RlLegalizer::new(result.model).legalize(&mut legalized);
    println!(
        "inference: {} legalized, {} failed, {:.1} ms total ({:.0} % in features)",
        report.legalized,
        report.failed.len(),
        report.total_time.as_secs_f64() * 1e3,
        100.0 * report.feature_time.as_secs_f64() / report.total_time.as_secs_f64().max(1e-12)
    );
    assert!(legality::is_legal(&legalized));

    // Merge every shard into one serializable snapshot.
    let snap = telemetry::snapshot();
    println!("\ncounters:");
    for (name, v) in &snap.counters {
        println!("  {name:<40} {v}");
    }
    println!("histograms (count / p50 / p95):");
    for (name, h) in &snap.histograms {
        println!(
            "  {name:<40} {:>8} {:>12.4} {:>12.4}",
            h.count,
            h.quantile(0.5),
            h.quantile(0.95)
        );
    }
    if let Some(j) = telemetry::take_journal() {
        let dropped = j.finish();
        println!("journal: {} ({dropped} dropped)", journal_path.display());
    }
    Ok(())
}
