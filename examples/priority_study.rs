//! Priority study: how much does the legalization order matter? Runs one
//! benchmark under every built-in ordering (size-descending, x-ascending,
//! many random seeds) plus the baseline heuristics, and prints the QoR
//! spread — the experiment behind the paper's Fig. 1 motivation, on any
//! design you pick.
//!
//! ```text
//! cargo run --release --example priority_study -- des3 0.02
//! ```

use rlleg_benchgen::{find_spec, generate};
use rlleg_design::metrics::Qor;
use rlleg_legalize::{Legalizer, Ordering};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "des3".to_owned());
    let scale: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.01);

    let spec = find_spec(&name).ok_or("unknown benchmark; see rlleg_benchgen::training_suite")?;
    let design = generate(&spec.scaled(scale));
    println!(
        "{} @ scale {scale}: {} cells, density {:.2}\n",
        name,
        design.num_movable(),
        design.density()
    );

    let run = |label: &str, ordering: &Ordering, heuristics: bool| {
        let mut d = design.clone();
        let mut lg = Legalizer::new(&d);
        let stats = lg.run(&mut d, ordering);
        if heuristics {
            lg.swap_pass(&mut d);
            lg.rearrange_pass(&mut d);
        }
        let q = Qor::measure(&d);
        println!(
            "{label:<26} avg={:8.1} max={:7} hpwl={:10} {}",
            q.avg_displacement,
            q.max_displacement,
            q.hpwl,
            if stats.is_complete() { "" } else { "FAILED" }
        );
        q
    };

    run("size-descending", &Ordering::SizeDescending, false);
    run("size-descending + heur", &Ordering::SizeDescending, true);
    run("x-ascending", &Ordering::XAscending, false);

    let mut avg = Vec::new();
    for seed in 0..12 {
        let q = run(
            &format!("random(seed={seed})"),
            &Ordering::Random(seed),
            false,
        );
        if q.is_complete() {
            avg.push(q.avg_displacement);
        }
    }
    if !avg.is_empty() {
        let best = avg.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = avg.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "\nrandom-order avg-displacement spread: best {best:.1} .. worst {worst:.1} ({:.0}% swing)",
            100.0 * (worst - best) / best
        );
    }
    Ok(())
}
