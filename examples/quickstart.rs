//! Quickstart: build a small mixed-height design, legalize it with the
//! size-ordered baseline, train a short RL-Legalizer run, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rl_legalizer::{train, RlConfig, RlLegalizer};
use rlleg_design::{legality, metrics::Qor, DesignBuilder, Technology};
use rlleg_geom::Point;
use rlleg_legalize::{Legalizer, Ordering};

fn main() {
    // 1. Build a design by hand: a 60x12 core with a macro and an
    //    overlapping "global placement" of 80 mixed-height cells.
    let mut b = DesignBuilder::new("quickstart", Technology::contest(), 60, 12);
    b.add_fixed_cell("ram_macro", 10, 4, Point::new(4_000, 8_000));
    let mut prev = None;
    for i in 0..80i64 {
        let w = 1 + i % 3;
        let h = 1 + u8::from(i % 7 == 0) + u8::from(i % 13 == 0);
        let x = (i * 433) % 9_500;
        let y = (i * 3_641) % 21_000;
        let id = b.add_cell(format!("u{i}"), w, h, Point::new(x, y));
        if let Some(p) = prev {
            b.add_net(format!("n{i}"), vec![(p, 0, 0), (id, 0, 0)]);
        }
        prev = Some(id);
    }
    let design = b.build();
    println!(
        "design: {} movable cells, density {:.2}, {} nets",
        design.num_movable(),
        design.density(),
        design.num_nets()
    );

    // 2. Baseline: the size-ordered sequential legalizer.
    let mut baseline = design.clone();
    let mut lg = Legalizer::new(&baseline);
    let stats = lg.run(&mut baseline, &Ordering::SizeDescending);
    assert!(stats.is_complete());
    assert!(
        legality::is_legal(&baseline),
        "the checker agrees it is legal"
    );
    println!("size-ordered: {}", Qor::measure(&baseline));

    // 3. Train RL-Legalizer briefly on this design (tuned laptop config).
    let cfg = RlConfig {
        episodes: 40,
        agents: 2,
        hidden_dim: 32,
        ..RlConfig::tuned()
    };
    let result = train(std::slice::from_ref(&design), &cfg);
    println!(
        "trained {} episodes; best training episode: {}",
        result.history.len(),
        result
            .best_for_design("quickstart")
            .map(|s| s.qor)
            .expect("trained")
    );

    // 4. Apply the learned priority to a fresh copy.
    let mut ours = design.clone();
    let report = RlLegalizer::new(result.best_model).legalize(&mut ours);
    assert!(report.is_complete());
    assert!(legality::is_legal(&ours));
    println!("RL-ordered:   {}", Qor::measure(&ours));
    println!(
        "inference took {:.1} ms ({:.0}% feature extraction)",
        report.total_time.as_secs_f64() * 1e3,
        100.0 * report.feature_time.as_secs_f64() / report.total_time.as_secs_f64().max(1e-12)
    );
}
