//! Hyperparameter search with Bayesian optimization (Sec. III-E-3).
//!
//! The paper tunes the learning rate, discount factor, batch size, and
//! loss coefficients with a GP-based Bayesian optimizer capped at 50
//! iterations. This example runs the same loop at laptop scale: each
//! iteration trains briefly on a small benchmark and scores the resulting
//! policy's legalization cost.
//!
//! ```text
//! cargo run --release --example hyperparameter_search -- 10
//! ```

use rlleg_suite::bayesopt::BayesOpt;
use rlleg_suite::design::metrics::{legalization_cost, total_hpwl};
use rlleg_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10);

    let design = generate(&find_spec("spi_top").expect("table row").scaled(0.4));
    let hpwl_gp = total_hpwl(&design);
    println!(
        "tuning on {} ({} cells), {iterations} iterations\n",
        design.name,
        design.num_movable()
    );

    // Search space: (log10 learning rate, discount factor, entropy coeff),
    // a subset of the paper's five-dimensional search.
    let mut opt = BayesOpt::new(vec![(-4.5, -2.5), (0.9, 0.999), (0.0, 0.01)], 2023);
    opt.init_points = 4;

    println!(
        "{:>4} {:>10} {:>8} {:>9} {:>10}",
        "iter", "lr", "gamma", "eta", "cost"
    );
    for i in 0..iterations {
        let x = opt.suggest();
        let cfg = RlConfig {
            episodes: 8,
            agents: 2,
            hidden_dim: 24,
            learning_rate: 10f32.powf(x[0] as f32),
            gamma: x[1] as f32,
            entropy_coeff: x[2] as f32,
            ..RlConfig::tuned()
        };
        let result = train(std::slice::from_ref(&design), &cfg);
        let mut d = design.clone();
        RlLegalizer::new(result.best_model).legalize(&mut d);
        let cost = legalization_cost(&d, hpwl_gp);
        println!(
            "{i:>4} {:>10.2e} {:>8.4} {:>9.5} {cost:>10.2}",
            10f64.powf(x[0]),
            x[1],
            x[2]
        );
        opt.observe(x, cost);
    }

    let (best_x, best_y) = opt.best().expect("observations recorded");
    println!(
        "\nbest configuration: lr={:.2e} gamma={:.4} eta={:.5} -> cost {best_y:.2}",
        10f64.powf(best_x[0]),
        best_x[1],
        best_x[2]
    );
    println!("(the paper's 50-iteration search settled on lr=3e-4, gamma=0.98, eta=0.002)");
    Ok(())
}
