//! DEF flow: generate a contest-style benchmark, write it to the DEF
//! subset, read it back, legalize, verify, and write the legalized DEF —
//! the same LEF/DEF-in, DEF-out flow the paper's legalizer exposes.
//!
//! ```text
//! cargo run --release --example def_flow
//! ```

use rlleg_benchgen::{find_spec, generate};
use rlleg_design::{def, legality, metrics::Qor, Technology};
use rlleg_legalize::{Legalizer, Ordering};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small contest-style design (fences, macros, edge
    //    types) and serialize the global placement to DEF.
    let spec = find_spec("pci_bridge32_a_md2")
        .ok_or("unknown benchmark")?
        .scaled(0.01);
    let design = generate(&spec);
    let def_in = def::write_def(&design);
    let dir = std::env::temp_dir().join("rlleg_def_flow");
    std::fs::create_dir_all(&dir)?;
    let in_path = dir.join("global_placement.def");
    std::fs::write(&in_path, &def_in)?;
    println!(
        "wrote {} ({} cells, {} nets, {} fences) -> {}",
        design.name,
        design.num_cells(),
        design.num_nets(),
        design.regions.len(),
        in_path.display()
    );

    // 2. Read it back — the parser rebuilds the full design.
    let text = std::fs::read_to_string(&in_path)?;
    let mut parsed = def::parse_def(&text, Technology::contest())?;
    assert_eq!(parsed.num_cells(), design.num_cells());
    assert_eq!(parsed.num_nets(), design.num_nets());

    // 3. Legalize with the size-ordered baseline + heuristics.
    let before = Qor::measure(&parsed);
    let mut lg = Legalizer::new(&parsed);
    let stats = lg.run(&mut parsed, &Ordering::SizeDescending);
    lg.swap_pass(&mut parsed);
    lg.rearrange_pass(&mut parsed);
    println!(
        "legalized {} cells ({} failed); hpwl {} -> {}",
        stats.legalized,
        stats.failed.len(),
        before.hpwl,
        Qor::measure(&parsed).hpwl
    );

    // 4. Verify against the independent design-rule checker.
    let violations = legality::check(&parsed, true);
    println!("design-rule violations: {}", violations.len());
    assert!(violations.is_empty());

    // 5. Emit the legalized DEF.
    let out_path = dir.join("legalized.def");
    std::fs::write(&out_path, def::write_def(&parsed))?;
    println!("wrote {}", out_path.display());
    println!("{}", Qor::measure(&parsed));
    Ok(())
}
