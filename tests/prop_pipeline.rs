//! Workspace-level property tests: for arbitrary generated designs, the
//! legalizer either completes with a fully legal placement or reports
//! exactly which cells failed — never a silently illegal result.

use proptest::prelude::*;
use rlleg_suite::design::legality::Violation;
use rlleg_suite::prelude::*;

/// A violation is excused when it involves a cell the run reported as
/// failed (failed cells stay at their overlapping global-placement
/// position, exactly as the baseline paper flow leaves them).
fn involves_unlegalized(design: &Design, v: &Violation) -> bool {
    let un = |id: &rlleg_suite::design::CellId| !design.cell(*id).legalized;
    match v {
        Violation::Overlap { a, b } => un(a) || un(b),
        Violation::EdgeSpacing { left, right, .. } => un(left) || un(right),
        Violation::OffSite { cell }
        | Violation::OffRow { cell }
        | Violation::OutsideCore { cell }
        | Violation::RailParity { cell }
        | Violation::FenceInside { cell }
        | Violation::FenceOutside { cell, .. }
        | Violation::MaxDisplacement { cell, .. }
        | Violation::NotLegalized { cell } => un(cell),
    }
}

fn arb_spec() -> impl Strategy<Value = rlleg_suite::benchgen::BenchmarkSpec> {
    // Pick a table row and a small scale; both suites are fair game.
    let names: Vec<String> = training_suite()
        .into_iter()
        .chain(test_suite())
        .map(|s| s.name)
        .collect();
    (0..names.len(), 0.0008f64..0.004, 0u64..1_000).prop_map(move |(i, scale, seed)| {
        let mut s = find_spec(&names[i]).expect("known name").scaled(scale);
        s.seed = seed;
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn legalizer_output_is_always_legal(spec in arb_spec(), order_seed in 0u64..50) {
        let mut design = generate(&spec);
        let mut lg = Legalizer::new(&design);
        let stats = lg.run(&mut design, &Ordering::Random(order_seed));
        // Every violation must involve a cell the run reported as failed;
        // committed cells are never part of a violation.
        let bad: Vec<_> = legality::check(&design, false)
            .into_iter()
            .filter(|v| !involves_unlegalized(&design, v))
            .collect();
        prop_assert!(
            bad.is_empty(),
            "{}: committed-cell violation {} ({} failed cells)",
            spec.name,
            bad[0],
            stats.failed.len()
        );
        // Completed cells are flagged; failed cells are not.
        let unflagged = design
            .movable_ids()
            .filter(|&id| !design.cell(id).legalized)
            .count();
        prop_assert_eq!(unflagged, stats.failed.len());
    }

    #[test]
    fn heuristics_preserve_legality(spec in arb_spec()) {
        let mut design = generate(&spec);
        let mut lg = Legalizer::new(&design);
        let stats = lg.run(&mut design, &Ordering::SizeDescending);
        prop_assume!(stats.is_complete());
        let before = Qor::measure(&design).total_displacement;
        lg.swap_pass(&mut design);
        lg.rearrange_pass(&mut design);
        prop_assert!(legality::is_legal(&design));
        prop_assert!(Qor::measure(&design).total_displacement <= before);
    }

    #[test]
    fn gcell_partitioning_preserves_legality(spec in arb_spec(), k in 1usize..5) {
        let mut design = generate(&spec);
        let gcells = GcellGrid::new(&design, k, k);
        let mut lg = Legalizer::new(&design);
        let _ = lg.run_gcells(&mut design, &Ordering::SizeDescending, &gcells);
        let bad: Vec<_> = legality::check(&design, false)
            .into_iter()
            .filter(|v| !involves_unlegalized(&design, v))
            .collect();
        prop_assert!(bad.is_empty(), "committed-cell violation: {}", bad[0]);
    }

    #[test]
    fn def_round_trip_any_generated_design(spec in arb_spec()) {
        use rlleg_suite::design::def;
        let design = generate(&spec);
        let text = def::write_def(&design);
        let back = def::parse_def(&text, design.tech.clone()).expect("round trip");
        prop_assert_eq!(back.num_cells(), design.num_cells());
        prop_assert_eq!(back.num_nets(), design.num_nets());
        prop_assert_eq!(
            rlleg_suite::design::metrics::total_hpwl(&back),
            rlleg_suite::design::metrics::total_hpwl(&design)
        );
    }
}
