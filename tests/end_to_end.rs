//! Workspace-level integration tests: the full pipeline from benchmark
//! generation through DEF I/O, legalization, design-rule checking, RL
//! training, model persistence, and transfer inference.

use rlleg_suite::prelude::*;
use rlleg_suite::rl::{CellWiseNet, RlLegalizer as Rl, StateMode};

#[test]
fn generate_legalize_verify_all_orderings() {
    let spec = find_spec("fft_a_md3").expect("spec").scaled(0.005);
    let design = generate(&spec);
    for ordering in [
        Ordering::SizeDescending,
        Ordering::XAscending,
        Ordering::Random(1),
    ] {
        let mut d = design.clone();
        let mut lg = Legalizer::new(&d);
        let stats = lg.run(&mut d, &ordering);
        assert!(
            stats.is_complete(),
            "{ordering:?} failed {} cells",
            stats.failed.len()
        );
        assert!(legality::is_legal(&d), "{ordering:?} produced violations");
    }
}

#[test]
fn heuristic_passes_keep_the_placement_legal() {
    // Regression: rearrange_pass used to lift a cell that was the only
    // thing separating two type-2-edge neighbours, exposing an
    // edge-spacing violation check_place never re-examines. This design
    // and scale reproduced it deterministically.
    let spec = find_spec("pci_bridge32_a_md2").expect("spec").scaled(0.01);
    let mut d = generate(&spec);
    let mut lg = Legalizer::new(&d);
    let stats = lg.run(&mut d, &Ordering::SizeDescending);
    assert!(stats.is_complete());
    lg.swap_pass(&mut d);
    assert!(legality::is_legal(&d), "swap_pass produced violations");
    lg.rearrange_pass(&mut d);
    assert!(legality::is_legal(&d), "rearrange_pass produced violations");
}

#[test]
fn def_round_trip_then_legalize() {
    use rlleg_suite::design::def;
    let spec = find_spec("des_perf_b_md2").expect("spec").scaled(0.003);
    let design = generate(&spec);
    let text = def::write_def(&design);
    let mut parsed = def::parse_def(&text, Technology::contest()).expect("parse back");
    assert_eq!(parsed.num_cells(), design.num_cells());
    let mut lg = Legalizer::new(&parsed);
    let stats = lg.run(&mut parsed, &Ordering::SizeDescending);
    assert!(stats.is_complete());
    assert!(legality::is_legal(&parsed));
    // Legalized design round-trips too, preserving positions.
    let legal_text = def::write_def(&parsed);
    let again = def::parse_def(&legal_text, Technology::contest()).expect("parse legalized");
    for (a, b) in parsed.cells.iter().zip(again.cells.iter()) {
        if a.legalized {
            assert_eq!(a.pos, b.gp_pos, "legalized position survives as placement");
        }
    }
}

#[test]
fn train_save_load_transfer() {
    let train_design = generate(&find_spec("sasc_top").expect("spec").scaled(0.6));
    let cfg = RlConfig {
        episodes: 6,
        agents: 2,
        hidden_dim: 16,
        pretrain_episodes: 2,
        ..RlConfig::tuned()
    };
    let result = train(std::slice::from_ref(&train_design), &cfg);
    assert_eq!(result.history.len(), 12);

    // Persist and reload the best model.
    let json = result.best_model.to_json().expect("serialize");
    let loaded = CellWiseNet::from_json(&json).expect("deserialize");

    // Transfer to a different (unseen) design.
    let mut test = generate(&find_spec("usb_phy").expect("spec").scaled(0.4));
    let report = Rl::new(loaded).legalize(&mut test);
    assert!(report.is_complete(), "failed {:?}", report.failed);
    assert!(legality::is_legal(&test));
}

#[test]
fn rl_env_full_episode_matches_qor() {
    use rlleg_suite::rl::LegalizeEnv;
    let design = generate(&find_spec("usb_phy").expect("spec").scaled(0.3));
    let mut env = LegalizeEnv::new(design);
    let mut reward_sum = 0.0;
    for g in env.subepisode_order() {
        loop {
            let remaining = env.remaining_in(g);
            let Some(&cell) = remaining.first() else {
                break;
            };
            let out = env.step(cell);
            reward_sum += f64::from(out.reward());
            assert!(!out.is_failure());
        }
    }
    let q = env.qor();
    assert!(q.is_complete());
    assert!(reward_sum > 0.0);
    assert!(legality::is_legal(env.design()));
}

#[test]
fn masked_and_reduced_modes_both_complete() {
    let design = generate(&find_spec("spi_top").expect("spec").scaled(0.3));
    for mode in [StateMode::Reduced, StateMode::Masked] {
        let cfg = RlConfig {
            episodes: 3,
            agents: 1,
            hidden_dim: 12,
            state_mode: mode,
            ..RlConfig::tuned()
        };
        let result = train(std::slice::from_ref(&design), &cfg);
        assert_eq!(result.history.len(), 3, "{mode:?}");
        assert!(result.history.iter().all(|s| s.cost.is_finite()));
    }
}

#[test]
fn bayesopt_tunes_a_legalizer_parameter() {
    // Use Bayesian optimization the way the paper does — to pick a
    // hyperparameter by minimizing legalization cost. Here: the entropy
    // coefficient over a tiny budget (the objective is cheap but real).
    use rlleg_suite::bayesopt::BayesOpt;
    use rlleg_suite::design::metrics::total_hpwl;

    let design = generate(&find_spec("mc_top").expect("spec").scaled(0.03));
    let hpwl_gp = total_hpwl(&design);
    let mut opt = BayesOpt::new(vec![(0.0, 0.02)], 11);
    opt.init_points = 3;
    for _ in 0..6 {
        let x = opt.suggest();
        let cfg = RlConfig {
            episodes: 2,
            agents: 1,
            hidden_dim: 12,
            entropy_coeff: x[0] as f32,
            ..RlConfig::tuned()
        };
        let result = train(std::slice::from_ref(&design), &cfg);
        let mut d = design.clone();
        Rl::new(result.best_model).legalize(&mut d);
        let cost = rlleg_suite::design::metrics::legalization_cost(&d, hpwl_gp);
        opt.observe(x, cost);
    }
    let (best_x, best_y) = opt.best().expect("observed");
    assert!(best_x[0] >= 0.0 && best_x[0] <= 0.02);
    assert!(best_y.is_finite());
}

#[test]
fn suite_reexports_are_usable() {
    // The umbrella prelude compiles and the table data is intact.
    assert_eq!(training_suite().len(), 23);
    assert_eq!(test_suite().len(), 5);
    let p = Point::new(1, 2);
    let r = Rect::new(0, 0, 4, 4);
    assert!(r.contains_point(p));
}
