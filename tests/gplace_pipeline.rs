//! Integration tests of the netlist → global placement → legalization
//! pipeline: invariants of `gplace::place` (proptest) and corpus-pinned
//! end-to-end runs at 1k and 10k cells.

use proptest::prelude::*;
use rlleg_suite::design::{legality, metrics, Design};
use rlleg_suite::gplace::{place, GpConfig};
use rlleg_suite::prelude::*;

/// Runs the deterministic parallel Gcell legalizer the way the serve
/// executor does, returning the run stats.
fn legalize(design: &mut Design) -> rlleg_suite::legalize::RunStats {
    let gcells = GcellGrid::auto(design);
    let mut lg = Legalizer::new(design);
    lg.run_gcells_parallel(design, &Ordering::SizeDescending, &gcells, 2)
}

/// End-to-end pipeline at one scale: generate the netlist, global-place it,
/// legalize, and require a fully legal result. Returns the post-legalization
/// HPWL of the gplace pipeline and of the synthetic-perturbation baseline.
fn pipeline_at(cells: usize) -> (i64, i64) {
    let spec = find_spec("des_perf_b_md1")
        .expect("table row")
        .scaled_to(cells);
    let synthetic = generate(&spec);

    // gplace pipeline: warm refinement of the generated placement — the
    // anchored quadratic solves tighten wirelength, and the
    // legalization-aware finalist round guarantees the result never
    // legalizes worse than the input.
    let mut gp = synthetic.clone();
    let stats = place(&mut gp, &GpConfig::default());
    assert!(
        stats.overflow.last().expect("iterations") <= &stats.overflow[0],
        "overflow must not increase: {:?}",
        stats.overflow
    );
    let run = legalize(&mut gp);
    assert!(
        run.failed.is_empty(),
        "gplace pipeline failed {} cells at {cells}",
        run.failed.len()
    );
    let violations = legality::check(&gp, true);
    assert!(
        violations.is_empty(),
        "gplace pipeline produced violations at {cells}: {:?}",
        &violations[..violations.len().min(5)]
    );

    // Synthetic-perturbation baseline: legalize the benchgen placement.
    let mut base = synthetic;
    let run = legalize(&mut base);
    assert!(run.failed.is_empty(), "baseline failed at {cells}");

    (metrics::total_hpwl(&gp), metrics::total_hpwl(&base))
}

#[test]
fn gp_then_legalize_1k_is_legal() {
    let (gp_hpwl, base_hpwl) = pipeline_at(1_000);
    // The analytical placer must beat the synthetic construction on
    // post-legalization wirelength — that is the point of having it.
    assert!(
        gp_hpwl < base_hpwl,
        "gplace HPWL {gp_hpwl} not below synthetic baseline {base_hpwl} at 1k"
    );
}

#[test]
fn gp_then_legalize_10k_is_legal() {
    let (gp_hpwl, base_hpwl) = pipeline_at(10_000);
    assert!(
        gp_hpwl < base_hpwl,
        "gplace HPWL {gp_hpwl} not below synthetic baseline {base_hpwl} at 10k"
    );
}

/// Small random designs for the invariant properties.
fn arb_design() -> impl Strategy<Value = (Design, u64)> {
    const NAMES: [&str; 4] = ["usb_phy", "spi_top", "des_perf_b_md1", "fft_2_md2"];
    (0usize..NAMES.len(), 1u64..500, 1u64..u64::MAX).prop_map(|(name_idx, seed, gp_seed)| {
        let mut spec = find_spec(NAMES[name_idx]).expect("table spec").scaled(0.0);
        spec.seed = seed;
        (generate(&spec), gp_seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn place_invariants((design, gp_seed) in arb_design()) {
        let cfg = GpConfig { seed: gp_seed, ..GpConfig::default() };
        let mut a = design.clone();
        let sa = place(&mut a, &cfg);
        let rh = a.tech.row_height;

        // 1. Fixed cells never move.
        for (before, after) in design.cells.iter().zip(a.cells.iter()) {
            if !before.is_movable() {
                prop_assert_eq!(before.pos, after.pos);
                prop_assert_eq!(before.gp_pos, after.gp_pos);
            }
        }
        // 2. Every movable cell is fully on-die (when it fits the core).
        for c in a.cells.iter().filter(|c| c.is_movable()) {
            let r = c.rect(rh);
            prop_assert!(
                a.core.contains(&r),
                "cell {} at {} off-die", c.name, c.pos
            );
        }
        // 3. Bit-deterministic for a fixed seed: a second run from the same
        // input is identical in every position and every stat.
        let mut b = design.clone();
        let sb = place(&mut b, &cfg);
        prop_assert_eq!(sa.hpwl, sb.hpwl);
        prop_assert_eq!(&sa.overflow, &sb.overflow);
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            prop_assert_eq!(ca.pos, cb.pos);
            prop_assert_eq!(ca.gp_pos, cb.gp_pos);
        }
    }
}
