//! Clique/star net models and per-axis quadratic system assembly.
//!
//! Quadratic ("spring") wirelength turns every net into a set of two-pin
//! springs. Small nets become cliques (every pin pair connected, pair weight
//! `1/(deg-1)`); nets above the pin-count crossover get one free *star*
//! variable connected to every pin with weight `deg/(deg-1)` — eliminating
//! the star reproduces exactly the clique's quadratic form while keeping
//! assembly linear in the pin count.
//!
//! The x and y systems share the same spring topology and differ only in
//! pin offsets and fixed-pin coordinates, so springs are built once and
//! assembled per axis.

use rlleg_design::{Design, Pin};
use rlleg_nn::sparse::Csr;

/// One end of a spring: either a placer variable (movable cell or star
/// node) plus a pin offset, or an absolute fixed coordinate pair.
#[derive(Debug, Clone, Copy)]
pub struct SpringEnd {
    /// Variable index, or `None` for a fixed end.
    pub var: Option<u32>,
    /// Pin offset from the variable origin (x, y); for fixed ends this is
    /// the absolute pin position.
    pub ox: f64,
    /// See [`SpringEnd::ox`].
    pub oy: f64,
}

/// A two-pin spring with weight `w`.
#[derive(Debug, Clone, Copy)]
pub struct Spring {
    /// First end.
    pub a: SpringEnd,
    /// Second end.
    pub b: SpringEnd,
    /// Spring weight.
    pub w: f64,
}

/// The spring system of one design: shared topology for both axes.
#[derive(Debug)]
pub struct NetModel {
    /// All springs from all modeled nets.
    pub springs: Vec<Spring>,
    /// `var_of[cell_index]` is the variable of that movable cell, or
    /// `u32::MAX` for fixed cells.
    pub var_of: Vec<u32>,
    /// Movable-cell variable count (variables `0..num_cell_vars`).
    pub num_cell_vars: usize,
    /// Star-node count (variables `num_cell_vars..num_vars()`).
    pub num_stars: usize,
}

impl NetModel {
    /// Total variable count (movable cells + star nodes).
    pub fn num_vars(&self) -> usize {
        self.num_cell_vars + self.num_stars
    }

    /// Builds the spring system for `design` with the given clique/star
    /// pin-count crossover.
    pub fn build(design: &Design, star_crossover: usize) -> NetModel {
        let mut var_of = vec![u32::MAX; design.num_cells()];
        let mut num_cell_vars = 0u32;
        for (i, c) in design.cells.iter().enumerate() {
            if c.is_movable() {
                var_of[i] = num_cell_vars;
                num_cell_vars += 1;
            }
        }

        let end_of = |pin: &Pin| -> SpringEnd {
            match pin {
                Pin::OnCell { cell, offset } => {
                    let v = var_of[cell.index()];
                    if v == u32::MAX {
                        // Fixed cell: the pin is a constant at pos + offset.
                        let p = design.cell(*cell).pos + *offset;
                        SpringEnd {
                            var: None,
                            ox: p.x as f64,
                            oy: p.y as f64,
                        }
                    } else {
                        SpringEnd {
                            var: Some(v),
                            ox: offset.x as f64,
                            oy: offset.y as f64,
                        }
                    }
                }
                Pin::Fixed(p) => SpringEnd {
                    var: None,
                    ox: p.x as f64,
                    oy: p.y as f64,
                },
            }
        };

        let mut springs = Vec::new();
        let mut num_stars = 0u32;
        for net in &design.nets {
            let deg = net.pins.len();
            if deg < 2 {
                continue;
            }
            // A net connecting only fixed pins contributes a constant to the
            // objective; skip it entirely.
            let ends: Vec<SpringEnd> = net.pins.iter().map(end_of).collect();
            if ends.iter().all(|e| e.var.is_none()) {
                continue;
            }
            if deg <= star_crossover {
                let w = 1.0 / (deg as f64 - 1.0);
                for i in 0..deg {
                    for j in i + 1..deg {
                        if ends[i].var.is_none() && ends[j].var.is_none() {
                            continue;
                        }
                        springs.push(Spring {
                            a: ends[i],
                            b: ends[j],
                            w,
                        });
                    }
                }
            } else {
                // Star elimination yields pair weight s/deg; matching the
                // clique's 1/(deg-1) gives s = deg/(deg-1).
                let s = deg as f64 / (deg as f64 - 1.0);
                let star = SpringEnd {
                    var: Some(num_cell_vars + num_stars),
                    ox: 0.0,
                    oy: 0.0,
                };
                num_stars += 1;
                for e in &ends {
                    springs.push(Spring {
                        a: *e,
                        b: star,
                        w: s,
                    });
                }
            }
        }

        NetModel {
            springs,
            var_of,
            num_cell_vars: num_cell_vars as usize,
            num_stars: num_stars as usize,
        }
    }

    /// Assembles the quadratic system of one axis.
    ///
    /// `axis_off(end)` selects the axis component of each end. `anchors` is
    /// a per-variable `(weight, target)` pull (weight 0 disables); every
    /// variable additionally gets the weak `eps` anchor toward
    /// `eps_target[v]` so the matrix stays positive definite even for
    /// floating cells or components with no fixed pins.
    pub fn assemble(
        &self,
        axis: Axis,
        anchors: &[(f64, f64)],
        eps: f64,
        eps_target: &[f64],
    ) -> (Csr, Vec<f64>) {
        let n = self.num_vars();
        assert_eq!(anchors.len(), n);
        assert_eq!(eps_target.len(), n);
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(4 * self.springs.len() + n);
        let mut rhs = vec![0.0f64; n];
        let pick = |e: &SpringEnd| -> f64 {
            match axis {
                Axis::X => e.ox,
                Axis::Y => e.oy,
            }
        };
        for s in &self.springs {
            let (oa, ob, w) = (pick(&s.a), pick(&s.b), s.w);
            match (s.a.var, s.b.var) {
                (Some(i), Some(j)) => {
                    triplets.push((i, i, w));
                    triplets.push((j, j, w));
                    triplets.push((i, j, -w));
                    triplets.push((j, i, -w));
                    rhs[i as usize] += w * (ob - oa);
                    rhs[j as usize] += w * (oa - ob);
                }
                (Some(i), None) => {
                    triplets.push((i, i, w));
                    rhs[i as usize] += w * (ob - oa);
                }
                (None, Some(j)) => {
                    triplets.push((j, j, w));
                    rhs[j as usize] += w * (oa - ob);
                }
                (None, None) => {}
            }
        }
        for (v, &(w, t)) in anchors.iter().enumerate() {
            if w > 0.0 {
                triplets.push((v as u32, v as u32, w));
                rhs[v] += w * t;
            }
        }
        for (v, &t) in eps_target.iter().enumerate() {
            triplets.push((v as u32, v as u32, eps));
            rhs[v] += eps * t;
        }
        (Csr::from_triplets(n, &triplets), rhs)
    }
}

/// Axis selector for [`NetModel::assemble`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Horizontal.
    X,
    /// Vertical.
    Y,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;
    use rlleg_nn::sparse::pcg_solve;

    fn two_cell_design() -> Design {
        let mut b = DesignBuilder::new("t", Technology::contest(), 100, 10);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let c = b.add_cell("c", 1, 1, Point::new(10_000, 0));
        b.add_net_with_fixed(
            "n0",
            vec![(a, 0, 0), (c, 0, 0)],
            vec![Point::new(0, 0), Point::new(20_000, 0)],
        );
        b.build()
    }

    #[test]
    fn clique_model_balances_between_fixed_pins() {
        let d = two_cell_design();
        // Net degree 4 with crossover >= 4: clique. Two movable cells plus
        // fixed pins at x = 0 and x = 20_000; by symmetry both settle at the
        // midpoint 10_000.
        let m = NetModel::build(&d, 6);
        assert_eq!(m.num_cell_vars, 2);
        assert_eq!(m.num_stars, 0);
        let anchors = vec![(0.0, 0.0); m.num_vars()];
        let eps_t = vec![0.0; m.num_vars()];
        let (a, b) = m.assemble(Axis::X, &anchors, 1e-9, &eps_t);
        let mut x = vec![0.0; m.num_vars()];
        let s = pcg_solve(&a, &b, &mut x, 1e-10, 200);
        assert!(s.converged);
        assert!((x[0] - 10_000.0).abs() < 1.0, "x0 = {}", x[0]);
        assert!((x[1] - 10_000.0).abs() < 1.0, "x1 = {}", x[1]);
    }

    #[test]
    fn star_model_matches_clique_solution() {
        let d = two_cell_design();
        let clique = NetModel::build(&d, 6);
        let star = NetModel::build(&d, 2); // degree 4 > 2 => star node
        assert_eq!(star.num_stars, 1);
        let solve = |m: &NetModel| {
            let anchors = vec![(0.0, 0.0); m.num_vars()];
            let eps_t = vec![0.0; m.num_vars()];
            let (a, b) = m.assemble(Axis::X, &anchors, 1e-9, &eps_t);
            let mut x = vec![0.0; m.num_vars()];
            let s = pcg_solve(&a, &b, &mut x, 1e-10, 400);
            assert!(s.converged);
            x
        };
        let xc = solve(&clique);
        let xs = solve(&star);
        // Star elimination is exact: cell positions agree across models.
        assert!((xc[0] - xs[0]).abs() < 1.0, "{} vs {}", xc[0], xs[0]);
        assert!((xc[1] - xs[1]).abs() < 1.0);
    }

    #[test]
    fn pin_offsets_shift_the_optimum() {
        let mut b = DesignBuilder::new("t", Technology::contest(), 100, 10);
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        // One movable cell with a pin at offset 100 connected to a fixed pin
        // at x = 5_000: optimum is cell origin at 4_900.
        b.add_net_with_fixed("n0", vec![(a, 100, 0)], vec![Point::new(5_000, 0)]);
        let d = b.build();
        let m = NetModel::build(&d, 6);
        let anchors = vec![(0.0, 0.0); m.num_vars()];
        let eps_t = vec![0.0; m.num_vars()];
        let (mat, rhs) = m.assemble(Axis::X, &anchors, 1e-9, &eps_t);
        let mut x = vec![0.0; m.num_vars()];
        pcg_solve(&mat, &rhs, &mut x, 1e-10, 100);
        assert!((x[0] - 4_900.0).abs() < 1.0, "x0 = {}", x[0]);
    }
}
