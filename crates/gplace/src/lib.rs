//! Analytical global placement for the RL-Legalizer reproduction.
//!
//! `rlleg-gplace` turns a netlist (with fixed macros and IO pins) into a
//! realistic, overlapping global placement — the input every legalization
//! scenario downstream consumes. The algorithm is the classic quadratic
//! two-step, sized to this repo's zero-dependency constraints:
//!
//! 1. **Quadratic wirelength minimization.** Each net becomes springs via a
//!    clique model (small nets) or a star node (nets above a pin-count
//!    crossover); the resulting per-axis Laplacian systems are solved with
//!    the Jacobi-preconditioned conjugate gradient from
//!    [`rlleg_nn::sparse`].
//! 2. **Diffusion-based density spreading.** Movable area is deposited into
//!    a bin grid; while *overflow* (area above bin capacity) exceeds the
//!    target, cell positions are advected through a few steps of a density
//!    diffusion field and the resulting spread targets are fed back into
//!    the solve as anchored pseudo-pins of geometrically growing weight.
//!
//! Two modes share that loop. **Warm refinement** (the default) starts
//! from the design's current placement, uses strong anchors and short
//! spreads so every round is a local improvement, and selects the
//! lowest-wirelength iterate whose overflow does not regress past the
//! input's. The refined iterate then competes against the input and
//! fine-grained spreads of itself in a legalization-aware finalist round:
//! each is legalized on a clone with the deterministic Gcell legalizer and
//! the lowest post-legalization wirelength wins. The input is always a
//! finalist, so warm refinement never hands back a placement that
//! legalizes worse than what it was given. **Cold construction**
//! (`warm_start: false`) begins from the pure wirelength solve (a single
//! collapsed cluster) and relies on the diffusion loop to disperse it,
//! returning the lowest-overflow iterate.
//!
//! The overflow trajectory reported in [`GpStats`] tracks the best
//! (lowest) overflow seen and is non-increasing by construction.
//! Everything runs sequentially in `f64`: for a fixed [`GpConfig`]
//! (including its seed) the output is bit-identical across runs and
//! thread counts.
//!
//! # Example
//!
//! ```
//! use rlleg_gplace::{place, GpConfig};
//!
//! let spec = rlleg_benchgen::find_spec("usb_phy").expect("table row").scaled(0.05);
//! let mut design = rlleg_benchgen::generate(&spec);
//! let stats = place(&mut design, &GpConfig::default());
//! assert!(stats.overflow.last().expect("iterated") <= &stats.overflow[0]);
//! ```

#![warn(missing_docs)]

pub mod netmodel;
pub mod spread;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rlleg_design::Design;
use rlleg_geom::Point;
use rlleg_nn::sparse::pcg_solve;

use netmodel::{Axis, NetModel};
use spread::BinGrid;

/// Tuning knobs for [`place`]. The defaults are sized for benchgen-scale
/// designs (1k–1M cells) and converge on every spec in the table.
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Nets with more pins than this use the star model (linear assembly);
    /// smaller nets use the exact clique.
    pub star_crossover: usize,
    /// Relative residual tolerance of each conjugate-gradient solve.
    pub cg_tol: f64,
    /// Iteration cap of each conjugate-gradient solve.
    pub cg_max_iters: usize,
    /// Outer solve→spread iterations cap.
    pub max_iterations: usize,
    /// Stop once the overflow fraction drops to this value.
    pub target_overflow: f64,
    /// Anchor weight of the first spreading iteration (relative to the
    /// typical spring weight of 1).
    pub anchor_base: f64,
    /// Geometric growth factor of the anchor weight per iteration.
    pub anchor_growth: f64,
    /// Cap on diffusion steps per spreading iteration; each iteration
    /// integrates until the utilization field flattens below 1.0 or the
    /// cap is hit.
    pub diffusion_steps: usize,
    /// Diffusion coefficient (stable for values `<= 0.25`).
    pub diffusion_nu: f64,
    /// Bin-capacity scale; `None` derives it from the design density.
    pub target_density: Option<f64>,
    /// Bins per axis; `None` sizes the grid from the movable-cell count.
    pub bins: Option<usize>,
    /// Seed of the deterministic tie-break jitter.
    pub seed: u64,
    /// Warm-start refinement: initialize from the design's current
    /// positions and keep the lowest-wirelength iterate whose overflow does
    /// not regress past the input's. When `false` the placer constructs a
    /// placement from scratch (pure wirelength solve, then spreading).
    pub warm_start: bool,
    /// Anchor weight of the first warm-start iteration. Warm refinement
    /// needs a strong pull (the unconstrained optimum is a collapsed
    /// cluster far from any feasible start).
    pub warm_anchor_base: f64,
    /// Diffusion-step cap per warm-start iteration; short spreads keep each
    /// round's targets close to the current iterate.
    pub warm_diffusion_steps: usize,
    /// Legalization-aware finalist selection for warm starts: legalize a
    /// clone of the design at each finalist placement (the input, the
    /// refined iterate, and fine-grained spreads of it) with the
    /// deterministic Gcell legalizer and keep the one with the lowest
    /// post-legalization wirelength. Because the input is always a
    /// finalist, warm refinement can never worsen the legalized result.
    /// Disable to skip the extra legalizer runs and keep the refined
    /// iterate unconditionally.
    pub legalize_eval: bool,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            star_crossover: 5,
            cg_tol: 1e-6,
            cg_max_iters: 250,
            max_iterations: 24,
            target_overflow: 0.10,
            anchor_base: 0.02,
            anchor_growth: 1.6,
            diffusion_steps: 200,
            diffusion_nu: 0.2,
            target_density: None,
            bins: None,
            seed: 1,
            warm_start: true,
            warm_anchor_base: 0.6,
            warm_diffusion_steps: 30,
            legalize_eval: true,
        }
    }
}

/// Outcome report of one [`place`] run.
#[derive(Debug, Clone)]
pub struct GpStats {
    /// Outer iterations run (first entry of `overflow` is the pure
    /// wirelength solve before any spreading).
    pub iterations: usize,
    /// Best-so-far overflow fraction after each outer iteration;
    /// non-increasing by construction.
    pub overflow: Vec<f64>,
    /// Whether the selected output's overflow reached the qualifying bound
    /// (`target_overflow`, relaxed to the input's own overflow for warm
    /// starts).
    pub converged: bool,
    /// Total conjugate-gradient iterations across all solves.
    pub cg_iterations: usize,
    /// Total HPWL of the written global placement, in dbu.
    pub hpwl: i64,
    /// Bin-capacity density the spreader targeted.
    pub target_density: f64,
    /// Star variables in the net model.
    pub stars: usize,
    /// Springs in the net model.
    pub springs: usize,
}

/// Runs analytical global placement on `design`, overwriting every movable
/// cell's `gp_pos` *and* `pos` with the new placement (and clearing its
/// `legalized` flag). Fixed cells and pins are never moved.
///
/// Deterministic: the same design and config produce a bit-identical
/// placement regardless of thread count (the placer is sequential).
pub fn place(design: &mut Design, cfg: &GpConfig) -> GpStats {
    let _t = telemetry::span("gplace.place");
    let model = NetModel::build(design, cfg.star_crossover);
    let hot = design.hot_cells();
    let n = model.num_vars();
    let m = model.num_cell_vars;
    let core = design.core;

    let target_density = cfg
        .target_density
        .unwrap_or_else(|| (design.density() * 1.2 + 0.05).clamp(0.30, 1.0));
    let mut stats = GpStats {
        iterations: 0,
        overflow: Vec::new(),
        converged: true,
        cg_iterations: 0,
        hpwl: 0,
        target_density,
        stars: model.num_stars,
        springs: model.springs.len(),
    };
    if m == 0 {
        stats.hpwl = rlleg_design::metrics::total_hpwl(design);
        return stats;
    }

    // Working positions, plus a deterministic sub-site jitter so
    // exactly-coincident cells have distinct spread directions. Warm starts
    // begin at the design's current positions; cold starts at the core
    // center (the pure wirelength solve below ignores the start anyway).
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let cx = (core.lo.x + core.hi.x) as f64 * 0.5;
    let cy = (core.lo.y + core.hi.y) as f64 * 0.5;
    let sw = design.tech.site_width as f64;
    let jitter: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(-0.5..0.5) * sw, rng.gen_range(-0.5..0.5) * sw))
        .collect();
    let warm = cfg.warm_start;
    let mut xs: Vec<f64> = jitter.iter().map(|j| cx + j.0).collect();
    let mut ys: Vec<f64> = jitter.iter().map(|j| cy + j.1).collect();
    if warm {
        // Exactly the input positions: the first warm candidate must be the
        // placement the caller handed in, or "never worse" breaks.
        for id in hot.movable_ids() {
            let v = model.var_of[id.index()] as usize;
            let c = &design.cells[id.index()];
            xs[v] = c.pos.x as f64;
            ys[v] = c.pos.y as f64;
        }
    }

    // Weak positive-definiteness anchor toward the core center: keeps
    // floating cells and fixed-pin-free components in the die.
    let eps = 1e-6;
    let eps_tx = vec![cx; n];
    let eps_ty = vec![cy; n];
    let mut anchors_x = vec![(0.0f64, 0.0f64); n];
    let mut anchors_y = vec![(0.0f64, 0.0f64); n];

    let solve_axes = |anchors_x: &[(f64, f64)],
                      anchors_y: &[(f64, f64)],
                      xs: &mut Vec<f64>,
                      ys: &mut Vec<f64>|
     -> usize {
        let (ax, bx) = model.assemble(Axis::X, anchors_x, eps, &eps_tx);
        let sx = pcg_solve(&ax, &bx, xs, cfg.cg_tol, cfg.cg_max_iters);
        let (ay, by) = model.assemble(Axis::Y, anchors_y, eps, &eps_ty);
        let sy = pcg_solve(&ay, &by, ys, cfg.cg_tol, cfg.cg_max_iters);
        sx.iterations + sy.iterations
    };

    if !warm {
        // Cold iteration 0: pure wirelength solve.
        stats.cg_iterations += solve_axes(&anchors_x, &anchors_y, &mut xs, &mut ys);
    }
    clamp_vars(design, &hot, &model.var_of, &mut xs, &mut ys);
    // The exact starting placement, kept as the fallback finalist of warm
    // refinement's legalization-aware selection.
    let input_pos = (xs.clone(), ys.clone());

    let bins = cfg
        .bins
        .unwrap_or_else(|| (((m as f64) / 6.0).sqrt().ceil() as usize).clamp(4, 256));
    let mut grid = BinGrid::new(design, bins, bins, target_density);
    grid.deposit(design, &hot, &model.var_of, &xs, &ys);
    let init_overflow = grid.overflow();
    let mut best_overflow = init_overflow;
    let mut best = (xs.clone(), ys.clone());
    stats.overflow.push(best_overflow);

    // Warm-start output selection: lowest float wirelength among iterates
    // whose overflow does not regress past the input's (the input itself is
    // the first candidate, so refinement can never hand back something
    // worse than it was given).
    let qualify = cfg.target_overflow.max(init_overflow);
    let mut best_hpwl = if warm {
        float_hpwl(design, &model, &xs, &ys)
    } else {
        f64::MAX
    };
    let mut best_warm = (xs.clone(), ys.clone());
    let mut best_warm_ovf = init_overflow;

    // Solve → spread loop. Each iteration diffuses the *current* iterate's
    // density toward feasibility (the spreader re-deposits every step, so
    // clusters genuinely disperse), then re-solves with anchors of
    // geometrically growing weight pulling toward the spread targets:
    // springs recover wirelength where there is slack while the anchors
    // enforce the spread. Warm starts use a strong anchor base and short
    // spreads — each round is a local refinement of the input — while cold
    // starts begin with weak anchors so the early rounds can rearrange the
    // collapsed wirelength optimum globally.
    let steps = if warm {
        cfg.warm_diffusion_steps
    } else {
        cfg.diffusion_steps
    };
    let mut anchor_w = if warm {
        cfg.warm_anchor_base
    } else {
        cfg.anchor_base
    };
    for _iter in 0..cfg.max_iterations {
        // Warm refinement keeps tightening wirelength even once feasible;
        // cold construction stops as soon as overflow reaches the target.
        if anchor_w > 100.0 || (!warm && best_overflow <= cfg.target_overflow) {
            break;
        }
        stats.iterations += 1;
        let (tx, ty) = grid.spread_targets(
            design,
            &hot,
            &model.var_of,
            &xs,
            &ys,
            &jitter,
            steps,
            1.0,
            cfg.diffusion_nu,
        );
        for id in hot.movable_ids() {
            let v = model.var_of[id.index()] as usize;
            anchors_x[v] = (anchor_w, tx[v]);
            anchors_y[v] = (anchor_w, ty[v]);
        }
        stats.cg_iterations += solve_axes(&anchors_x, &anchors_y, &mut xs, &mut ys);
        clamp_vars(design, &hot, &model.var_of, &mut xs, &mut ys);
        grid.deposit(design, &hot, &model.var_of, &xs, &ys);
        let ovf = grid.overflow();
        if ovf < best_overflow {
            best_overflow = ovf;
            best = (xs.clone(), ys.clone());
        }
        if warm && ovf <= qualify {
            let h = float_hpwl(design, &model, &xs, &ys);
            if h < best_hpwl {
                best_hpwl = h;
                best_warm = (xs.clone(), ys.clone());
                best_warm_ovf = ovf;
            }
        }
        stats.overflow.push(best_overflow);
        anchor_w *= cfg.anchor_growth;
    }

    if warm {
        best = best_warm;
        best_overflow = best_warm_ovf;
        if cfg.legalize_eval {
            // Legalization-aware finalist selection. The refined iterate
            // minimizes float wirelength subject to bin-level capacity, but
            // the bin metric is blind to intra-bin stacking — at some
            // scales the legalizer pays more resolving that than the
            // refinement saved. The only metric that settles it is the
            // legalizer itself: run the deterministic Gcell legalizer on a
            // clone at each finalist and keep the lowest post-legalization
            // wirelength (fewest failed cells first). Finalists are the
            // input (ties favor it, so refinement never worsens the
            // legalized result), the refined iterate, and fine-grained
            // diffusion spreads of it that trade wirelength for local
            // decongestion.
            let mut finalists: Vec<(&'static str, Vec<f64>, Vec<f64>)> = vec![
                ("input", input_pos.0.clone(), input_pos.1.clone()),
                ("refined", best.0.clone(), best.1.clone()),
            ];
            for (name, cells_per_bin) in [("spread_fine", 1.5f64), ("spread_local", 3.0)] {
                let fb = (((m as f64) / cells_per_bin).sqrt().ceil() as usize).clamp(4, 512);
                let mut fg = BinGrid::new(design, fb, fb, target_density);
                let (fx, fy) = fg.spread_targets(
                    design,
                    &hot,
                    &model.var_of,
                    &best.0,
                    &best.1,
                    &jitter,
                    cfg.diffusion_steps,
                    1.0,
                    cfg.diffusion_nu,
                );
                finalists.push((name, fx, fy));
            }
            let mut win = 0usize;
            let mut best_key = (usize::MAX, i64::MAX);
            for (i, (_, fx, fy)) in finalists.iter().enumerate() {
                let mut trial = design.clone();
                write_positions(&mut trial, &model.var_of, fx, fy);
                let gcells = rlleg_legalize::GcellGrid::auto(&trial);
                let mut lg = rlleg_legalize::Legalizer::new(&trial);
                let run = lg.run_gcells_parallel(
                    &mut trial,
                    &rlleg_legalize::Ordering::SizeDescending,
                    &gcells,
                    1,
                );
                let key = (run.failed.len(), rlleg_design::metrics::total_hpwl(&trial));
                if key < best_key {
                    best_key = key;
                    win = i;
                }
            }
            match finalists[win].0 {
                "input" => telemetry::counter("gplace.finalist.input").add(1),
                "refined" => telemetry::counter("gplace.finalist.refined").add(1),
                _ => telemetry::counter("gplace.finalist.spread").add(1),
            }
            let (_, wx, wy) = finalists.swap_remove(win);
            best = (wx, wy);
            grid.deposit(design, &hot, &model.var_of, &best.0, &best.1);
            best_overflow = grid.overflow();
            // The trajectory reports feasibility progress (min-so-far); the
            // winning finalist may sit above an earlier minimum, so only
            // extend the vector where it stays non-increasing.
            let last = *stats.overflow.last().expect("pushed at init");
            if best_overflow < last {
                stats.overflow.push(best_overflow);
            }
        }
    }
    // Final rough legalization (cold construction only): if the run never
    // reached the overflow target, spread the best iterate once more until
    // its peak utilization is feasible and hand the *targets* to the
    // writeback. The anchored solve always re-introduces some overlap; the
    // legalizer downstream pays for that in displacement, so what it
    // receives must be the capacity-feasible side of the loop, not the
    // solver side. Warm refinement instead settles the trade with the
    // legalization-aware finalist selection above.
    if !warm && best_overflow > cfg.target_overflow {
        let (fx, fy) = grid.spread_targets(
            design,
            &hot,
            &model.var_of,
            &best.0,
            &best.1,
            &jitter,
            cfg.diffusion_steps,
            1.0,
            cfg.diffusion_nu,
        );
        grid.deposit(design, &hot, &model.var_of, &fx, &fy);
        let ovf = grid.overflow();
        if ovf <= best_overflow {
            best_overflow = ovf;
            best = (fx, fy);
            // The trajectory reports feasibility progress (min-so-far); the
            // selected warm iterate may sit above an earlier minimum, so
            // only extend the vector where it stays non-increasing.
            let last = *stats.overflow.last().expect("pushed at init");
            if ovf < last {
                stats.overflow.push(ovf);
            }
        }
    }
    stats.converged = best_overflow <= qualify;

    // Write the best iterate back: integer positions, clamped on-die (and
    // into the nearest fitting fence rectangle for fenced cells).
    write_positions(design, &model.var_of, &best.0, &best.1);

    telemetry::counter("gplace.runs").add(1);
    telemetry::counter("gplace.cg_iterations").add(stats.cg_iterations as u64);
    stats.hpwl = rlleg_design::metrics::total_hpwl(design);
    stats
}

/// Float HPWL over the real nets at the given variable positions (fixed
/// cells and fixed pins at their design coordinates). Used to rank warm
/// refinement iterates without rounding to integer positions.
fn float_hpwl(design: &Design, model: &netmodel::NetModel, xs: &[f64], ys: &[f64]) -> f64 {
    let mut total = 0.0;
    for net in design.nets.iter() {
        let mut lo_x = f64::MAX;
        let mut hi_x = f64::MIN;
        let mut lo_y = f64::MAX;
        let mut hi_y = f64::MIN;
        let mut pins = 0usize;
        for pin in net.pins.iter() {
            let (px, py) = match *pin {
                rlleg_design::Pin::OnCell { cell, offset } => {
                    let ci = cell.index();
                    if design.cells[ci].is_movable() {
                        let v = model.var_of[ci] as usize;
                        (xs[v] + offset.x as f64, ys[v] + offset.y as f64)
                    } else {
                        let p = design.cells[ci].pos;
                        ((p.x + offset.x) as f64, (p.y + offset.y) as f64)
                    }
                }
                rlleg_design::Pin::Fixed(p) => (p.x as f64, p.y as f64),
            };
            lo_x = lo_x.min(px);
            hi_x = hi_x.max(px);
            lo_y = lo_y.min(py);
            hi_y = hi_y.max(py);
            pins += 1;
        }
        if pins >= 2 {
            total += (hi_x - lo_x) + (hi_y - lo_y);
        }
    }
    total
}

/// Writes float variable positions into the design as integer `gp_pos`
/// and `pos`, clamped fully on-die — and into the nearest fitting fence
/// rectangle for fenced cells — clearing the `legalized` flag. Fixed cells
/// are untouched.
fn write_positions(design: &mut Design, var_of: &[u32], xs: &[f64], ys: &[f64]) {
    let core = design.core;
    let rh = design.tech.row_height;
    for id in design.cell_ids().collect::<Vec<_>>() {
        let c = design.cell(id);
        if !c.is_movable() {
            continue;
        }
        let v = var_of[id.index()] as usize;
        let (w, h) = (c.width, c.height(rh));
        let mut bounds = core;
        if let Some(reg) = c.region {
            let p = Point::new(xs[v].round() as i64, ys[v].round() as i64);
            // Only the on-die part of a fence rect is a valid target: a
            // hostile fence hanging off the core must not pull the cell
            // off-die (such cells fall back to a plain core clamp and are
            // the legalizer's problem to fail or quarantine).
            if let Some(r) = design
                .region(reg)
                .rects
                .iter()
                .filter_map(|r| r.intersection(&core))
                .filter(|r| r.width() >= w && r.height() >= h)
                .min_by_key(|r| r.manhattan_to_point(p))
            {
                bounds = r;
            }
        }
        let x = (xs[v].round() as i64).clamp(bounds.lo.x, (bounds.hi.x - w).max(bounds.lo.x));
        let y = (ys[v].round() as i64).clamp(bounds.lo.y, (bounds.hi.y - h).max(bounds.lo.y));
        let cell = design.cell_mut(id);
        cell.gp_pos = Point::new(x, y);
        cell.pos = Point::new(x, y);
        cell.legalized = false;
    }
}

/// Clamps every movable variable into the core (cell fully on-die).
fn clamp_vars(
    design: &Design,
    hot: &rlleg_design::HotCells,
    var_of: &[u32],
    xs: &mut [f64],
    ys: &mut [f64],
) {
    let core = design.core;
    let rh = design.tech.row_height as f64;
    for id in hot.movable_ids() {
        let v = var_of[id.index()] as usize;
        let w = hot.width(id) as f64;
        let h = hot.h_rows(id) as f64 * rh;
        let lo_x = core.lo.x as f64;
        let hi_x = (core.hi.x as f64 - w).max(lo_x);
        let lo_y = core.lo.y as f64;
        let hi_y = (core.hi.y as f64 - h).max(lo_y);
        xs[v] = xs[v].clamp(lo_x, hi_x);
        ys[v] = ys[v].clamp(lo_y, hi_y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};

    fn bench_design(scale: f64) -> Design {
        let spec = rlleg_benchgen::find_spec("usb_phy")
            .expect("table row")
            .scaled(scale);
        rlleg_benchgen::generate(&spec)
    }

    #[test]
    fn cold_place_reduces_overflow_monotonically() {
        let mut d = bench_design(0.1);
        let cfg = GpConfig {
            warm_start: false,
            ..GpConfig::default()
        };
        let stats = place(&mut d, &cfg);
        assert!(!stats.overflow.is_empty());
        for w in stats.overflow.windows(2) {
            assert!(w[1] <= w[0], "overflow not monotone: {:?}", stats.overflow);
        }
        assert!(
            stats.overflow.last().expect("entries") < &stats.overflow[0].max(0.101),
            "spreading made no progress: {:?}",
            stats.overflow
        );
    }

    fn legalized_hpwl(mut d: Design) -> i64 {
        let gcells = rlleg_legalize::GcellGrid::auto(&d);
        let mut lg = rlleg_legalize::Legalizer::new(&d);
        let run = lg.run_gcells_parallel(
            &mut d,
            &rlleg_legalize::Ordering::SizeDescending,
            &gcells,
            1,
        );
        assert!(
            run.failed.is_empty(),
            "legalization failed {} cells",
            run.failed.len()
        );
        rlleg_design::metrics::total_hpwl(&d)
    }

    #[test]
    fn warm_place_never_worsens_legalized_wirelength() {
        let d0 = bench_design(0.1);
        let baseline = legalized_hpwl(d0.clone());
        let mut d = d0;
        let stats = place(&mut d, &GpConfig::default());
        for w in stats.overflow.windows(2) {
            assert!(w[1] <= w[0], "overflow not monotone: {:?}", stats.overflow);
        }
        // The input is itself a finalist of the legalization-aware
        // selection, so the legalized result can never regress.
        let after = legalized_hpwl(d);
        assert!(
            after <= baseline,
            "warm refinement worsened legalized HPWL: {baseline} -> {after}"
        );
    }

    #[test]
    fn place_is_deterministic_and_on_die() {
        let mut a = bench_design(0.05);
        let mut b = bench_design(0.05);
        let s1 = place(&mut a, &GpConfig::default());
        let s2 = place(&mut b, &GpConfig::default());
        assert_eq!(s1.hpwl, s2.hpwl);
        let rh = a.tech.row_height;
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            assert_eq!(ca.gp_pos, cb.gp_pos, "cell {} differs", ca.name);
            assert!(a.core.contains(&ca.rect(rh)), "{} off-die", ca.name);
        }
    }

    #[test]
    fn fixed_cells_never_move() {
        let mut b = DesignBuilder::new("t", Technology::contest(), 200, 40);
        let f = b.add_fixed_cell("macro", 20, 4, Point::new(4_000, 8_000));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        b.add_net("n0", vec![(f, 0, 0), (c, 0, 0)]);
        let mut d = b.build();
        let before = d.cell(f).pos;
        place(&mut d, &GpConfig::default());
        assert_eq!(d.cell(f).pos, before);
        assert!(d.cell(c).is_movable());
        // The movable cell is pulled toward the macro pin.
        let p = d.cell(c).pos;
        assert!(
            p.manhattan(Point::new(4_000, 8_000)) < 4_000,
            "cell at {p} not attracted to the macro pin"
        );
    }

    #[test]
    fn fenced_cells_end_inside_their_region() {
        // usb_phy is OpenCores (no fences); use a contest spec instead.
        let spec = rlleg_benchgen::find_spec("des_perf_b_md1")
            .expect("table row")
            .scaled(0.004);
        let mut d = rlleg_benchgen::generate(&spec);
        place(&mut d, &GpConfig::default());
        let rh = d.tech.row_height;
        for c in d.cells.iter().filter(|c| c.is_movable()) {
            if let Some(reg) = c.region {
                assert!(
                    d.region(reg).contains(&c.rect(rh)),
                    "fenced cell {} at {} escaped its region",
                    c.name,
                    c.pos
                );
            }
        }
    }

    #[test]
    fn empty_design_is_a_no_op() {
        let mut d = DesignBuilder::new("e", Technology::contest(), 20, 8).build();
        let stats = place(&mut d, &GpConfig::default());
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.hpwl, 0);
    }
}
