//! Bin-grid density accounting and diffusion-based spreading.
//!
//! The placer deposits movable-cell area into a uniform bin grid, measures
//! *overflow* (the fraction of movable area sitting above bin capacity),
//! and — when overflow is too high — integrates cell positions through a
//! few steps of a density diffusion field to obtain spread targets. The
//! targets feed back into the quadratic solve as anchored pseudo-pins.

use rlleg_design::{Design, HotCells};
use rlleg_geom::Rect;

/// Uniform bin grid over the core with per-bin capacity (placeable area
/// times target density).
#[derive(Debug)]
pub struct BinGrid {
    nx: usize,
    ny: usize,
    /// Bin width/height in dbu.
    bw: f64,
    bh: f64,
    /// Core lower-left corner.
    x0: f64,
    y0: f64,
    /// Per-bin usable capacity in dbu² (already scaled by target density).
    cap: Vec<f64>,
    /// Per-bin deposited movable area in dbu².
    usage: Vec<f64>,
}

impl BinGrid {
    /// Builds the grid, subtracting fixed-cell (macro) area from bin
    /// capacity.
    pub fn new(design: &Design, nx: usize, ny: usize, target_density: f64) -> BinGrid {
        let core = design.core;
        let (nx, ny) = (nx.max(1), ny.max(1));
        let bw = core.width() as f64 / nx as f64;
        let bh = core.height() as f64 / ny as f64;
        let mut cap = vec![bw * bh; nx * ny];
        let rh = design.tech.row_height;
        for c in design.cells.iter().filter(|c| !c.is_movable()) {
            let Some(r) = c.rect(rh).intersection(&core) else {
                continue;
            };
            subtract_rect(&mut cap, nx, ny, bw, bh, core, &r);
        }
        for c in cap.iter_mut() {
            *c = (*c).max(0.0) * target_density;
        }
        BinGrid {
            nx,
            ny,
            bw,
            bh,
            x0: core.lo.x as f64,
            y0: core.lo.y as f64,
            cap,
            usage: vec![0.0; nx * ny],
        }
    }

    /// Bin count per axis.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Per-bin capacity in dbu², row-major.
    pub fn capacity(&self) -> &[f64] {
        &self.cap
    }

    /// Per-bin deposited movable area in dbu², row-major.
    pub fn usage(&self) -> &[f64] {
        &self.usage
    }

    /// Core lower-left corner and bin pitch: `(x0, y0, bw, bh)`.
    pub fn geometry(&self) -> (f64, f64, f64, f64) {
        (self.x0, self.y0, self.bw, self.bh)
    }

    /// Deposits every movable cell's area into the grid at the given
    /// positions (`xs`/`ys` indexed by placer variable).
    pub fn deposit(
        &mut self,
        design: &Design,
        hot: &HotCells,
        var_of: &[u32],
        xs: &[f64],
        ys: &[f64],
    ) {
        self.usage.iter_mut().for_each(|u| *u = 0.0);
        let rh = design.tech.row_height as f64;
        for id in hot.movable_ids() {
            let v = var_of[id.index()] as usize;
            let w = hot.width(id) as f64;
            let h = hot.h_rows(id) as f64 * rh;
            self.add_area(xs[v], ys[v], w, h);
        }
    }

    fn add_area(&mut self, x: f64, y: f64, w: f64, h: f64) {
        let fx0 = (x - self.x0) / self.bw;
        let fx1 = (x + w - self.x0) / self.bw;
        let fy0 = (y - self.y0) / self.bh;
        let fy1 = (y + h - self.y0) / self.bh;
        let bx0 = (fx0.floor().max(0.0) as usize).min(self.nx - 1);
        let bx1 = (fx1.ceil().max(1.0) as usize).min(self.nx);
        let by0 = (fy0.floor().max(0.0) as usize).min(self.ny - 1);
        let by1 = (fy1.ceil().max(1.0) as usize).min(self.ny);
        for by in by0..by1 {
            let oy = overlap_1d(fy0, fy1, by as f64, by as f64 + 1.0) * self.bh;
            if oy <= 0.0 {
                continue;
            }
            for bx in bx0..bx1 {
                let ox = overlap_1d(fx0, fx1, bx as f64, bx as f64 + 1.0) * self.bw;
                if ox > 0.0 {
                    self.usage[by * self.nx + bx] += ox * oy;
                }
            }
        }
    }

    /// Overflow fraction: movable area above bin capacity divided by total
    /// movable area (0 when the grid is empty).
    pub fn overflow(&self) -> f64 {
        let total: f64 = self.usage.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let over: f64 = self
            .usage
            .iter()
            .zip(&self.cap)
            .map(|(&u, &c)| (u - c).max(0.0))
            .sum();
        over / total
    }

    /// Integrates cell positions through their *own* density diffusion
    /// field until peak utilization flattens below `stop_util` (or
    /// `max_steps`), returning spread targets. `nu` is the diffusion
    /// coefficient (stable for `nu <= 0.25`; face velocities are bounded by
    /// `2 * nu` bins per step).
    ///
    /// Every step re-deposits the moved cells and advects them along the
    /// continuity-equation velocity of the resulting utilization field
    /// `rho = usage / capacity` — a Lagrangian integration of
    /// `d rho / dt = nu * lap(rho)`. Re-depositing each step is load-bearing:
    /// diffusing a *fixed* field while tracers lag lets the field flatten
    /// underneath a collapsed cluster whose center never feels a gradient,
    /// leaving the cells stuck. Here the field is always the cells' actual
    /// density, so gradients persist exactly until the cells have moved.
    /// The smooth flow preserves relative cell order (and with it most of
    /// the wirelength).
    /// `jitter` is a deterministic per-variable sub-site offset applied to
    /// the starting targets: exactly-coincident cells would otherwise see
    /// identical velocities and move in lockstep forever.
    #[allow(clippy::too_many_arguments)]
    pub fn spread_targets(
        &mut self,
        design: &Design,
        hot: &HotCells,
        var_of: &[u32],
        xs: &[f64],
        ys: &[f64],
        jitter: &[(f64, f64)],
        max_steps: usize,
        stop_util: f64,
        nu: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let (nx, ny) = (self.nx, self.ny);
        // Zero-capacity bins (fully blocked by macros) read as highly
        // over-full so cells flow out of them.
        let floor = 0.01 * self.bw * self.bh;
        let mut tx = xs.to_vec();
        let mut ty = ys.to_vec();
        for id in hot.movable_ids() {
            let v = var_of[id.index()] as usize;
            let (jx, jy) = jitter.get(v).copied().unwrap_or((0.0, 0.0));
            tx[v] += jx;
            ty[v] += jy;
        }
        let mut rho = vec![0.0f64; nx * ny];
        for _ in 0..max_steps {
            self.deposit(design, hot, var_of, &tx, &ty);
            for (r, (&u, &c)) in rho.iter_mut().zip(self.usage.iter().zip(&self.cap)) {
                *r = u / c.max(floor);
            }
            let peak = rho.iter().cloned().fold(0.0f64, f64::max);
            if peak <= stop_util {
                break;
            }
            let rh = design.tech.row_height as f64;
            for id in hot.movable_ids() {
                let v = var_of[id.index()] as usize;
                // Sample the velocity at the cell *center*: a corner sample
                // biases the flow and lets a cell's own deposited mass push
                // it sideways once cells are comparable to bin size.
                let hw = hot.width(id) as f64 * 0.5;
                let hh = hot.h_rows(id) as f64 * rh * 0.5;
                let fx = ((tx[v] + hw - self.x0) / self.bw).clamp(0.0, nx as f64 - 1e-9);
                let fy = ((ty[v] + hh - self.y0) / self.bh).clamp(0.0, ny as f64 - 1e-9);
                let (vx, vy) = self.velocity(&rho, fx, fy, nu);
                // A cell wider/taller than the whole grid inverts the clamp
                // range; pin such cells to the grid origin instead.
                let hi_x = (self.x0 + nx as f64 * self.bw - 2.0 * hw).max(self.x0);
                let hi_y = (self.y0 + ny as f64 * self.bh - 2.0 * hh).max(self.y0);
                tx[v] = (tx[v] + vx * self.bw).clamp(self.x0, hi_x);
                ty[v] = (ty[v] + vy * self.bh).clamp(self.y0, hi_y);
            }
        }
        (tx, ty)
    }

    /// Face-flux continuity velocity (in bins per step) at fractional bin
    /// coordinates.
    ///
    /// The flux across each bin face is `-nu * (rho_hi - rho_lo)`, the face
    /// velocity is flux over face density, and a cell interpolates between
    /// its bin's two face velocities by its intra-bin position. At a density
    /// peak the left face flows left and the right face flows right, so
    /// cells at a cluster center still split apart — a centered-gradient
    /// sample would be zero there by symmetry and leave them stuck.
    fn velocity(&self, rho: &[f64], fx: f64, fy: f64, nu: f64) -> (f64, f64) {
        let (nx, ny) = (self.nx, self.ny);
        let bx = (fx.floor() as usize).min(nx - 1);
        let by = (fy.floor() as usize).min(ny - 1);
        let ax = fx - bx as f64;
        let ay = fy - by as f64;
        let floor = 0.05;
        // Die-boundary faces carry no flux.
        let face = |lo: f64, hi: f64| -nu * (hi - lo) / ((lo + hi) * 0.5).max(floor);
        let c = rho[by * nx + bx];
        let vx_lo = if bx == 0 {
            0.0
        } else {
            face(rho[by * nx + bx - 1], c)
        };
        let vx_hi = if bx + 1 >= nx {
            0.0
        } else {
            face(c, rho[by * nx + bx + 1])
        };
        let vy_lo = if by == 0 {
            0.0
        } else {
            face(rho[(by - 1) * nx + bx], c)
        };
        let vy_hi = if by + 1 >= ny {
            0.0
        } else {
            face(c, rho[(by + 1) * nx + bx])
        };
        (
            vx_lo * (1.0 - ax) + vx_hi * ax,
            vy_lo * (1.0 - ay) + vy_hi * ay,
        )
    }
}

/// Overlap length of `[a0, a1)` and `[b0, b1)` in bin units.
fn overlap_1d(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

fn subtract_rect(cap: &mut [f64], nx: usize, ny: usize, bw: f64, bh: f64, core: Rect, r: &Rect) {
    let fx0 = (r.lo.x - core.lo.x) as f64 / bw;
    let fx1 = (r.hi.x - core.lo.x) as f64 / bw;
    let fy0 = (r.lo.y - core.lo.y) as f64 / bh;
    let fy1 = (r.hi.y - core.lo.y) as f64 / bh;
    let bx0 = (fx0.floor().max(0.0) as usize).min(nx - 1);
    let bx1 = (fx1.ceil().max(1.0) as usize).min(nx);
    let by0 = (fy0.floor().max(0.0) as usize).min(ny - 1);
    let by1 = (fy1.ceil().max(1.0) as usize).min(ny);
    for by in by0..by1 {
        let oy = overlap_1d(fy0, fy1, by as f64, by as f64 + 1.0) * bh;
        for bx in bx0..bx1 {
            let ox = overlap_1d(fx0, fx1, bx as f64, bx as f64 + 1.0) * bw;
            cap[by * nx + bx] -= ox * oy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    #[test]
    fn deposit_conserves_area_and_reports_overflow() {
        let mut b = DesignBuilder::new("t", Technology::contest(), 100, 10);
        for i in 0..4 {
            b.add_cell(format!("c{i}"), 2, 1, Point::new(0, 0));
        }
        let d = b.build();
        let hot = d.hot_cells();
        let var_of: Vec<u32> = (0..4).collect();
        let mut g = BinGrid::new(&d, 4, 4, 1.0);
        // All four cells stacked on one spot: usage concentrates, so some
        // overflow only if the bin is smaller than 4 cells; capacity of one
        // bin here is 25 sites x 2.5 rows, far more than 8 sites of cells.
        let xs = vec![0.0; 4];
        let ys = vec![0.0; 4];
        g.deposit(&d, &hot, &var_of, &xs, &ys);
        let rh = d.tech.row_height as f64;
        let sw = d.tech.site_width as f64;
        let total: f64 = g.usage.iter().sum();
        assert!((total - 4.0 * 2.0 * sw * rh).abs() < 1e-6, "area conserved");
        assert_eq!(g.overflow(), 0.0);
        // Shrink capacity to force overflow.
        let mut tight = BinGrid::new(&d, 100, 10, 0.001);
        tight.deposit(&d, &hot, &var_of, &xs, &ys);
        assert!(tight.overflow() > 0.5, "overflow {}", tight.overflow());
    }

    #[test]
    fn macros_eat_capacity() {
        let mut b = DesignBuilder::new("t", Technology::contest(), 100, 10);
        b.add_fixed_cell("m", 50, 4, Point::new(0, 0));
        let d = b.build();
        let g = BinGrid::new(&d, 2, 2, 1.0);
        // Lower-left quadrant is half-covered by the macro.
        assert!(
            g.cap[0] < g.cap[1],
            "macro bin {} vs free {}",
            g.cap[0],
            g.cap[1]
        );
    }

    #[test]
    fn spreading_moves_cells_apart() {
        // Many cells stacked in the middle of the die must diffuse out
        // until peak utilization reaches the stop threshold.
        let mut b = DesignBuilder::new("t", Technology::contest(), 120, 40);
        for i in 0..64 {
            b.add_cell(format!("c{i}"), 4, 1, Point::new(0, 0));
        }
        let d = b.build();
        let hot = d.hot_cells();
        let var_of: Vec<u32> = (0..64).collect();
        let mut g = BinGrid::new(&d, 8, 8, 0.2);
        let cx = g.x0 + 4.0 * g.bw;
        let cy = g.y0 + 4.0 * g.bh;
        // Tiny deterministic stagger so coincident cells pick directions.
        let xs: Vec<f64> = (0..64).map(|i| cx + (i % 8) as f64 - 3.5).collect();
        let ys: Vec<f64> = (0..64).map(|i| cy + (i / 8) as f64 - 3.5).collect();
        g.deposit(&d, &hot, &var_of, &xs, &ys);
        let before = g.overflow();
        assert!(before > 0.3, "start must be congested, overflow {before}");
        let (tx, ty) = g.spread_targets(&d, &hot, &var_of, &xs, &ys, &[], 400, 1.0, 0.2);
        g.deposit(&d, &hot, &var_of, &tx, &ty);
        let after = g.overflow();
        assert!(
            after < 0.05,
            "spreading must flatten the pile-up: {before} -> {after}"
        );
        // The flow is outward: the spread of x positions strictly grows.
        let span = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(span(&tx) > span(&xs) && span(&ty) > span(&ys));
    }
}
