//! The sharded metrics registry.
//!
//! Hot-path updates touch a single per-thread shard (one relaxed atomic
//! RMW, no locks), so concurrent workers — A3C agents, parallel bench runs
//! — never contend on a shared cache line. Shards are merged only when a
//! [`Snapshot`](crate::Snapshot) is taken.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// Number of shards per metric. Power of two so the shard pick is a mask.
pub const SHARDS: usize = 16;

/// Index of this thread's shard. Threads are assigned round-robin on first
/// use, which spreads a worker pool evenly across shards.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Relaxed) & (SHARDS - 1);
    }
    SHARD.with(|s| *s)
}

/// One cache line per shard so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Padded<T>(T);

/// A monotonically increasing sum, sharded across threads.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[Padded<AtomicU64>; SHARDS]>,
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: Arc::new(std::array::from_fn(|_| Padded(AtomicU64::new(0)))),
        }
    }

    /// Adds `n`. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::disabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Relaxed);
    }

    /// Increments by one. No-op while telemetry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A last-write-wins instantaneous value (no sharding: reads must see the
/// latest write, and gauges are not hot-path metrics).
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Self {
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the gauge. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::disabled() {
            return;
        }
        self.value.store(v, Relaxed);
    }

    /// Adjusts the gauge by `delta`. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::disabled() {
            return;
        }
        self.value.fetch_add(delta, Relaxed);
    }

    /// Sets the gauge to the rate `count / secs` in milliunits per second
    /// (rounded). No-op when `secs` is not positive.
    ///
    /// Integer gauges truncate: a slow producer at 0.7 events/sec stored
    /// via `set(rate as i64)` reports 0 forever. Rate-style gauges should
    /// store milli-rates through this helper instead, keeping three
    /// decimal digits of resolution in an integer metric.
    #[inline]
    pub fn set_rate_milli(&self, count: f64, secs: f64) {
        if secs > 0.0 {
            self.set((count * 1000.0 / secs).round() as i64);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// Lock-free f64 add via compare-exchange on the bit pattern.
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

fn f64_update(cell: &AtomicU64, v: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Relaxed);
    loop {
        if !better(v, f64::from_bits(cur)) {
            return;
        }
        match cell.compare_exchange_weak(cur, v.to_bits(), Relaxed, Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

struct HistogramShard {
    /// One count per bound plus the overflow bucket.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramShard {
    fn new(n_bounds: usize) -> Self {
        Self {
            buckets: (0..=n_bounds).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

struct HistogramCore {
    /// Inclusive upper bounds, strictly increasing; the overflow bucket is
    /// implicit.
    bounds: Box<[f64]>,
    shards: [Padded<HistogramShard>; SHARDS],
}

/// A fixed-bucket distribution of f64 observations, sharded across threads.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            core: Arc::new(HistogramCore {
                bounds: bounds.into(),
                shards: std::array::from_fn(|_| Padded(HistogramShard::new(bounds.len()))),
            }),
        }
    }

    /// Records one observation. No-op while telemetry is disabled.
    #[inline]
    pub fn record(&self, v: f64) {
        if crate::disabled() {
            return;
        }
        let shard = &self.core.shards[shard_index()].0;
        // Bucket i covers (bounds[i-1], bounds[i]]; the last bucket is
        // everything above the final bound.
        let idx = self.core.bounds.partition_point(|&b| b < v);
        shard.buckets[idx].fetch_add(1, Relaxed);
        f64_add(&shard.sum, v);
        f64_update(&shard.min, v, |new, cur| new < cur);
        f64_update(&shard.max, v, |new, cur| new > cur);
    }

    /// Merges every shard into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let n = self.core.bounds.len() + 1;
        let mut bucket_counts = vec![0u64; n];
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for shard in &self.core.shards {
            for (acc, b) in bucket_counts.iter_mut().zip(shard.0.buckets.iter()) {
                *acc += b.load(Relaxed);
            }
            sum += f64::from_bits(shard.0.sum.load(Relaxed));
            min = min.min(f64::from_bits(shard.0.min.load(Relaxed)));
            max = max.max(f64::from_bits(shard.0.max.load(Relaxed)));
        }
        let count: u64 = bucket_counts.iter().sum();
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            bounds: self.core.bounds.to_vec(),
            bucket_counts,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish_non_exhaustive()
    }
}

/// Commonly used bucket boundary sets.
pub mod buckets {
    /// Wall-time buckets in seconds: 1 µs to 100 s, one decade apart.
    pub const SECONDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

    /// Displacement buckets in dbu: sub-site moves to cross-die moves.
    pub const DISPLACEMENT_DBU: &[f64] = &[
        100.0, 200.0, 400.0, 800.0, 1_600.0, 3_200.0, 6_400.0, 12_800.0, 25_600.0, 51_200.0,
        102_400.0,
    ];

    /// Generic decimal magnitude buckets for counts per operation.
    pub const MAGNITUDE: &[f64] = &[
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 10_000.0, 100_000.0,
    ];
}

/// Named counters, gauges, and histograms with get-or-create registration.
///
/// Handles returned by the accessors are cheap `Arc` clones; call sites
/// that update a metric in a loop should hold the handle rather than
/// re-looking it up by name.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    /// Span wall-time histograms, kept apart so snapshots can prefix them.
    span_hists: RwLock<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_insert_with(Counter::new)
            .clone()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_insert_with(Gauge::new)
            .clone()
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later callers get the existing buckets regardless of the
    /// bounds they pass).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// The wall-time histogram backing spans named `name`.
    pub(crate) fn span_histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.span_hists.read().get(name) {
            return h.clone();
        }
        self.span_hists
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets::SECONDS))
            .clone()
    }

    /// Merges every shard of every metric into a serializable snapshot.
    /// Span histograms appear under `span.<name>`.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        for (k, v) in self.span_hists.read().iter() {
            histograms.insert(format!("span.{k}"), v.snapshot());
        }
        Snapshot {
            counters,
            gauges,
            histograms,
            dropped_events: 0,
        }
    }

    /// Drops every registered metric. Handles held by call sites keep
    /// working but are no longer visible to future snapshots; intended for
    /// test isolation, not production use.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.span_hists.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_enabled<R>(f: impl FnOnce() -> R) -> R {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let r = f();
        crate::set_enabled(false);
        r
    }

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.count");
        with_enabled(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let c = c.clone();
                    s.spawn(move || {
                        for _ in 0..1_000 {
                            c.inc();
                        }
                    });
                }
            });
        });
        assert_eq!(c.value(), 4_000);
        assert_eq!(reg.snapshot().counters["t.count"], 4_000);
    }

    #[test]
    fn gauge_rate_milli_keeps_sub_unit_rates() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("t.rate");
        with_enabled(|| {
            // 0.7 events/sec would truncate to 0 as a plain integer rate.
            g.set_rate_milli(7.0, 10.0);
            assert_eq!(g.value(), 700);
            g.set_rate_milli(12_345.0, 1.0);
            assert_eq!(g.value(), 12_345_000);
            // Degenerate elapsed time leaves the last value in place.
            g.set_rate_milli(5.0, 0.0);
            assert_eq!(g.value(), 12_345_000);
        });
    }

    #[test]
    fn disabled_means_no_updates() {
        let _g = crate::test_lock();
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.off");
        let h = reg.histogram("t.off_h", buckets::MAGNITUDE);
        c.add(10);
        h.record(5.0);
        assert_eq!(c.value(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.h", &[1.0, 10.0, 100.0]);
        with_enabled(|| {
            for v in [0.5, 1.0, 5.0, 10.0, 99.0, 1_000.0] {
                h.record(v);
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.bucket_counts, vec![2, 2, 1, 1]);
        assert!((s.sum - 1_115.5).abs() < 1e-9);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 1_000.0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("t.g");
        with_enabled(|| {
            g.set(5);
            g.add(-2);
        });
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn same_name_same_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t.same");
        let b = reg.counter("t.same");
        with_enabled(|| a.add(2));
        assert_eq!(b.value(), 2);
    }
}
