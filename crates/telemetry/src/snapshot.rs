//! Point-in-time, serializable views of the registry.
//!
//! [`Snapshot`] is plain data with serde derives, so bench binaries can
//! embed it in their `target/reports/BENCH_*.json` records and offline
//! tooling can read it back.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Merged state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Inclusive bucket upper bounds; the overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` entries.
    pub bucket_counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Builds a histogram directly from a set of values — the same bucket
    /// assignment as the registry's live histograms, but for one-shot
    /// reporting (e.g. the displacement percentiles of a finished run)
    /// without going through global state.
    pub fn from_values(bounds: &[f64], values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::empty(bounds);
        for v in values {
            s.accumulate(v);
        }
        s
    }

    /// An empty histogram over `bounds`, ready for streaming observations
    /// via [`accumulate`](Self::accumulate). Equivalent to
    /// [`from_values`](Self::from_values) with no values.
    pub fn empty(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            bucket_counts: vec![0; bounds.len() + 1],
            ..Self::default()
        }
    }

    /// Folds one observation into the snapshot. Allocation-free, so hot
    /// paths can stream values one at a time instead of buffering them
    /// into a `Vec` for [`from_values`](Self::from_values).
    pub fn accumulate(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.bucket_counts[i] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the containing bucket, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &c) in self.bucket_counts.iter().enumerate() {
            if c == 0 {
                cum += c;
                continue;
            }
            let lo_cum = cum;
            cum += c;
            if (cum as f64) < rank {
                continue;
            }
            let lo = if i == 0 {
                self.min
            } else {
                self.bounds[i - 1].max(self.min)
            };
            let hi = if i < self.bounds.len() {
                self.bounds[i].min(self.max)
            } else {
                self.max
            };
            let frac = (rank - lo_cum as f64) / c as f64;
            // The two-product form is exact at both endpoints (frac = 0 or
            // 1), so quantile(1.0) returns max to the last bit.
            return (lo * (1.0 - frac) + hi * frac).clamp(self.min, self.max);
        }
        self.max
    }
}

/// A merged, serializable view of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name; span timings appear as `span.<name>`.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Events shed by the installed journal (0 when no journal).
    pub dropped_events: u64,
}

impl Snapshot {
    /// Counter total, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram view, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot is plain data")
    }

    /// Parses a snapshot back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: Vec<f64>, bucket_counts: Vec<u64>, min: f64, max: f64) -> HistogramSnapshot {
        let count = bucket_counts.iter().sum();
        let sum = 0.0;
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            bounds,
            bucket_counts,
        }
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        // 10 values in (1, 2], 10 in (2, 4].
        let h = hist(vec![1.0, 2.0, 4.0], vec![0, 10, 10, 0], 1.2, 3.9);
        assert!(h.quantile(0.0) >= h.min);
        let p50 = h.quantile(0.5);
        assert!((1.2..=2.0).contains(&p50), "p50 {p50}");
        let p95 = h.quantile(0.95);
        assert!((2.0..=3.9).contains(&p95), "p95 {p95}");
        assert_eq!(h.quantile(1.0), 3.9);
    }

    #[test]
    fn overflow_bucket_reports_max() {
        // All mass in the implicit overflow bucket: interpolation is bounded
        // by the observed range and tops out at max.
        let h = hist(vec![1.0], vec![0, 5], 10.0, 50.0);
        let p99 = h.quantile(0.99);
        assert!((10.0..=50.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 50.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = HistogramSnapshot::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn from_values_matches_manual_bucketing() {
        let h = HistogramSnapshot::from_values(&[1.0, 10.0], [0.5, 1.0, 2.0, 50.0]);
        assert_eq!(h.count, 4);
        assert_eq!(h.bucket_counts, vec![2, 1, 1]);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 50.0);
        assert!((h.sum - 53.5).abs() < 1e-12);
        let empty = HistogramSnapshot::from_values(&[1.0], std::iter::empty());
        assert_eq!((empty.min, empty.max, empty.count), (0.0, 0.0, 0));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut s = Snapshot::default();
        s.counters.insert("a.b".into(), 42);
        s.gauges.insert("g".into(), -7);
        s.histograms
            .insert("h".into(), hist(vec![1.0, 10.0], vec![1, 2, 3], 0.5, 99.0));
        s.dropped_events = 3;
        let json = s.to_json();
        let back = Snapshot::from_json(&json).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.counter("a.b"), 42);
        assert_eq!(back.counter("missing"), 0);
    }
}
