//! RAII wall-time spans.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! records it into a per-name histogram in the global registry. A
//! thread-local stack tracks the active span names so diagnostics (and
//! journal events) can see where they were emitted from.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::Histogram;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An active timing span; the measurement commits on drop.
///
/// Created by [`crate::span`]. When telemetry is disabled at creation time
/// the span is inert: no clock read, no stack push, no histogram update.
#[must_use = "a span measures the time until it is dropped"]
pub struct Span {
    name: &'static str,
    armed: Option<(Instant, Histogram)>,
}

impl Span {
    pub(crate) fn start(name: &'static str) -> Self {
        if crate::disabled() {
            return Self { name, armed: None };
        }
        let hist = crate::global().span_histogram(name);
        STACK.with(|s| s.borrow_mut().push(name));
        Self {
            name,
            armed: Some((Instant::now(), hist)),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `true` when this span is actually measuring (telemetry was enabled
    /// at creation).
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.armed.take() {
            hist.record(start.elapsed().as_secs_f64());
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // RAII spans drop LIFO; pop defensively in case a span was
                // leaked across an unwind.
                if let Some(i) = stack.iter().rposition(|&n| n == self.name) {
                    stack.truncate(i);
                }
            });
        }
    }
}

/// The names of the spans currently active on this thread, outermost first.
pub fn current_stack() -> Vec<&'static str> {
    STACK.with(|s| s.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_histogram_and_tracks_stack() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        {
            let outer = crate::span("test.outer");
            assert!(outer.is_armed());
            {
                let _inner = crate::span("test.inner");
                assert_eq!(current_stack(), vec!["test.outer", "test.inner"]);
            }
            assert_eq!(current_stack(), vec!["test.outer"]);
        }
        crate::set_enabled(false);
        assert!(current_stack().is_empty());
        let snap = crate::global().snapshot();
        assert_eq!(snap.histograms["span.test.outer"].count, 1);
        assert_eq!(snap.histograms["span.test.inner"].count, 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        let s = crate::span("test.off");
        assert!(!s.is_armed());
        assert!(current_stack().is_empty());
    }
}
