//! `telemetry`: zero-dependency metrics and tracing for the RL-Legalizer
//! suite.
//!
//! Four pieces, all designed so instrumentation can live permanently in
//! hot paths:
//!
//! - a sharded [`MetricsRegistry`] of counters, gauges, and fixed-bucket
//!   histograms (per-thread shards of relaxed atomics, merged only on
//!   snapshot);
//! - RAII [`Span`] timers feeding per-span wall-time histograms, with a
//!   thread-local stack of active span names;
//! - a bounded JSONL [`Journal`] drained by a background thread, which
//!   sheds (and counts) events instead of ever blocking a producer;
//! - a serializable [`Snapshot`] of everything, embedded by the bench
//!   harness into its `target/reports/*.json` records.
//!
//! Telemetry is **off by default**. Every recording call starts with the
//! [`disabled`] check — a single relaxed atomic load — so fully
//! instrumented code costs almost nothing until [`enable`] is called.
//!
//! ```
//! telemetry::enable();
//! let pixels = telemetry::counter("legalize.pixels_scanned");
//! {
//!     let _t = telemetry::span("legalize.run");
//!     pixels.add(123);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("legalize.pixels_scanned"), 123);
//! assert_eq!(snap.histograms["span.legalize.run"].count, 1);
//! telemetry::disable();
//! ```

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::OnceLock;

use parking_lot::RwLock;

pub mod journal;
pub mod registry;
pub mod snapshot;
mod span;

pub use journal::{Event, FieldValue, Journal, RotatingFile};
pub use registry::{buckets, Counter, Gauge, Histogram, MetricsRegistry, SHARDS};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::{current_stack, Span};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` while telemetry is off (the default). Recording paths check this
/// first and bail, so instrumented code stays within a couple of percent
/// of un-instrumented performance when disabled.
#[inline]
pub fn disabled() -> bool {
    !ENABLED.load(Relaxed)
}

/// `true` while telemetry is collecting.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns collection on or off at runtime.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Starts collecting.
pub fn enable() {
    set_enabled(true);
}

/// Stops collecting (handles and registered metrics are kept).
pub fn disable() {
    set_enabled(false);
}

/// The process-wide registry backing the free functions below.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Counter `name` in the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Gauge `name` in the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Histogram `name` in the global registry (created with `bounds` on first
/// use).
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    global().histogram(name, bounds)
}

/// Starts an RAII wall-time span named `name`. Inert when disabled.
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Snapshot of the global registry, including the installed journal's
/// dropped-event count.
pub fn snapshot() -> Snapshot {
    let mut s = global().snapshot();
    s.dropped_events = journal_dropped();
    s
}

static JOURNAL: RwLock<Option<Journal>> = RwLock::new(None);

/// Installs `journal` as the process-wide event sink, returning the
/// previous one (which the caller should [`Journal::finish`]).
pub fn install_journal(journal: Journal) -> Option<Journal> {
    JOURNAL.write().replace(journal)
}

/// Removes the installed journal so the caller can flush it.
pub fn take_journal() -> Option<Journal> {
    JOURNAL.write().take()
}

/// Emits `event` to the installed journal. No-op when telemetry is
/// disabled or no journal is installed.
pub fn emit(event: Event) {
    if disabled() {
        return;
    }
    if let Some(j) = JOURNAL.read().as_ref() {
        j.emit(event);
    }
}

/// Events shed by the installed journal so far (0 when none installed).
pub fn journal_dropped() -> u64 {
    JOURNAL.read().as_ref().map_or(0, Journal::dropped)
}

/// Serializes tests that toggle the global enabled flag or registry.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_flow_counter_span_snapshot() {
        let _g = test_lock();
        set_enabled(true);
        let c = counter("lib.test_counter");
        c.add(5);
        {
            let _s = span("lib.test_span");
        }
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("lib.test_counter"), 5);
        assert_eq!(snap.histograms["span.lib.test_span"].count, 1);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn emit_without_journal_is_safe() {
        let _g = test_lock();
        set_enabled(true);
        emit(Event::new("nobody-listens"));
        set_enabled(false);
    }
}
