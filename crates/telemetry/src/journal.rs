//! Bounded JSONL event journal.
//!
//! Producers call [`Journal::emit`] with a structured [`Event`]; a
//! dedicated drainer thread serializes events to a writer as one JSON
//! object per line. The channel is bounded: when producers outrun the
//! drainer the event is dropped and a counter incremented, so the hot path
//! never blocks on I/O (backpressure by shedding, not stalling).

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{SystemTime, UNIX_EPOCH};

use crossbeam::channel::{bounded, Sender, TrySendError};

/// A field value; kept as a closed enum so serialization needs no trait
/// machinery on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

field_from! {
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One journal record: a kind, a microsecond timestamp, and typed fields.
#[derive(Debug, Clone)]
pub struct Event {
    pub ts_micros: u64,
    pub kind: String,
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Creates an event stamped with the current wall-clock time.
    pub fn new(kind: impl Into<String>) -> Self {
        let ts_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Self {
            ts_micros,
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Attaches a field (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Renders the event as a single JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 24);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_micros.to_string());
        out.push_str(",\"kind\":");
        write_json_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            write_json_str(&mut out, k);
            out.push(':');
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::I64(n) => out.push_str(&n.to_string()),
                FieldValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                FieldValue::Str(s) => write_json_str(&mut out, s),
            }
        }
        out.push('}');
        out
    }
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A bounded, non-blocking JSONL sink.
pub struct Journal {
    tx: Option<Sender<Event>>,
    dropped: Arc<AtomicU64>,
    drainer: Option<JoinHandle<()>>,
}

impl Journal {
    /// Starts a journal writing to `writer` with room for `capacity`
    /// in-flight events.
    pub fn new<W: Write + Send + 'static>(writer: W, capacity: usize) -> Self {
        let (tx, rx) = bounded::<Event>(capacity.max(1));
        let drainer = std::thread::Builder::new()
            .name("telemetry-journal".into())
            .spawn(move || {
                // Writes go straight to the caller's writer (wrap in a
                // BufWriter at the call site if needed) so tests and
                // monitors observe lines as they drain.
                let mut w = writer;
                for ev in rx.iter() {
                    // A failed write is not worth crashing the program for;
                    // the drop counter is the honest signal.
                    let _ = writeln!(w, "{}", ev.to_json_line());
                }
                let _ = w.flush();
            })
            .expect("spawn journal drainer");
        Self {
            tx: Some(tx),
            dropped: Arc::new(AtomicU64::new(0)),
            drainer: Some(drainer),
        }
    }

    /// Enqueues an event without blocking. When the channel is full the
    /// event is discarded and [`dropped`](Self::dropped) incremented.
    pub fn emit(&self, event: Event) {
        let Some(tx) = &self.tx else {
            return;
        };
        match tx.try_send(event) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Relaxed);
            }
        }
    }

    /// Number of events shed because the channel was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Closes the channel, waits for the drainer to flush, and returns the
    /// final dropped-event count.
    pub fn finish(mut self) -> u64 {
        self.shutdown();
        self.dropped()
    }

    fn shutdown(&mut self) {
        self.tx = None; // closes the channel; drainer's iterator ends
        if let Some(h) = self.drainer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

/// A size-capped, rotating file writer for the JSONL journal.
///
/// A long-lived server must not grow its journal without bound. When the
/// current file reaches `max_bytes` — checked only at line boundaries, so
/// every file holds complete JSONL records — it is renamed to `<path>.1`,
/// shifting `<path>.1` to `<path>.2` and so on, and anything past `keep`
/// rotated generations is deleted. Each rotation increments the counter
/// `telemetry.journal.rotated`.
///
/// A failed rotation (e.g. a permissions race on the directory) degrades
/// to continuing in the oversized current file rather than erroring the
/// drainer: losing the cap beats losing the events.
pub struct RotatingFile {
    path: std::path::PathBuf,
    max_bytes: u64,
    keep: usize,
    file: std::fs::File,
    len: u64,
    at_line_boundary: bool,
}

impl RotatingFile {
    /// Opens (appending) or creates the journal file at `path`, rotating
    /// once it exceeds `max_bytes` and keeping at most `keep` rotated
    /// generations (`keep` is floored at 1; `max_bytes` at 1 KiB).
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/metadata failure.
    pub fn create(
        path: impl Into<std::path::PathBuf>,
        max_bytes: u64,
        keep: usize,
    ) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            path,
            max_bytes: max_bytes.max(1024),
            keep: keep.max(1),
            file,
            len,
            at_line_boundary: true,
        })
    }

    /// Numbered path of rotated generation `n` (`<path>.1` is newest).
    fn generation(&self, n: usize) -> std::path::PathBuf {
        let mut os = self.path.clone().into_os_string();
        os.push(format!(".{n}"));
        os.into()
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        let _ = self.file.flush();
        let _ = std::fs::remove_file(self.generation(self.keep));
        for n in (1..self.keep).rev() {
            let from = self.generation(n);
            if from.exists() {
                std::fs::rename(&from, self.generation(n + 1))?;
            }
        }
        std::fs::rename(&self.path, self.generation(1))?;
        self.file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.len = 0;
        crate::counter("telemetry.journal.rotated").inc();
        Ok(())
    }
}

impl Write for RotatingFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.at_line_boundary && self.len >= self.max_bytes {
            // Best-effort: a failed rotation keeps appending to the
            // current (oversized) file.
            let _ = self.rotate();
        }
        let n = self.file.write(buf)?;
        self.len += n as u64;
        if n > 0 {
            self.at_line_boundary = buf[n - 1] == b'\n';
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A writer handing lines back to the test through shared state.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_reach_the_writer_as_jsonl() {
        let buf = SharedBuf::default();
        let j = Journal::new(buf.clone(), 64);
        j.emit(Event::new("step").with("cell", 7u64).with("ok", true));
        j.emit(Event::new("note").with("msg", "a \"quoted\" name"));
        assert_eq!(j.finish(), 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"step\""));
        assert!(lines[0].contains("\"cell\":7"));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\\\"quoted\\\""));
        // Each line parses as a JSON object.
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.as_object().is_some());
        }
    }

    #[test]
    fn overflow_drops_with_counter_instead_of_blocking() {
        /// A writer that blocks until allowed, forcing channel overflow.
        struct Gate(Arc<Mutex<()>>);
        impl Write for Gate {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let _hold = self.0.lock().unwrap();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let j = Journal::new(Gate(gate.clone()), 2);
        // The drainer is stuck on the first event; the channel holds two
        // more; everything beyond that must shed.
        for i in 0..20u64 {
            j.emit(Event::new("e").with("i", i));
        }
        assert!(j.dropped() > 0, "overflow must shed events");
        drop(held);
        let dropped = j.finish();
        // 20 emitted; at most one in the drainer plus two in the channel
        // got through.
        assert!((17..=18).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn rotating_file_caps_and_shifts_generations() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        let dir = std::env::temp_dir().join(format!("rlleg-journal-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        let rotated_before = crate::counter("telemetry.journal.rotated").value();
        {
            let sink = RotatingFile::create(&path, 1024, 2).expect("create rotating file");
            let j = Journal::new(sink, 4096);
            // ~90 bytes per line; a few hundred lines forces several
            // rotations past the 1 KiB floor.
            for i in 0..200u64 {
                j.emit(
                    Event::new("rotation-probe")
                        .with("i", i)
                        .with("pad", "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
                );
            }
            assert_eq!(j.finish(), 0, "capacity 4096 must not shed");
        }
        let rotations = crate::counter("telemetry.journal.rotated").value() - rotated_before;
        assert!(rotations >= 2, "expected >= 2 rotations, got {rotations}");
        // The live file plus both kept generations exist; nothing beyond
        // `keep` survives.
        for p in [
            path.clone(),
            dir.join("events.jsonl.1"),
            dir.join("events.jsonl.2"),
        ] {
            assert!(p.exists(), "missing {}", p.display());
            let text = std::fs::read_to_string(&p).expect("read journal file");
            // Rotation happens only at line boundaries: every kept file is
            // whole lines, each parsing as JSON.
            assert!(
                text.ends_with('\n') || text.is_empty(),
                "torn line in {}",
                p.display()
            );
            for line in text.lines() {
                let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
                assert!(v.as_object().is_some());
            }
        }
        assert!(!dir.join("events.jsonl.3").exists(), "keep=2 must prune .3");
        crate::set_enabled(false);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
