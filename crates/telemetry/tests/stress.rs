//! Multi-thread stress tests for the sharded [`MetricsRegistry`].
//!
//! Each test hammers a local registry from more threads than there are
//! shards and asserts the merged snapshot equals the exact totals the
//! threads produced. The global enabled flag is process-wide, so every
//! test in this binary serializes through [`lock`] and leaves telemetry
//! enabled only while it holds the guard.

use std::sync::{Mutex, MutexGuard};

use telemetry::{buckets, MetricsRegistry, SHARDS};

/// Serializes tests in this binary around the process-global enabled flag.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const THREADS: usize = 24;
const OPS: u64 = 20_000;

#[test]
fn counters_merge_exactly_under_contention() {
    let _g = lock();
    telemetry::enable();
    let reg = MetricsRegistry::new();
    const { assert!(THREADS > SHARDS, "stress must oversubscribe the shards") };
    // Two counters: one shared handle cloned into every thread, one looked
    // up by name per thread (the get-or-create path under contention).
    let shared = reg.counter("stress.shared");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = shared.clone();
            let reg = &reg;
            s.spawn(move || {
                let named = reg.counter("stress.named");
                for i in 0..OPS {
                    shared.add(1);
                    if i % 2 == 0 {
                        named.inc();
                    }
                    if t == 0 && i == 0 {
                        reg.gauge("stress.gauge").set(7);
                    }
                }
            });
        }
    });
    let snap = reg.snapshot();
    telemetry::disable();
    assert_eq!(snap.counters["stress.shared"], THREADS as u64 * OPS);
    assert_eq!(snap.counters["stress.named"], THREADS as u64 * OPS / 2);
    assert_eq!(snap.gauges["stress.gauge"], 7);
}

#[test]
fn histograms_merge_exactly_under_contention() {
    let _g = lock();
    telemetry::enable();
    let reg = MetricsRegistry::new();
    let h = reg.histogram("stress.h", buckets::MAGNITUDE);
    // Thread t records the values t*OPS..(t+1)*OPS, so the exact count,
    // sum, min, and max of the union are all closed-form.
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in t * OPS..(t + 1) * OPS {
                    h.record(i as f64);
                }
            });
        }
    });
    let s = h.snapshot();
    telemetry::disable();
    let n = THREADS as u64 * OPS;
    assert_eq!(s.count, n);
    assert_eq!(s.bucket_counts.iter().sum::<u64>(), n);
    assert_eq!(s.min, 0.0);
    assert_eq!(s.max, (n - 1) as f64);
    // Sum of 0..n as f64: every term is an integer well under 2^53, but the
    // running sums exceed it, so allow relative rounding error.
    let want_sum = (n as f64 - 1.0) * n as f64 / 2.0;
    assert!(
        (s.sum - want_sum).abs() <= want_sum * 1e-9,
        "sum {} != {want_sum}",
        s.sum
    );
    // Recount each bucket from the known value set.
    for (i, &count) in s.bucket_counts.iter().enumerate() {
        let lo = if i == 0 {
            f64::NEG_INFINITY
        } else {
            s.bounds[i - 1]
        };
        let hi = s.bounds.get(i).copied().unwrap_or(f64::INFINITY);
        let want = (0..n)
            .filter(|&v| (v as f64) > lo && (v as f64) <= hi)
            .count() as u64;
        assert_eq!(count, want, "bucket {i} ({lo}, {hi}]");
    }
}

#[test]
fn mixed_metrics_survive_thread_churn() {
    let _g = lock();
    telemetry::enable();
    let reg = MetricsRegistry::new();
    // Short-lived threads (beyond the shard count) exercise round-robin
    // shard reassignment; every update must still land in the merge.
    for batch in 0..3 {
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let reg = &reg;
                s.spawn(move || {
                    reg.counter("churn.count").add(batch + 1);
                    reg.histogram("churn.h", buckets::SECONDS).record(1e-4);
                });
            }
        });
    }
    let snap = reg.snapshot();
    telemetry::disable();
    assert_eq!(snap.counters["churn.count"], (1 + 2 + 3) * THREADS as u64);
    assert_eq!(snap.histograms["churn.h"].count, 3 * THREADS as u64);
}
