//! Property-based tests for histogram bucket boundaries.
//!
//! The bucketing rule is: bucket `i` covers `(bounds[i-1], bounds[i]]`,
//! with an implicit overflow bucket above the last bound. These properties
//! check that rule (and the derived stats) against brute-force recounts for
//! arbitrary strictly-increasing bounds and arbitrary observations, via
//! both the live [`Histogram`](telemetry::Histogram) and the offline
//! [`HistogramSnapshot::from_values`] constructor.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use telemetry::{HistogramSnapshot, MetricsRegistry};

/// Serializes tests in this binary around the process-global enabled flag.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Strictly increasing bucket bounds, 1 to 12 of them.
fn arb_bounds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..50.0, 1..12).prop_map(|steps| {
        let mut acc = 0.0;
        steps
            .iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    })
}

fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..700.0, 0..200)
}

/// The bucket a value belongs to under the documented rule.
fn expected_bucket(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

fn check_against_recount(s: &HistogramSnapshot, bounds: &[f64], values: &[f64]) {
    assert_eq!(s.bounds, bounds);
    assert_eq!(s.bucket_counts.len(), bounds.len() + 1);
    assert_eq!(s.count, values.len() as u64);
    assert_eq!(
        s.bucket_counts.iter().sum::<u64>(),
        values.len() as u64,
        "every observation lands in exactly one bucket"
    );
    let mut want = vec![0u64; bounds.len() + 1];
    for &v in values {
        want[expected_bucket(bounds, v)] += 1;
    }
    assert_eq!(s.bucket_counts, want);
    if values.is_empty() {
        assert_eq!((s.min, s.max, s.sum), (0.0, 0.0, 0.0));
    } else {
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min, min);
        assert_eq!(s.max, max);
        let sum: f64 = values.iter().sum();
        assert!((s.sum - sum).abs() <= sum.abs() * 1e-9 + 1e-9);
    }
}

proptest! {
    #[test]
    fn live_histogram_buckets_match_recount(
        bounds in arb_bounds(),
        values in arb_values(),
    ) {
        let _g = lock();
        telemetry::enable();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("prop.h", &bounds);
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        telemetry::disable();
        check_against_recount(&s, &bounds, &values);
    }

    #[test]
    fn from_values_matches_live_histogram(
        bounds in arb_bounds(),
        values in arb_values(),
    ) {
        let _g = lock();
        telemetry::enable();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("prop.same", &bounds);
        for &v in &values {
            h.record(v);
        }
        let live = h.snapshot();
        telemetry::disable();
        let offline = HistogramSnapshot::from_values(&bounds, values.iter().copied());
        check_against_recount(&offline, &bounds, &values);
        prop_assert_eq!(live.bucket_counts, offline.bucket_counts);
        prop_assert_eq!(live.count, offline.count);
        prop_assert_eq!(live.min, offline.min);
        prop_assert_eq!(live.max, offline.max);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        bounds in arb_bounds(),
        values in arb_values(),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let s = HistogramSnapshot::from_values(&bounds, values.iter().copied());
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let lo = s.quantile(lo_q);
        let hi = s.quantile(hi_q);
        prop_assert!(lo <= hi, "quantile must be monotone: q({lo_q})={lo} > q({hi_q})={hi}");
        if !values.is_empty() {
            prop_assert!(lo >= s.min && hi <= s.max, "quantiles clamp to [min, max]");
            prop_assert_eq!(s.quantile(1.0), s.max);
        }
    }
}
