//! Slow scale regression (opt-in: `cargo test -p rlleg-bench --release
//! -- --ignored`): a 300k-cell contest design must fully legalize under
//! its max-displacement constraint. Guards the macro-footprint cap in
//! benchgen — die-proportional macros made displacement-constrained
//! escape infeasible from ~300k cells up.

use rlleg_legalize::{Legalizer, Ordering};

#[test]
#[ignore = "generates and legalizes 300k cells (~1 min in release)"]
fn max_displacement_stays_feasible_at_300k_cells() {
    let spec = rlleg_benchgen::find_spec("des_perf_b_md1")
        .expect("table row")
        .scaled_to(300_000);
    let d = rlleg_benchgen::generate(&spec);
    let mut local = d.clone();
    let stats = Legalizer::new(&local).run(&mut local, &Ordering::SizeDescending);
    assert!(
        stats.failed.is_empty(),
        "{} of {} cells failed under max_disp",
        stats.failed.len(),
        spec.num_cells
    );
}
