//! Fig. 1 — effect of cell priority: cell-size distribution and the QoR
//! distribution of random-ordered legalization vs the size-ordered result.
//!
//! The paper runs the academic legalizer 1 000 times with random orders on
//! `usb_phy` (Nangate45, 75 % util) and `pci_bridge32_b_md3` (contest) and
//! shows (a) >30 % of cells share the dominant size and (b) the QoR spread
//! is wide, with the size-ordered result beatable (blue "improvement
//! potential" regions).
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin fig1 -- --runs 1000 --scale 1.0
//! ```

use std::collections::BTreeMap;

use rlleg_bench::{run_random_ordered, run_size_ordered, write_report, Args, RunResult};
use rlleg_benchgen::{find_spec, generate};
use serde::Serialize;

#[derive(Serialize)]
struct DesignReport {
    design: String,
    cells: usize,
    size_histogram: Vec<(String, f64)>,
    size_ordered: RunResult,
    random: Vec<RunResult>,
}

fn stats(xs: &[f64]) -> (f64, f64, f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, var.sqrt(), min, max)
}

fn main() {
    let args = Args::from_env();
    let runs: u64 = args.get("runs", 200);
    let scale: f64 = args.get("scale", 0.25);
    let mut reports = Vec::new();

    for name in ["usb_phy", "pci_bridge32_b_md3"] {
        // usb_phy is tiny (321 cells) and runs at full scale; the contest
        // design is scaled.
        let spec = match name {
            "usb_phy" => find_spec(name).expect("spec"),
            _ => find_spec(name).expect("spec").scaled(scale.min(0.05)),
        };
        let design = generate(&spec);
        println!(
            "\n=== {} ({} cells, density {:.2}) ===",
            name,
            design.num_movable(),
            design.density()
        );

        // (1) Cell-size distribution.
        let mut hist: BTreeMap<(i64, u8), usize> = BTreeMap::new();
        for id in design.movable_ids() {
            let c = design.cell(id);
            *hist
                .entry((c.width / design.tech.site_width, c.height_rows))
                .or_default() += 1;
        }
        let total = design.num_movable() as f64;
        let mut sizes: Vec<((i64, u8), usize)> = hist.into_iter().collect();
        sizes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        println!("cell-size distribution (w_sites x h_rows : share):");
        let mut size_histogram = Vec::new();
        for ((w, h), n) in &sizes {
            let share = *n as f64 / total;
            let bar = "#".repeat((share * 60.0).round() as usize);
            println!("  {w}x{h}: {:5.1}%  {bar}", share * 100.0);
            size_histogram.push((format!("{w}x{h}"), share));
        }
        let dominant = sizes[0].1 as f64 / total;
        println!(
            "dominant size share = {:.1}% (paper: >30% in most designs)",
            dominant * 100.0
        );

        // (2) Size-ordered reference (the red dashed line).
        let (_, size_res) = run_size_ordered(&design, true);
        println!(
            "size-ordered [26]: avg_disp={:.0} max_disp={} hpwl={:.3e} ({} failed)",
            size_res.avg_disp, size_res.max_disp, size_res.hpwl as f64, size_res.failed
        );

        // (3) Random-order distribution.
        let random: Vec<RunResult> = (0..runs)
            .map(|seed| run_random_ordered(&design, seed))
            .collect();
        let ok: Vec<&RunResult> = random.iter().filter(|r| r.failed == 0).collect();
        println!("random orders: {} runs, {} complete", runs, ok.len());
        for (label, metric, size_val) in [
            (
                "avg disp. (nm) ",
                Box::new(|r: &RunResult| r.avg_disp) as Box<dyn Fn(&RunResult) -> f64>,
                size_res.avg_disp,
            ),
            (
                "max disp. (nm) ",
                Box::new(|r: &RunResult| r.max_disp as f64),
                size_res.max_disp as f64,
            ),
            (
                "HPWL (nm)      ",
                Box::new(|r: &RunResult| r.hpwl as f64),
                size_res.hpwl as f64,
            ),
        ] {
            let xs: Vec<f64> = ok.iter().map(|r| metric(r)).collect();
            let (mu, sigma, min, max) = stats(&xs);
            let better =
                xs.iter().filter(|&&x| x < size_val).count() as f64 / xs.len().max(1) as f64;
            println!(
                "  {label} mu={mu:10.1} sigma={sigma:9.1} min={min:10.1} max={max:10.1} | size-ordered={size_val:10.1} | {:.0}% of random orders beat it",
                better * 100.0
            );
        }

        reports.push(DesignReport {
            design: name.to_owned(),
            cells: design.num_movable(),
            size_histogram,
            size_ordered: size_res,
            random,
        });
    }

    let path = write_report("fig1", &reports);
    println!("\nreport: {}", path.display());
}
