//! Ablation — return estimation and failure-credit variants.
//!
//! DESIGN.md calls out the reproduction's central algorithmic finding: the
//! paper's Eq. 6 (batch-truncated returns, failure blamed on the failing
//! pick) is too myopic at laptop training budgets, and the policy
//! degenerates toward easy-cells-first, *increasing* legalization failures
//! on dense designs. This bench quantifies that by training the same
//! design under each combination and reporting the failure-rate trend and
//! final policy quality.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin ablation_returns -- --episodes 150
//! ```

use rl_legalizer::{train, ReturnMode, RlConfig, RlLegalizer};
use rlleg_bench::{write_report, Args};
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::metrics::{legalization_cost, total_hpwl};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    label: String,
    early_failure_rate: f64,
    late_failure_rate: f64,
    best_episode_cost: f64,
    greedy_cost: f64,
    greedy_complete: bool,
}

fn main() {
    let args = Args::from_env();
    let episodes: usize = args.get("episodes", 120);
    let agents: usize = args.get("agents", 4);
    // fft_2_md2 at this scale fails under ~30 % of random orders: hazardous
    // enough that failure credit matters, mild enough that policies can
    // escape the failure regime within a laptop budget.
    let design_name: String = args.get("design", "fft_2_md2".to_owned());
    let scale: f64 = args.get("scale", 0.01);

    let spec = find_spec(&design_name).expect("spec").scaled(scale);
    let design = generate(&spec);
    let hpwl_gp = total_hpwl(&design);
    println!(
        "design {} ({} cells, density {:.2}) — the failure-prone benchmark\n",
        design.name,
        design.num_movable(),
        design.density()
    );

    let variants: Vec<(&str, RlConfig)> = vec![
        (
            "Eq.6 as written (truncated, blame pick)",
            RlConfig {
                return_mode: ReturnMode::BatchTruncated,
                blame_failed_pick: true,
                terminate_on_failure: true,
                pretrain_episodes: 0,
                ..RlConfig::tuned()
            },
        ),
        (
            "n-step bootstrap",
            RlConfig {
                return_mode: ReturnMode::BatchBootstrap,
                blame_failed_pick: true,
                terminate_on_failure: true,
                pretrain_episodes: 0,
                ..RlConfig::tuned()
            },
        ),
        (
            "Monte-Carlo returns",
            RlConfig {
                return_mode: ReturnMode::MonteCarlo,
                blame_failed_pick: true,
                terminate_on_failure: false,
                pretrain_episodes: 0,
                ..RlConfig::tuned()
            },
        ),
        (
            "MC + no blame on failing pick",
            RlConfig {
                return_mode: ReturnMode::MonteCarlo,
                blame_failed_pick: false,
                terminate_on_failure: false,
                pretrain_episodes: 0,
                ..RlConfig::tuned()
            },
        ),
        ("tuned (MC + no blame + warm start)", RlConfig::tuned()),
    ];

    let mut rows = Vec::new();
    for (label, base) in variants {
        let cfg = RlConfig {
            episodes,
            agents,
            ..base
        };
        let result = train(std::slice::from_ref(&design), &cfg);
        let n = result.history.len();
        let fail_rate = |slice: &[rl_legalizer::TrainSample]| {
            slice.iter().filter(|s| s.failures > 0).count() as f64 / slice.len().max(1) as f64
        };
        let early = fail_rate(&result.history[..n / 4]);
        let late = fail_rate(&result.history[3 * n / 4..]);
        let best = result
            .best_for_design(&design.name)
            .map(|s| s.cost)
            .unwrap_or(f64::NAN);
        let mut d = design.clone();
        let report = RlLegalizer::new(result.best_model).legalize(&mut d);
        let greedy = legalization_cost(&d, hpwl_gp);
        println!(
            "{label:<42} fail-rate {:.0}%→{:.0}%  best-episode {best:6.1}  greedy {greedy:7.1} {}",
            early * 100.0,
            late * 100.0,
            if report.is_complete() {
                "(complete)"
            } else {
                "(FAILED)"
            }
        );
        rows.push(AblationRow {
            label: label.to_owned(),
            early_failure_rate: early,
            late_failure_rate: late,
            best_episode_cost: best,
            greedy_cost: greedy,
            greedy_complete: report.is_complete(),
        });
    }

    println!("\nexpected shape: the paper-literal variant's failure rate grows during training;\nMC + no-blame keeps it bounded, and the warm start both lowers it and yields a\ncomplete, better-than-baseline greedy policy.");
    let path = write_report("ablation_returns", &rows);
    println!("report: {}", path.display());
}
