//! Fig. 2 — the pixel-wise search algorithm: an ASCII rendering of the
//! search space, the available pixels, and the elected minimum-displacement
//! pixel for one target cell, plus search-effort statistics over a density
//! sweep.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin fig2_search_demo
//! ```

use rlleg_bench::Args;
use rlleg_design::{CellId, DesignBuilder, Technology};
use rlleg_geom::Point;
use rlleg_legalize::{
    search::find_position, GridPos, Legalizer, Ordering, PixelGrid, SearchConfig,
};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 7);

    // A 24x10 core with a macro and a crowd of placed cells around the
    // target's global position.
    let mut b = DesignBuilder::new("fig2", Technology::contest(), 24, 10);
    let target = b.add_cell("target", 2, 2, Point::new(2_250, 9_100));
    let mut blockers = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..60 {
        let w = 1 + (next() % 3) as i64;
        let h = 1 + (next() % 2) as u8;
        let x = (next() % 4_000) as i64;
        let y = (next() % 16_000) as i64;
        blockers.push(b.add_cell(format!("b{i}"), w, h, Point::new(x, y)));
    }
    b.add_fixed_cell("macro", 5, 3, Point::new(2_600, 4_000));
    let mut design = b.build();

    // Legalize the crowd first so the target faces a realistic occupancy.
    let mut lg = Legalizer::new(&design);
    lg.run_cells(&mut design, &blockers);

    let grid = lg.grid();
    let from = design.cell(target).gp_pos;
    let best = find_position(grid, &design, target, from, SearchConfig::default());

    // Collect every pixel where the whole 2x2-footprint placement is legal.
    let legal = |site: i64, row: i64| {
        grid.check_place(&design, target, GridPos { site, row })
            .is_ok()
    };

    println!(
        "pixel map ({}x{} sites/rows)  target: 2 sites x 2 rows at gp {from}",
        grid.sites_x(),
        grid.rows()
    );
    println!("  '.' free   '#' occupied/macro   'o' legal placement pixel   '*' gp pixel   'E' elected best\n");
    let gp_pix = grid.to_grid(&design, from);
    for row in (0..grid.rows()).rev() {
        let mut line = format!("r{row:02} ");
        for site in 0..grid.sites_x() {
            let ch = if let Some((bp, _)) = best {
                if bp.site == site && bp.row == row {
                    'E'
                } else if gp_pix.site == site && gp_pix.row == row {
                    '*'
                } else if legal(site, row) {
                    'o'
                } else if grid.is_free(site, row) {
                    '.'
                } else {
                    '#'
                }
            } else {
                '?'
            };
            line.push(ch);
        }
        println!("{line}");
    }
    match best {
        Some((pos, disp)) => {
            let p = grid.to_dbu(&design, pos);
            println!(
                "\nelected pixel: site {}, row {} ({p}) — displacement {disp} nm",
                pos.site, pos.row
            );
        }
        None => println!("\nsearch failed"),
    }

    // Search-effort sweep: the number of legal pixels shrinks with density.
    println!("\nsearch-space sweep (same core, growing crowd):");
    println!("{:>8} {:>12} {:>16}", "cells", "free ratio", "legal pixels");
    for n in [20usize, 40, 60, 80, 100] {
        let mut b = DesignBuilder::new("sweep", Technology::contest(), 24, 10);
        let t = b.add_cell("t", 2, 2, Point::new(2_250, 9_100));
        let mut crowd = Vec::new();
        for i in 0..n {
            let x = (i as i64 * 613) % 4_400;
            let y = (i as i64 * 2_777) % 18_000;
            crowd.push(b.add_cell(format!("c{i}"), 1 + i as i64 % 3, 1, Point::new(x, y)));
        }
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        lg.run_cells(&mut d, &crowd);
        let grid: &PixelGrid = lg.grid();
        let mut legal_count = 0;
        for row in 0..grid.rows() {
            for site in 0..grid.sites_x() {
                if grid.check_place(&d, t, GridPos { site, row }).is_ok() {
                    legal_count += 1;
                }
            }
        }
        println!("{n:>8} {:>12.2} {legal_count:>16}", grid.free_ratio());
    }

    // And the size-ordered flow end-to-end for reference.
    let mut d2 = design.clone();
    d2.reset_to_global_placement();
    let mut lg2 = Legalizer::new(&d2);
    let stats = lg2.run(&mut d2, &Ordering::SizeDescending);
    println!(
        "\nfull size-ordered run on the demo design: {} legalized, {} failed",
        stats.legalized,
        stats.failed.len()
    );
    let _ = CellId(0);
}
