//! Table II — QoR comparison on the 23 training benchmarks: the
//! size-ordered legalizer \[26\], its Gcell-partitioned variant \[26\]+G, and
//! RL-Legalizer ("Ours").
//!
//! One shared model is trained over every training design (the paper's
//! scheme); following the paper, "Ours" for training benchmarks is the best
//! episode after convergence. Designs are scaled with `--scale` so the full
//! table regenerates on a laptop; raise `--scale`/`--per-design` for closer
//! fidelity.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin table2 -- --scale 0.002 --per-design 8
//! ```

use rl_legalizer::{train, RlConfig};
use rlleg_bench::{
    normalized_average, run_size_ordered, run_size_ordered_gcells, write_report, Args, RunResult,
};
use rlleg_benchgen::{generate, training_suite};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    cells: usize,
    area_e11: f64,
    density: f64,
    gcells: String,
    size: RunResult,
    size_g: RunResult,
    ours: RunResult,
}

fn main() {
    // Collect metrics, spans, and the displacement histogram for the whole
    // run; the merged snapshot is written next to the table report.
    telemetry::enable();
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.002);
    let per_design: usize = args.get("per_design", 8);
    let agents: usize = args.get("agents", 4);
    let heuristics = !args.flag("no-heuristics");

    let specs: Vec<_> = training_suite().iter().map(|s| s.scaled(scale)).collect();
    let designs: Vec<_> = specs.iter().map(generate).collect();
    println!(
        "generated {} training designs at scale {scale} ({} total cells)",
        designs.len(),
        designs.iter().map(|d| d.num_movable()).sum::<usize>()
    );

    // Train the shared model (round-robin over all training designs).
    let episodes = per_design * designs.len();
    let cfg = RlConfig {
        episodes,
        agents,
        ..RlConfig::tuned()
    };
    let t = std::time::Instant::now();
    println!(
        "training shared model: {} agents x {} episodes ({} visits per design) ...",
        agents,
        episodes,
        per_design * agents
    );
    let result = train(&designs, &cfg);
    println!("trained in {:.0}s", t.elapsed().as_secs_f64());

    let mut rows = Vec::new();
    for (spec, design) in specs.iter().zip(&designs) {
        let (_, size) = run_size_ordered(design, heuristics);
        let (_, size_g) =
            run_size_ordered_gcells(design, heuristics, Some(spec.paper_gcell_grid()));
        let best = result
            .best_for_design(&design.name)
            .expect("every design trained at least once");
        let ours = RunResult::from_qor(&best.qor, best.cost, 0.0);
        let (nx, ny) = spec.paper_gcell_grid();
        rows.push(Row {
            design: design.name.clone(),
            cells: design.num_movable(),
            area_e11: (design.core.area() as f64) / 1e11,
            density: design.density(),
            gcells: format!("{nx}x{ny}"),
            size,
            size_g,
            ours,
        });
    }

    // Print the table in the paper's layout.
    println!(
        "\n{:<20} {:>7} {:>6} {:>5} {:>6} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "Benchmark", "#cells", "area", "dens", "Gcell",
        "avg[26]", "avg[26]+G", "avgOurs",
        "max[26]", "max[26]+G", "maxOurs",
        "hp[26]", "hp[26]+G", "hpOurs"
    );
    for r in &rows {
        let f = |x: &RunResult| {
            if x.failed > 0 {
                ("-".to_owned(), "-".to_owned(), "-".to_owned())
            } else {
                (
                    format!("{:.0}", x.avg_disp),
                    format!("{}", x.max_disp),
                    format!("{:.3}", x.hpwl as f64 / 1e8),
                )
            }
        };
        let (a1, m1, h1) = f(&r.size);
        let (a2, m2, h2) = f(&r.size_g);
        let (a3, m3, h3) = f(&r.ours);
        println!(
            "{:<20} {:>7} {:>6.2} {:>5.2} {:>6} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
            r.design, r.cells, r.area_e11, r.density, r.gcells,
            a1, a2, a3, m1, m2, m3, h1, h2, h3
        );
    }

    // Normalized averages (Ours = 1.00), excluding failed designs per the
    // paper's footnote.
    let ours: Vec<RunResult> = rows.iter().map(|r| r.ours.clone()).collect();
    let size: Vec<RunResult> = rows.iter().map(|r| r.size.clone()).collect();
    let size_g: Vec<RunResult> = rows.iter().map(|r| r.size_g.clone()).collect();
    println!("\nNorm avg. (Ours = 1.00):");
    for (label, metric) in [
        (
            "avg disp",
            Box::new(|r: &RunResult| r.avg_disp) as Box<dyn Fn(&RunResult) -> f64>,
        ),
        ("max disp", Box::new(|r: &RunResult| r.max_disp as f64)),
        ("HPWL    ", Box::new(|r: &RunResult| r.hpwl as f64)),
    ] {
        println!(
            "  {label}: [26]={:.2}  [26]+G={:.2}  Ours=1.00",
            normalized_average(&ours, &size, &metric),
            normalized_average(&ours, &size_g, &metric),
        );
    }
    let fails = |v: &[RunResult]| v.iter().filter(|r| r.failed > 0).count();
    println!(
        "failed designs: [26]={} [26]+G={} Ours={}   (paper: [26] fails on des_perf_1)",
        fails(&size),
        fails(&size_g),
        fails(&ours)
    );

    // Displacement distribution per design (telemetry histogram buckets).
    println!(
        "\n{:<20} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "Displacement (dbu)",
        "p50[26]",
        "p95[26]",
        "max[26]",
        "p50+G",
        "p95+G",
        "max+G",
        "p50Ours",
        "p95Ours",
        "maxOurs"
    );
    for r in &rows {
        println!(
            "{:<20} | {:>7.0} {:>7.0} {:>7} | {:>7.0} {:>7.0} {:>7} | {:>7.0} {:>7.0} {:>7}",
            r.design,
            r.size.disp_p50,
            r.size.disp_p95,
            r.size.max_disp,
            r.size_g.disp_p50,
            r.size_g.disp_p95,
            r.size_g.max_disp,
            r.ours.disp_p50,
            r.ours.disp_p95,
            r.ours.max_disp
        );
    }

    let path = write_report("table2", &rows);
    println!("report: {}", path.display());
    let snap = telemetry::snapshot();
    println!(
        "telemetry: {} pixels scanned, {} training steps, {} global updates",
        snap.counter("legalize.search.pixels_scanned"),
        snap.counter("train.steps"),
        snap.counter("train.global_updates"),
    );
    let tpath = write_report("table2_telemetry", &snap);
    println!("telemetry snapshot: {}", tpath.display());
}
