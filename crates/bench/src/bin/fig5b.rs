//! Fig. 5b — training convergence of the reduced-dimensional state vs the
//! masking technique.
//!
//! The paper removes legalized cells from the state at every step and shows
//! this converges faster and lower than masking them out of a fixed-size
//! state. Both variants train here with identical budgets; the bench prints
//! the smoothed learning curves and summary statistics.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin fig5b -- --episodes 150
//! ```

use rl_legalizer::{train, RlConfig, StateMode};
use rlleg_bench::{smooth, sparkline, write_report, Args};
use rlleg_benchgen::{find_spec, generate};
use serde::Serialize;

#[derive(Serialize)]
struct CurveReport {
    mode: String,
    episodes: usize,
    smoothed_cost: Vec<f64>,
    tail_cost: f64,
    best_cost: f64,
    seconds: f64,
}

fn main() {
    let args = Args::from_env();
    let episodes: usize = args.get("episodes", 120);
    let design_name: String = args.get("design", "usb_phy".to_owned());
    let scale: f64 = args.get("scale", 1.0);
    let agents: usize = args.get("agents", 4);

    // usb_phy at full scale legalizes under any order, so the comparison
    // of state-handling techniques is not confounded by failure penalties.
    let spec = find_spec(&design_name).expect("spec").scaled(scale);
    let design = generate(&spec);
    println!(
        "design {} ({} cells, density {:.2}), {} episodes x {} agents\n",
        design.name,
        design.num_movable(),
        design.density(),
        episodes,
        agents
    );

    let mut reports = Vec::new();
    for (label, mode) in [
        ("reduced", StateMode::Reduced),
        ("masked", StateMode::Masked),
    ] {
        let cfg = RlConfig {
            state_mode: mode,
            episodes,
            agents,
            ..RlConfig::tuned()
        };
        let t = std::time::Instant::now();
        let result = train(std::slice::from_ref(&design), &cfg);
        let seconds = t.elapsed().as_secs_f64();
        let costs: Vec<f64> = result.history.iter().map(|s| s.cost.min(1_000.0)).collect();
        let smoothed = smooth(&costs, 16);
        let best = result
            .best_for_design(&design.name)
            .map(|s| s.cost)
            .unwrap_or(f64::NAN);
        println!("{label:>8}: {}", sparkline(&smoothed));
        println!(
            "{:>8}  start={:.1} tail={:.1} best={:.1}  ({:.0}s)",
            "",
            smoothed.first().copied().unwrap_or(f64::NAN),
            result.tail_cost(agents * episodes / 5),
            best,
            seconds
        );
        reports.push(CurveReport {
            mode: label.to_owned(),
            episodes,
            smoothed_cost: smoothed,
            tail_cost: result.tail_cost(agents * episodes / 5),
            best_cost: best,
            seconds,
        });
    }

    let reduced = &reports[0];
    let masked = &reports[1];
    println!(
        "\nreduced-vs-masked: tail cost {:.1} vs {:.1}, best {:.1} vs {:.1}, wall {:.0}s vs {:.0}s",
        reduced.tail_cost,
        masked.tail_cost,
        reduced.best_cost,
        masked.best_cost,
        reduced.seconds,
        masked.seconds
    );
    println!("(paper: the reduced-dimensional state converges faster and lower)");

    let path = write_report("fig5b", &reports);
    println!("report: {}", path.display());
}
