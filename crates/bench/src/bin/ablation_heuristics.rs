//! Ablation — the size-ordered baseline's heuristics.
//!
//! The paper's baseline compensates for its fixed ordering with
//! rearrangement and cell-swap heuristics (Sec. II-B); RL-Legalizer uses
//! none. This bench measures how much each heuristic contributes so the
//! comparison in Tables II–III is transparent.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin ablation_heuristics -- --scale 0.01
//! ```

use rlleg_bench::{write_report, Args, RunResult};
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::metrics::total_hpwl;
use rlleg_legalize::{Legalizer, Ordering};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    variant: String,
    result: RunResult,
    improved_cells: usize,
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.01);
    let mut rows = Vec::new();

    for name in ["des_perf_b_md2", "eth_top", "point_scalar_mult"] {
        let spec = find_spec(name).expect("spec").scaled(scale);
        let design = generate(&spec);
        println!("\n=== {name} ({} cells) ===", design.num_movable());
        println!(
            "{:<22} {:>10} {:>10} {:>12} {:>9}",
            "variant", "avg disp", "max disp", "HPWL", "improved"
        );

        for variant in ["plain", "+swap", "+rearrange", "+both"] {
            let mut d = design.clone();
            let hpwl_gp = total_hpwl(&d);
            let t = std::time::Instant::now();
            let mut lg = Legalizer::new(&d);
            lg.run(&mut d, &Ordering::SizeDescending);
            let mut improved = 0;
            if variant == "+swap" || variant == "+both" {
                improved += lg.swap_pass(&mut d);
            }
            if variant == "+rearrange" || variant == "+both" {
                improved += lg.rearrange_pass(&mut d);
            }
            let r = RunResult::measure(&d, hpwl_gp, t.elapsed().as_secs_f64());
            println!(
                "{:<22} {:>10.0} {:>10} {:>12} {:>9}",
                variant, r.avg_disp, r.max_disp, r.hpwl, improved
            );
            rows.push(Row {
                design: name.to_owned(),
                variant: variant.to_owned(),
                result: r,
                improved_cells: improved,
            });
        }
    }

    println!("\nexpected shape: each heuristic trims average displacement a little;\nneither changes who wins against the RL ordering.");
    let path = write_report("ablation_heuristics", &rows);
    println!("report: {}", path.display());
}
