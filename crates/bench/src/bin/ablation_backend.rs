//! Ablation — legalizer backends under different orderings.
//!
//! The paper claims the RL framework "can be applied to any sequential
//! legalization algorithms". This bench compares the pixel-wise diamond
//! search against the Tetris-style row-packing backend under the classic
//! orderings and under a trained RL policy, on the same design.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin ablation_backend -- --scale 0.01
//! ```

use rl_legalizer::{train, Backend, RlConfig, RlLegalizer};
use rlleg_bench::{write_report, Args, RunResult};
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::metrics::total_hpwl;
use rlleg_legalize::{Legalizer, Ordering, TetrisLegalizer};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    backend: String,
    order: String,
    result: RunResult,
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.02);
    let episodes: usize = args.get("episodes", 60);

    // A low-density design: the greedy frontier discards free space to its
    // left, so Tetris needs headroom to stay comparable.
    let design_name: String = args.get("design", "pci_bridge32_b_md1".to_owned());
    let spec = find_spec(&design_name).expect("spec").scaled(scale);
    let design = generate(&spec);
    let hpwl_gp = total_hpwl(&design);
    println!(
        "design {} ({} cells, density {:.2})\n",
        design.name,
        design.num_movable(),
        design.density()
    );

    let mut rows = Vec::new();
    let mut run = |backend: &str, order: &str, d: rlleg_design::Design, secs: f64| {
        let r = RunResult::measure(&d, hpwl_gp, secs);
        println!(
            "{backend:<8} {order:<10} avg={:8.1} max={:7} hpwl={:9} failed={} ({:.2}s)",
            r.avg_disp, r.max_disp, r.hpwl, r.failed, r.seconds
        );
        rows.push(Row {
            backend: backend.into(),
            order: order.into(),
            result: r,
        });
    };

    for (oname, ordering) in [
        ("size", Ordering::SizeDescending),
        ("x-asc", Ordering::XAscending),
        ("random", Ordering::Random(1)),
    ] {
        let mut d = design.clone();
        let t = std::time::Instant::now();
        let mut lg = Legalizer::new(&d);
        lg.run(&mut d, &ordering);
        run("diamond", oname, d, t.elapsed().as_secs_f64());

        let mut d = design.clone();
        let t = std::time::Instant::now();
        let mut lg = TetrisLegalizer::new(&d);
        lg.run(&mut d, &ordering);
        run("tetris", oname, d, t.elapsed().as_secs_f64());
    }

    // RL policies trained against each backend.
    for backend in [Backend::Diamond, Backend::Tetris] {
        let cfg = RlConfig {
            episodes,
            agents: 4,
            backend,
            ..RlConfig::tuned()
        };
        let result = train(std::slice::from_ref(&design), &cfg);
        let mut d = design.clone();
        let t = std::time::Instant::now();
        RlLegalizer::new(result.best_model)
            .with_backend(backend)
            .legalize(&mut d);
        let label = match backend {
            Backend::Diamond => "diamond",
            Backend::Tetris => "tetris",
        };
        run(label, "RL", d, t.elapsed().as_secs_f64());
    }

    println!("\nexpected shape: tetris matches diamond under x-ascending order but is far\nmore order-sensitive under size/random orders; the RL policy recovers most\nof the gap on both backends.");
    let path = write_report("ablation_backend", &rows);
    println!("report: {}", path.display());
}
