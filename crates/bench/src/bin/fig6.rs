//! Fig. 6 — training convergence of legalization cost on four contest
//! training benchmarks.
//!
//! The paper plots smoothed legalization-cost learning curves for
//! `des_perf_1`, `des_perf_b_md1`, `des_perf_b_md2`, and `edit_dist_1_md1`;
//! all but `des_perf_1` converge before 200 episodes and the converged
//! solution averages 58 % below the randomly-initialized starting cost.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin fig6 -- --episodes 200 --scale 0.002
//! ```

use rl_legalizer::{train, RlConfig};
use rlleg_bench::{smooth, sparkline, write_report, Args};
use rlleg_benchgen::{find_spec, generate};
use serde::Serialize;

#[derive(Serialize)]
struct CurveReport {
    design: String,
    cells: usize,
    smoothed_cost: Vec<f64>,
    running_best: Vec<f64>,
    initial_cost: f64,
    converged_cost: f64,
    best_cost: f64,
    reduction_pct: f64,
    seconds: f64,
}

fn main() {
    let args = Args::from_env();
    let episodes: usize = args.get("episodes", 120);
    let scale: f64 = args.get("scale", 0.002);
    let agents: usize = args.get("agents", 4);

    let designs = [
        "des_perf_1",
        "des_perf_b_md1",
        "des_perf_b_md2",
        "edit_dist_1_md1",
    ];
    let mut reports = Vec::new();

    for name in designs {
        let spec = find_spec(name).expect("spec").scaled(scale);
        let design = generate(&spec);
        let cfg = RlConfig {
            episodes,
            agents,
            ..RlConfig::tuned()
        };
        let t = std::time::Instant::now();
        let result = train(std::slice::from_ref(&design), &cfg);
        let seconds = t.elapsed().as_secs_f64();

        let costs: Vec<f64> = result.history.iter().map(|s| s.cost.min(1_000.0)).collect();
        let smoothed = smooth(&costs, 16);
        let mut running_best = Vec::with_capacity(costs.len());
        let mut best = f64::INFINITY;
        for &c in &costs {
            best = best.min(c);
            running_best.push(best);
        }
        let initial = smoothed.first().copied().unwrap_or(f64::NAN);
        let converged = result.tail_cost((agents * episodes / 5).max(1));
        let reduction = (1.0 - best / initial) * 100.0;

        println!(
            "\n=== {name} ({} cells) — {:.0}s ===",
            design.num_movable(),
            seconds
        );
        println!("cost     {}", sparkline(&smoothed));
        println!("best     {}", sparkline(&running_best));
        println!(
            "initial={initial:.1}  converged={converged:.1}  best={best:.1}  reduction(best vs initial)={reduction:.0}%"
        );

        reports.push(CurveReport {
            design: name.to_owned(),
            cells: design.num_movable(),
            smoothed_cost: smoothed,
            running_best,
            initial_cost: initial,
            converged_cost: converged,
            best_cost: best,
            reduction_pct: reduction,
            seconds,
        });
    }

    let avg_reduction = reports.iter().map(|r| r.reduction_pct).sum::<f64>() / reports.len() as f64;
    println!(
        "\naverage best-vs-initial cost reduction: {avg_reduction:.0}% (paper reports 58% vs the random-initialization cost)"
    );
    let path = write_report("fig6", &reports);
    println!("report: {}", path.display());
}
