//! Ablation — Gcell grid size.
//!
//! The paper argues the impact of Gcell partitioning on the size-ordered
//! baseline is negligible (\[26\] vs \[26\]+G in Tables II–III) because the
//! Gcells are large (≈200 µm, capped at 5×5). This bench sweeps the grid
//! from 1×1 to 5×5 on several designs.
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin ablation_gcell -- --scale 0.01
//! ```

use rlleg_bench::{write_report, Args, RunResult};
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::metrics::total_hpwl;
use rlleg_legalize::{GcellGrid, Legalizer, Ordering};
use serde::Serialize;

#[derive(Serialize)]
struct SweepRow {
    design: String,
    grid: String,
    result: RunResult,
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.008);
    let mut rows = Vec::new();

    for name in ["des_perf_b_md1", "jpeg_encoder", "pci_bridge32_b_md2"] {
        let spec = find_spec(name).expect("spec").scaled(scale);
        let design = generate(&spec);
        println!("\n=== {name} ({} cells) ===", design.num_movable());
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>7}",
            "grid", "avg disp", "max disp", "HPWL", "failed"
        );
        for k in 1..=5usize {
            let mut d = design.clone();
            let hpwl_gp = total_hpwl(&d);
            let t = std::time::Instant::now();
            let gcells = GcellGrid::new(&d, k, k);
            let mut lg = Legalizer::new(&d);
            lg.run_gcells(&mut d, &Ordering::SizeDescending, &gcells);
            let r = RunResult::measure(&d, hpwl_gp, t.elapsed().as_secs_f64());
            println!(
                "{:>6} {:>10.0} {:>10} {:>12} {:>7}",
                format!("{k}x{k}"),
                r.avg_disp,
                r.max_disp,
                r.hpwl,
                r.failed
            );
            rows.push(SweepRow {
                design: name.to_owned(),
                grid: format!("{k}x{k}"),
                result: r,
            });
        }
    }

    println!("\nexpected shape: QoR varies only mildly with the grid (the paper's\n[26] vs [26]+G comparison), with coarse grids slightly better on avg disp.");
    let path = write_report("ablation_gcell", &rows);
    println!("report: {}", path.display());
}
