//! Table III — QoR and runtime on the five held-out test benchmarks with
//! the *frozen* trained model.
//!
//! The paper trains on 80 % of the benchmarks and reports the first test
//! result per held-out design, plus runtimes (\[26\] and \[26\]+G are fast;
//! RL inference adds a few seconds, ~80 % of it feature extraction).
//!
//! ```text
//! cargo run --release -p rlleg-bench --bin table3 -- --scale 0.002 --per-design 8
//! ```

use rl_legalizer::{train, RlConfig, RlLegalizer};
use rlleg_bench::{
    normalized_average, run_size_ordered, run_size_ordered_gcells, write_report, Args, RunResult,
};
use rlleg_benchgen::{generate, test_suite, training_suite};
use rlleg_design::metrics::total_hpwl;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    design: String,
    cells: usize,
    density: f64,
    size: RunResult,
    size_g: RunResult,
    ours: RunResult,
    ours_feature_seconds: f64,
    ours_network_seconds: f64,
}

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.002);
    let per_design: usize = args.get("per_design", 8);
    let agents: usize = args.get("agents", 4);
    let heuristics = !args.flag("no-heuristics");

    // Train on the training suite.
    let train_specs: Vec<_> = training_suite().iter().map(|s| s.scaled(scale)).collect();
    let train_designs: Vec<_> = train_specs.iter().map(generate).collect();
    let episodes = per_design * train_designs.len();
    let cfg = RlConfig {
        episodes,
        agents,
        ..RlConfig::tuned()
    };
    println!(
        "training shared model on {} designs: {} agents x {} episodes ...",
        train_designs.len(),
        agents,
        episodes
    );
    let t = std::time::Instant::now();
    let result = train(&train_designs, &cfg);
    println!(
        "trained in {:.0}s; applying the frozen best checkpoint to the test suite\n",
        t.elapsed().as_secs_f64()
    );
    let rl = RlLegalizer::new(result.best_model);

    let mut rows = Vec::new();
    for spec in test_suite().iter().map(|s| s.scaled(scale)) {
        let design = generate(&spec);
        let hpwl_gp = total_hpwl(&design);
        let (_, size) = run_size_ordered(&design, heuristics);
        let (_, size_g) =
            run_size_ordered_gcells(&design, heuristics, Some(spec.paper_gcell_grid()));
        let mut d = design.clone();
        let report = rl.legalize(&mut d);
        let ours = RunResult::measure(&d, hpwl_gp, report.total_time.as_secs_f64());
        rows.push(Row {
            design: design.name.clone(),
            cells: design.num_movable(),
            density: design.density(),
            size,
            size_g,
            ours,
            ours_feature_seconds: report.feature_time.as_secs_f64(),
            ours_network_seconds: report.network_time.as_secs_f64(),
        });
    }

    println!(
        "{:<20} {:>7} | {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7}",
        "Benchmark", "#cells",
        "avg[26]", "avg+G", "avgOurs",
        "max[26]", "max+G", "maxOurs",
        "hp[26]", "hp+G", "hpOurs",
        "t[26]", "t+G", "tOurs"
    );
    for r in &rows {
        println!(
            "{:<20} {:>7} | {:>8.0} {:>8.0} {:>8.0} | {:>9} {:>9} {:>9} | {:>8.3} {:>8.3} {:>8.3} | {:>7.2} {:>7.2} {:>7.2}",
            r.design, r.cells,
            r.size.avg_disp, r.size_g.avg_disp, r.ours.avg_disp,
            r.size.max_disp, r.size_g.max_disp, r.ours.max_disp,
            r.size.hpwl as f64 / 1e8, r.size_g.hpwl as f64 / 1e8, r.ours.hpwl as f64 / 1e8,
            r.size.seconds, r.size_g.seconds, r.ours.seconds,
        );
    }

    let ours: Vec<RunResult> = rows.iter().map(|r| r.ours.clone()).collect();
    let size: Vec<RunResult> = rows.iter().map(|r| r.size.clone()).collect();
    let size_g: Vec<RunResult> = rows.iter().map(|r| r.size_g.clone()).collect();
    println!("\nNorm avg. (Ours = 1.00):");
    for (label, metric) in [
        (
            "avg disp",
            Box::new(|r: &RunResult| r.avg_disp) as Box<dyn Fn(&RunResult) -> f64>,
        ),
        ("max disp", Box::new(|r: &RunResult| r.max_disp as f64)),
        ("HPWL    ", Box::new(|r: &RunResult| r.hpwl as f64)),
        ("runtime ", Box::new(|r: &RunResult| r.seconds)),
    ] {
        println!(
            "  {label}: [26]={:.2}  [26]+G={:.2}  Ours=1.00",
            normalized_average(&ours, &size, &metric),
            normalized_average(&ours, &size_g, &metric),
        );
    }
    let feat: f64 = rows.iter().map(|r| r.ours_feature_seconds).sum();
    let net: f64 = rows.iter().map(|r| r.ours_network_seconds).sum();
    let tot: f64 = rows.iter().map(|r| r.ours.seconds).sum();
    println!(
        "\nOurs time split: features {:.0}% / network {:.0}% of {:.2}s total (paper: ~80% feature extraction)",
        100.0 * feat / tot.max(1e-9),
        100.0 * net / tot.max(1e-9),
        tot
    );

    let path = write_report("table3", &rows);
    println!("report: {}", path.display());
}
