//! Shared harness code for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library holds what they
//! share: baseline runners, result rows, normalized averages, the tiny
//! CLI-flag parser, and JSON report output.

#![warn(missing_docs)]

use std::time::Instant;

use serde::{Deserialize, Serialize};

use rlleg_design::metrics::{legalization_cost, total_hpwl, Qor};
use rlleg_design::Design;
use rlleg_legalize::{GcellGrid, Legalizer, Ordering};

/// Result of one legalizer run on one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Average displacement (dbu).
    pub avg_disp: f64,
    /// Maximum displacement (dbu).
    pub max_disp: i64,
    /// Median displacement (dbu), estimated from the telemetry displacement
    /// histogram buckets.
    pub disp_p50: f64,
    /// 95th-percentile displacement (dbu), same estimate.
    pub disp_p95: f64,
    /// Total HPWL (dbu).
    pub hpwl: i64,
    /// Cells that could not be legalized.
    pub failed: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Combined legalization cost (lower is better; failures dominate).
    pub cost: f64,
}

impl RunResult {
    /// Builds a result from a design's current state.
    pub fn measure(design: &Design, hpwl_at_gp: i64, seconds: f64) -> Self {
        let q = Qor::measure(design);
        Self {
            avg_disp: q.avg_displacement,
            max_disp: q.max_displacement,
            disp_p50: q.disp_p50,
            disp_p95: q.disp_p95,
            hpwl: q.hpwl,
            failed: q.unplaced,
            seconds,
            cost: legalization_cost(design, hpwl_at_gp),
        }
    }

    /// Builds a result directly from a recorded QoR (e.g. a training
    /// episode's best sample).
    pub fn from_qor(q: &Qor, cost: f64, seconds: f64) -> Self {
        Self {
            avg_disp: q.avg_displacement,
            max_disp: q.max_displacement,
            disp_p50: q.disp_p50,
            disp_p95: q.disp_p95,
            hpwl: q.hpwl,
            failed: q.unplaced,
            seconds,
            cost,
        }
    }
}

/// Runs the size-ordered baseline (\[26\]): size-descending order plus the
/// cell-swap and rearrangement heuristics.
pub fn run_size_ordered(design: &Design, heuristics: bool) -> (Design, RunResult) {
    let hpwl_gp = total_hpwl(design);
    let mut d = design.clone();
    let t = Instant::now();
    let mut lg = Legalizer::new(&d);
    lg.run(&mut d, &Ordering::SizeDescending);
    if heuristics {
        lg.swap_pass(&mut d);
        lg.rearrange_pass(&mut d);
    }
    let r = RunResult::measure(&d, hpwl_gp, t.elapsed().as_secs_f64());
    (d, r)
}

/// Runs the Gcell-partitioned size-ordered baseline (\[26\]+G).
///
/// `grid` overrides the automatic partition (used by the table benches to
/// apply the paper's full-size grid to scaled designs).
pub fn run_size_ordered_gcells(
    design: &Design,
    heuristics: bool,
    grid: Option<(usize, usize)>,
) -> (Design, RunResult) {
    let hpwl_gp = total_hpwl(design);
    let mut d = design.clone();
    let t = Instant::now();
    let gcells = match grid {
        Some((nx, ny)) => GcellGrid::new(&d, nx, ny),
        None => GcellGrid::auto(&d),
    };
    let mut lg = Legalizer::new(&d);
    lg.run_gcells(&mut d, &Ordering::SizeDescending, &gcells);
    if heuristics {
        lg.swap_pass(&mut d);
        lg.rearrange_pass(&mut d);
    }
    let r = RunResult::measure(&d, hpwl_gp, t.elapsed().as_secs_f64());
    (d, r)
}

/// Runs the Gcell-partitioned baseline through the parallel per-Gcell
/// solver (`threads == 0` uses all available cores; the result is
/// bit-identical to the sequential fallback for any thread count).
pub fn run_size_ordered_gcells_parallel(
    design: &Design,
    heuristics: bool,
    grid: Option<(usize, usize)>,
    threads: usize,
) -> (Design, RunResult) {
    let hpwl_gp = total_hpwl(design);
    let mut d = design.clone();
    let t = Instant::now();
    let gcells = match grid {
        Some((nx, ny)) => GcellGrid::new(&d, nx, ny),
        None => GcellGrid::auto(&d),
    };
    let mut lg = Legalizer::new(&d);
    lg.run_gcells_parallel(&mut d, &Ordering::SizeDescending, &gcells, threads);
    if heuristics {
        lg.swap_pass(&mut d);
        lg.rearrange_pass(&mut d);
    }
    let r = RunResult::measure(&d, hpwl_gp, t.elapsed().as_secs_f64());
    (d, r)
}

/// Runs a random-ordered legalization (Fig. 1's experiment).
pub fn run_random_ordered(design: &Design, seed: u64) -> RunResult {
    let hpwl_gp = total_hpwl(design);
    let mut d = design.clone();
    let t = Instant::now();
    let mut lg = Legalizer::new(&d);
    lg.run(&mut d, &Ordering::Random(seed));
    RunResult::measure(&d, hpwl_gp, t.elapsed().as_secs_f64())
}

/// Geometric-mean-free normalized averages as the paper's "Norm avg." row:
/// each metric is normalized per design by the "Ours" value, then averaged
/// over designs (designs where the baseline failed are excluded, as the
/// paper's footnote prescribes).
pub fn normalized_average(
    ours: &[RunResult],
    other: &[RunResult],
    metric: impl Fn(&RunResult) -> f64,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (o, x) in ours.iter().zip(other) {
        if x.failed > 0 || o.failed > 0 {
            continue;
        }
        let denom = metric(o);
        if denom > 0.0 {
            sum += metric(x) / denom;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Simple moving-average smoothing for learning curves ("a data smoothing
/// method is used" — Fig. 5/6).
pub fn smooth(series: &[f64], window: usize) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let w = window.max(1);
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(w - 1);
            let s: f64 = series[lo..=i].iter().sum();
            s / (i - lo + 1) as f64
        })
        .collect()
}

/// An ASCII sparkline of a series (for terminal-rendered "figures").
pub fn sparkline(series: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in series {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    let span = (hi - lo).max(1e-12);
    series
        .iter()
        .map(|&v| TICKS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

/// Minimal `--flag value` parser for the bench binaries.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics when the value is present but unparseable.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|e| panic!("bad --{name} value `{v}`: {e:?}"))
            })
            .unwrap_or(default)
    }

    /// `true` when `--name` is present (no value).
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.raw.iter().any(|a| a == &key)
    }
}

/// Writes a JSON report next to the target directory and returns its path.
///
/// # Panics
///
/// Panics when the report directory cannot be created or written — a bench
/// binary has nothing useful to do past that point.
pub fn write_report<T: Serialize>(name: &str, value: &T) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("reports");
    std::fs::create_dir_all(&dir).expect("create report dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize report"),
    )
    .expect("write report");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_benchgen::{find_spec, generate};

    #[test]
    fn baselines_run_and_measure() {
        let spec = find_spec("usb_phy").expect("spec");
        let d = generate(&spec);
        let (_, size) = run_size_ordered(&d, false);
        assert_eq!(size.failed, 0);
        assert!(size.avg_disp > 0.0);
        let (_, with_h) = run_size_ordered(&d, true);
        assert!(
            with_h.avg_disp <= size.avg_disp + 1e-9,
            "heuristics never worsen"
        );
        let (_, gc) = run_size_ordered_gcells(&d, false, None);
        assert_eq!(gc.failed, 0);
        let (_, gc3) = run_size_ordered_gcells(&d, false, Some((3, 3)));
        assert_eq!(gc3.failed, 0);
        let (dp, gcp) = run_size_ordered_gcells_parallel(&d, false, Some((3, 3)), 2);
        assert_eq!(gcp.failed, 0);
        assert!(rlleg_design::legality::is_legal(&dp));
        let rnd = run_random_ordered(&d, 3);
        assert_eq!(rnd.failed, 0);
    }

    #[test]
    fn normalized_average_excludes_failures() {
        let ours = vec![
            RunResult {
                avg_disp: 100.0,
                max_disp: 1,
                disp_p50: 0.0,
                disp_p95: 0.0,
                hpwl: 1,
                failed: 0,
                seconds: 0.0,
                cost: 1.0,
            },
            RunResult {
                avg_disp: 100.0,
                max_disp: 1,
                disp_p50: 0.0,
                disp_p95: 0.0,
                hpwl: 1,
                failed: 0,
                seconds: 0.0,
                cost: 1.0,
            },
        ];
        let other = vec![
            RunResult {
                avg_disp: 150.0,
                max_disp: 1,
                disp_p50: 0.0,
                disp_p95: 0.0,
                hpwl: 1,
                failed: 0,
                seconds: 0.0,
                cost: 1.0,
            },
            RunResult {
                avg_disp: 999.0,
                max_disp: 1,
                disp_p50: 0.0,
                disp_p95: 0.0,
                hpwl: 1,
                failed: 3,
                seconds: 0.0,
                cost: 1.0,
            },
        ];
        let na = normalized_average(&ours, &other, |r| r.avg_disp);
        assert!((na - 1.5).abs() < 1e-9, "failed row excluded: {na}");
    }

    #[test]
    fn smoothing_and_sparkline() {
        let s = smooth(&[1.0, 3.0, 5.0, 7.0], 2);
        assert_eq!(s, vec![1.0, 2.0, 4.0, 6.0]);
        let line = sparkline(&[0.0, 1.0, 0.5]);
        assert_eq!(line.chars().count(), 3);
        assert!(sparkline(&[]).is_empty());
    }

    #[test]
    fn args_parse() {
        let a = Args {
            raw: vec!["--runs".into(), "7".into(), "--quick".into()],
        };
        assert_eq!(a.get("runs", 1usize), 7);
        assert_eq!(a.get("scale", 0.5f64), 0.5);
        assert!(a.flag("quick"));
        assert!(!a.flag("missing"));
    }
}
