//! Legalizer performance suite tracked in `BENCH_legalize.json`.
//!
//! Benches the word-level bitset `find_position` against the per-pixel
//! reference (`find_position_reference`) on dense / sparse / macro-heavy
//! occupancy grids, full-design legalization (sequential vs parallel
//! per-Gcell), the `legalize_scale` curve (flat vs parallel at 1k/10k/100k
//! cells, with an opt-in 1M smoke), the analytical global placer (wall
//! time, overflow-trajectory endpoints, and post-legalization HPWL from
//! gplace vs the synthetic benchgen perturbation), batched vs per-state
//! network evaluation, and async vs round-robin training throughput on a
//! 10k-cell design. The custom `main` exports every measurement (mean ns +
//! iters/sec) to `BENCH_legalize.json` at the repo root so the perf
//! trajectory is diffable across PRs.
//!
//! CLI (after `cargo bench -p rlleg-bench --`):
//!
//! - `--cells 1k|10k|100k|1m` — largest `legalize_scale` point (default
//!   100k; `1m` is the million-cell smoke),
//! - `--only-scale` — run only the `legalize_scale` curve,
//! - `--only-gplace` — run only the `gplace` and `legalize_from_gp`
//!   groups (the ci.sh global-placement smoke),
//! - `--out <path>` — where to write the JSON snapshot.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rl_legalizer::{train, CellWiseNet, RlConfig, Trainer};
use rlleg_benchgen::{find_spec, generate, parse_cells};
use rlleg_design::{metrics, CellId, Design};
use rlleg_gplace::{place, GpConfig};
use rlleg_legalize::{
    find_position, find_position_reference, GcellGrid, Legalizer, Ordering, SearchConfig,
    NUM_FEATURES,
};
use rlleg_nn::Matrix;

fn design(name: &str, scale: f64) -> Design {
    generate(&find_spec(name).expect("spec").scaled(scale))
}

/// Fully legalizes a design and returns it with the grid that produced it.
fn legalized(name: &str, scale: f64) -> (Design, Legalizer) {
    let d = design(name, scale);
    let mut lg = Legalizer::new(&d);
    let mut placed = d.clone();
    lg.run(&mut placed, &Ordering::SizeDescending);
    (placed, lg)
}

/// `find_position` micro-benchmark: re-search every sampled cell from its
/// global-placement position against the final (dense) occupancy, once with
/// the span-walking bitset search and once with the per-pixel reference.
fn bench_find_position(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_position");
    group.sample_size(30);
    // des_perf_1 is the 0.91-utilization design the baseline chokes on;
    // pci_bridge32 is low-density; des_perf_a_md1 adds fences + macros.
    let cases = [
        ("dense", "des_perf_1", 0.008),
        ("sparse", "pci_bridge32_b_md1", 0.012),
        ("macro_heavy", "des_perf_a_md1", 0.008),
    ];
    for (label, name, scale) in cases {
        let (placed, lg) = legalized(name, scale);
        let cells: Vec<CellId> = placed.movable_ids().step_by(7).take(48).collect();
        let cfg = SearchConfig::default();
        group.bench_with_input(BenchmarkId::new("bitset", label), &cells, |b, cells| {
            b.iter(|| {
                cells
                    .iter()
                    .filter_map(|&cell| {
                        find_position(lg.grid(), &placed, cell, placed.cell(cell).gp_pos, cfg)
                    })
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &cells, |b, cells| {
            b.iter(|| {
                cells
                    .iter()
                    .filter_map(|&cell| {
                        find_position_reference(
                            lg.grid(),
                            &placed,
                            cell,
                            placed.cell(cell).gp_pos,
                            cfg,
                        )
                    })
                    .count()
            })
        });
    }
    group.finish();
}

/// End-to-end legalization of a whole design: flat, Gcell-sequential, and
/// Gcell-parallel (2 workers; on a single-core host this measures the
/// orchestration overhead rather than a speedup).
fn bench_full_legalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("legalize_full");
    group.sample_size(10);
    let d = design("des_perf_b_md1", 0.006);
    group.bench_function("flat", |b| {
        b.iter(|| {
            let mut local = d.clone();
            let mut lg = Legalizer::new(&local);
            black_box(lg.run(&mut local, &Ordering::SizeDescending))
        })
    });
    let gcells = GcellGrid::new(&d, 3, 3);
    group.bench_function("gcell_seq", |b| {
        b.iter(|| {
            let mut local = d.clone();
            let mut lg = Legalizer::new(&local);
            black_box(lg.run_gcells(&mut local, &Ordering::SizeDescending, &gcells))
        })
    });
    group.bench_function("gcell_parallel2", |b| {
        b.iter(|| {
            let mut local = d.clone();
            let mut lg = Legalizer::new(&local);
            black_box(lg.run_gcells_parallel(&mut local, &Ordering::SizeDescending, &gcells, 2))
        })
    });
    group.finish();
}

/// The scale curve: flat vs parallel legalization of des_perf_b_md1 grown
/// to explicit cell-count presets. Every iteration asserts zero failed
/// cells, so a run that trades completeness for speed fails the bench
/// itself, not just the guard script.
fn bench_scale(c: &mut Criterion, max_cells: usize) {
    let mut group = c.benchmark_group("legalize_scale");
    group.sample_size(5);
    let spec = find_spec("des_perf_b_md1").expect("spec");
    let threads = rlleg_legalize::pool::default_threads();
    for (label, cells) in [
        ("1k", 1_000usize),
        ("10k", 10_000),
        ("100k", 100_000),
        ("1m", 1_000_000),
    ] {
        if cells > max_cells {
            continue;
        }
        let s = spec.scaled_to(cells);
        let d = generate(&s);
        let (nx, ny) = s.paper_gcell_grid();
        let gcells = GcellGrid::new(&d, nx, ny);
        group.bench_function(format!("flat/{label}"), |b| {
            b.iter(|| {
                let mut local = d.clone();
                let stats = Legalizer::new(&local).run(&mut local, &Ordering::SizeDescending);
                assert!(
                    stats.failed.is_empty(),
                    "flat/{label}: {} cells failed",
                    stats.failed.len()
                );
                black_box(stats.legalized)
            })
        });
        group.bench_function(format!("parallel/{label}"), |b| {
            b.iter(|| {
                let mut local = d.clone();
                let stats = Legalizer::new(&local).run_gcells_parallel(
                    &mut local,
                    &Ordering::SizeDescending,
                    &gcells,
                    threads,
                );
                assert!(
                    stats.failed.is_empty(),
                    "parallel/{label}: {} cells failed",
                    stats.failed.len()
                );
                black_box(stats.legalized)
            })
        });
    }
    group.finish();
}

/// Analytical global placement at the scale-curve presets: wall time of
/// the full `place` pipeline (quadratic solves + diffusion spreading +
/// the legalization-aware finalist round) plus its bin-overflow trajectory
/// endpoints as raw scalars. `bench_guard.sh` asserts the overflow
/// decreases at 10k cells.
fn bench_gplace(c: &mut Criterion, max_cells: usize) {
    let mut group = c.benchmark_group("gplace");
    group.sample_size(2);
    let spec = find_spec("des_perf_b_md1").expect("spec");
    let cfg = GpConfig::default();
    for (label, cells) in [("1k", 1_000usize), ("10k", 10_000), ("100k", 100_000)] {
        if cells > max_cells {
            continue;
        }
        let d = generate(&spec.scaled_to(cells));
        let mut last = None;
        group.bench_function(format!("place/{label}"), |b| {
            b.iter(|| {
                let mut local = d.clone();
                last = Some(place(&mut local, &cfg));
            })
        });
        let stats = last.expect("bench ran");
        let start = stats.overflow.first().copied().unwrap_or(0.0);
        let end = stats.overflow.last().copied().unwrap_or(0.0);
        criterion::record_value("gplace", format!("overflow_start/{label}"), start);
        criterion::record_value("gplace", format!("overflow_end/{label}"), end);
    }
    group.finish();
}

/// The QoR comparison the placer exists for: legalize the same netlist
/// once from the synthetic benchgen perturbation and once from the gplace
/// output, and record post-legalization HPWL plus failed-cell counts as
/// raw scalars. `bench_guard.sh` asserts zero failed cells from gplace
/// and a strictly lower HPWL than the synthetic baseline at 10k cells.
fn bench_legalize_from_gp(c: &mut Criterion, max_cells: usize) {
    let mut group = c.benchmark_group("legalize_from_gp");
    group.sample_size(2);
    let spec = find_spec("des_perf_b_md1").expect("spec");
    let threads = rlleg_legalize::pool::default_threads();
    let cfg = GpConfig::default();
    for (label, cells) in [("1k", 1_000usize), ("10k", 10_000), ("100k", 100_000)] {
        if cells > max_cells {
            continue;
        }
        let d = generate(&spec.scaled_to(cells));
        let mut placed = d.clone();
        place(&mut placed, &cfg);
        for (variant, input) in [("synthetic", &d), ("gp", &placed)] {
            let gcells = GcellGrid::auto(input);
            let mut failed = 0usize;
            let mut hpwl = 0i64;
            group.bench_function(format!("{variant}/{label}"), |b| {
                b.iter(|| {
                    let mut local = input.clone();
                    let stats = Legalizer::new(&local).run_gcells_parallel(
                        &mut local,
                        &Ordering::SizeDescending,
                        &gcells,
                        threads,
                    );
                    assert!(
                        stats.failed.is_empty(),
                        "{variant}/{label}: {} cells failed",
                        stats.failed.len()
                    );
                    failed = stats.failed.len();
                    hpwl = metrics::total_hpwl(&local);
                    black_box(stats.legalized)
                })
            });
            criterion::record_value(
                "legalize_from_gp",
                format!("failed_{variant}/{label}"),
                failed as f64,
            );
            criterion::record_value(
                "legalize_from_gp",
                format!("hpwl_{variant}/{label}"),
                hpwl as f64,
            );
        }
    }
    group.finish();
}

/// Batched network evaluation: one stacked matrix–matrix forward over all
/// per-step states vs one small forward per state, and the policy-only
/// inference path vs the full policy+value forward.
fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let net = CellWiseNet::new(64, &mut rng);
    // Per-step states are small (the cells still unplaced in one Gcell
    // subepisode), so the batched path's win is amortizing per-forward
    // overhead across the whole mini-batch.
    let states: Vec<Matrix> = (0..64)
        .map(|k| {
            let n = 2 + (k * 3) % 12;
            let data: Vec<f32> = (0..n * NUM_FEATURES)
                .map(|i| ((i * 7 + k) % 23) as f32 / 23.0)
                .collect();
            Matrix::from_vec(n, NUM_FEATURES, data)
        })
        .collect();
    let refs: Vec<&Matrix> = states.iter().collect();
    group.bench_function("values_batched", |b| {
        b.iter(|| black_box(net.values_batch(&refs)).len())
    });
    group.bench_function("values_per_state", |b| {
        b.iter(|| {
            states
                .iter()
                .map(|s| net.forward_inference(s).value)
                .sum::<f32>()
        })
    });
    group.bench_function("policy_only", |b| {
        b.iter(|| {
            states
                .iter()
                .map(|s| net.forward_policy(s).len())
                .sum::<usize>()
        })
    });
    group.bench_function("policy_and_value", |b| {
        b.iter(|| {
            states
                .iter()
                .map(|s| net.forward_inference(s).logits.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Training throughput: the asynchronous pool-scheduled trainer (batched
/// policy forwards across Gcells, lock-free parameter snapshots) vs the
/// deterministic round-robin `Trainer` on the same 10k-cell design and
/// config. Both run `agents × episodes` full episodes, so mean time per
/// iteration is directly comparable as steps/sec; `bench_guard.sh` asserts
/// async ≥ round-robin whenever the host has ≥ 2 cores.
fn bench_train_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_throughput");
    group.sample_size(10);
    let spec = find_spec("des_perf_b_md1").expect("spec");
    let d = generate(&spec.scaled_to(10_000));
    let designs = std::slice::from_ref(&d);
    let cfg = RlConfig {
        hidden_dim: 16,
        agents: 2,
        episodes: 1,
        pretrain_episodes: 0,
        seed: 7,
        ..RlConfig::default()
    };
    group.bench_function("async2/10k", |b| {
        b.iter(|| black_box(train(designs, &cfg).history.len()))
    });
    group.bench_function("roundrobin2/10k", |b| {
        b.iter(|| {
            let mut t = Trainer::new(designs, &cfg);
            while t.run_episode() {}
            black_box(t.finish().history.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_find_position,
    bench_full_legalize,
    bench_inference,
    bench_train_throughput
);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let max_cells = value_of("--cells").map_or(100_000, |v| {
        parse_cells(&v)
            .unwrap_or_else(|| panic!("--cells wants 1k|10k|100k|1m or an integer, got {v:?}"))
    });
    let only_scale = args.iter().any(|a| a == "--only-scale");
    let only_gplace = args.iter().any(|a| a == "--only-gplace");
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_legalize.json").to_owned();
    let path = value_of("--out").unwrap_or(default_out);

    let mut c = Criterion::default();
    if !only_scale && !only_gplace {
        benches();
    }
    if !only_scale {
        bench_gplace(&mut c, max_cells);
        bench_legalize_from_gp(&mut c, max_cells);
    }
    if !only_gplace {
        bench_scale(&mut c, max_cells);
    }
    criterion::export_json(&path).expect("write bench snapshot");
    println!("wrote {path}");
}
