//! Criterion micro-benchmarks for the performance-critical substrates:
//! R-tree queries, the pixel-wise diamond search, full legalization runs,
//! feature extraction, and the cell-wise network forward/backward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rl_legalizer::CellWiseNet;
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::Design;
use rlleg_geom::{rtree::RTree, Point, Rect};
use rlleg_legalize::{
    search::find_position, FeatureSpace, GcellGrid, Legalizer, Ordering, SearchConfig,
};

fn design(name: &str, scale: f64) -> Design {
    generate(&find_spec(name).expect("spec").scaled(scale))
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree");
    for n in [1_000i64, 10_000] {
        let items: Vec<(Rect, i64)> = (0..n)
            .map(|i| {
                let x = (i * 613) % 100_000;
                let y = (i * 2_777) % 100_000;
                (Rect::new(x, y, x + 400, y + 2_000), i)
            })
            .collect();
        let tree = RTree::bulk_load(items.clone());
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &items, |b, items| {
            b.iter(|| RTree::bulk_load(items.clone()))
        });
        group.bench_with_input(BenchmarkId::new("query_window", n), &tree, |b, tree| {
            b.iter(|| {
                tree.query(&Rect::new(25_000, 25_000, 35_000, 35_000))
                    .count()
            })
        });
        group.bench_with_input(BenchmarkId::new("nearest_2", n), &tree, |b, tree| {
            b.iter(|| tree.nearest(Point::new(50_000, 50_000), 2).count())
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("pixel_search");
    let d = design("jpeg_encoder", 0.02);
    let mut lg = Legalizer::new(&d);
    let mut placed = d.clone();
    lg.run(&mut placed, &Ordering::SizeDescending);
    // Search for a fresh cell against the dense final occupancy.
    let cell = placed.movable_ids().next().expect("cells");
    group.bench_function("find_position_dense", |b| {
        b.iter(|| {
            find_position(
                lg.grid(),
                &placed,
                cell,
                placed.cell(cell).gp_pos,
                SearchConfig::default(),
            )
        })
    });
    group.finish();
}

fn bench_legalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("legalize_full");
    group.sample_size(10);
    for name in ["usb_phy", "wb_conmax_top"] {
        let scale = if name == "usb_phy" { 1.0 } else { 0.02 };
        let d = design(name, scale);
        group.bench_function(BenchmarkId::new("size_ordered", name), |b| {
            b.iter(|| {
                let mut dd = d.clone();
                let mut lg = Legalizer::new(&dd);
                lg.run(&mut dd, &Ordering::SizeDescending)
            })
        });
    }
    group.finish();
}

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("features");
    let d = design("des3", 0.02);
    let gcells = GcellGrid::auto(&d);
    group.bench_function("feature_space_build", |b| {
        b.iter(|| FeatureSpace::new(&d, &gcells))
    });
    let fs = FeatureSpace::new(&d, &gcells);
    let cells: Vec<_> = d.movable_ids().collect();
    group.bench_function("state_extraction", |b| b.iter(|| fs.state(&d, &cells)));
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("cellwise_net");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for (h, n) in [(64usize, 200usize), (256, 200)] {
        let mut net = CellWiseNet::new(h, &mut rng);
        let state = rlleg_nn::Matrix::zeros(n, rlleg_legalize::NUM_FEATURES);
        group.bench_function(BenchmarkId::new("forward", format!("h{h}_n{n}")), |b| {
            b.iter(|| net.forward_inference(&state))
        });
        group.bench_function(
            BenchmarkId::new("forward_backward", format!("h{h}_n{n}")),
            |b| {
                b.iter(|| {
                    net.zero_grads();
                    let f = net.forward(&state);
                    let d: Vec<f32> = f.logits.iter().map(|_| 0.01).collect();
                    net.backward(&d, 0.1);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rtree,
    bench_search,
    bench_legalize,
    bench_features,
    bench_network
);
criterion_main!(benches);
