//! A Tetris-style greedy row-packing legalizer — the classic alternative
//! sequential algorithm.
//!
//! The paper notes its framework "can be applied to any sequential
//! legalization algorithms"; this backend demonstrates that claim. Where
//! the pixel-wise diamond search looks for the nearest free pixel in any
//! direction, Tetris packing keeps a per-row *frontier* and always places
//! the next cell at the first gap at-or-right-of the frontier in the
//! cheapest row band, never revisiting space to the left. It is faster and
//! fragmentation-free along rows, but much more order-sensitive — which
//! makes it an interesting second environment for the RL agent.

use rlleg_design::{CellId, Design};
use rlleg_geom::Dbu;

use crate::legalizer::{PlaceCellError, RunStats};
use crate::order::Ordering;
use crate::pixel::{GridPos, PixelGrid};

/// A greedy row-packing (Tetris-style) sequential legalizer.
///
/// ```
/// use rlleg_design::{legality, DesignBuilder, Technology};
/// use rlleg_geom::Point;
/// use rlleg_legalize::{Ordering, TetrisLegalizer};
///
/// let mut b = DesignBuilder::new("t", Technology::contest(), 30, 8);
/// for i in 0..12 {
///     b.add_cell(format!("u{i}"), 2, 1, Point::new(i * 260, 100));
/// }
/// let mut design = b.build();
/// let mut lg = TetrisLegalizer::new(&design);
/// let stats = lg.run(&mut design, &Ordering::XAscending);
/// assert!(stats.is_complete());
/// assert!(legality::is_legal(&design));
/// ```
#[derive(Debug, Clone)]
pub struct TetrisLegalizer {
    grid: PixelGrid,
    /// Leftmost available site per row: everything to the left is
    /// considered consumed, even if free (the Tetris simplification).
    frontier: Vec<i64>,
}

impl TetrisLegalizer {
    /// Creates the legalizer, rasterizing fixed and already-legalized
    /// cells and starting every row frontier at site 0.
    pub fn new(design: &Design) -> Self {
        let mut grid = PixelGrid::new(design);
        for id in design.movable_ids() {
            let c = design.cell(id);
            if c.legalized {
                let pos = grid.to_grid(design, c.pos);
                grid.place(design, id, pos);
            }
        }
        let rows = grid.rows() as usize;
        Self {
            grid,
            frontier: vec![0; rows],
        }
    }

    /// Read access to the occupancy grid.
    pub fn grid(&self) -> &PixelGrid {
        &self.grid
    }

    /// Current frontier site of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn frontier(&self, row: i64) -> i64 {
        self.frontier[row as usize]
    }

    /// Legalizes one cell: scans row bands outward from the cell's
    /// global-placement row, and in each band takes the first legal
    /// position at-or-right-of the band frontier (and of the cell's own x,
    /// when that is farther right). Bands stop as soon as their vertical
    /// cost alone exceeds the best candidate.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceCellError`] when no band has room.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is fixed or already legalized.
    pub fn legalize_cell(
        &mut self,
        design: &mut Design,
        cell: CellId,
    ) -> Result<Dbu, PlaceCellError> {
        let c = design.cell(cell);
        assert!(c.is_movable(), "cannot legalize fixed cell {cell}");
        assert!(!c.legalized, "cell {cell} already legalized");
        let from = c.gp_pos;
        let sw = design.tech.site_width;
        let rh = design.tech.row_height;
        let w_sites = c.width / sw;
        let h_rows = i64::from(c.height_rows);
        let max_row = self.grid.rows() - h_rows;
        if max_row < 0 {
            return Err(PlaceCellError { cell });
        }
        let row0 = design.row_of(from.y).clamp(0, max_row);
        let site_gp = design.site_of(from.x);

        let limit = design.max_displacement;
        let mut best: Option<(GridPos, Dbu)> = None;
        // Rows ordered by vertical distance from the gp row.
        for dr in 0..=self.grid.rows() {
            let mut candidates_rows = Vec::new();
            if row0 - dr >= 0 {
                candidates_rows.push(row0 - dr);
            }
            if dr != 0 && row0 + dr <= max_row {
                candidates_rows.push(row0 + dr);
            }
            if candidates_rows.is_empty() && row0 - dr < 0 && row0 + dr > max_row {
                break;
            }
            if let Some((_, bd)) = best {
                // Vertical cost alone already exceeds the incumbent.
                if dr * rh > bd {
                    break;
                }
            }
            for row in candidates_rows {
                // Band frontier: the rightmost frontier across the covered
                // rows (a multi-row cell must clear all of them).
                let band_frontier = (row..row + h_rows)
                    .map(|r| self.frontier[r as usize])
                    .max()
                    .unwrap_or(0);
                let mut s = band_frontier
                    .max(site_gp.min(self.grid.sites_x() - w_sites))
                    .max(band_frontier);
                // March right over blockages until a legal start is found.
                while s + w_sites <= self.grid.sites_x() {
                    if self
                        .grid
                        .check_place(design, cell, GridPos { site: s, row })
                        .is_ok()
                    {
                        let p = self.grid.to_dbu(design, GridPos { site: s, row });
                        let disp = p.manhattan(from);
                        if limit.is_none_or(|l| disp <= l) && best.is_none_or(|(_, bd)| disp < bd) {
                            best = Some((GridPos { site: s, row }, disp));
                        }
                        break;
                    }
                    s += 1;
                }
            }
        }

        let Some((pos, disp)) = best else {
            return Err(PlaceCellError { cell });
        };
        self.grid.place(design, cell, pos);
        // Frontier advances over every covered row.
        for r in pos.row..pos.row + h_rows {
            self.frontier[r as usize] = self.frontier[r as usize].max(pos.site + w_sites);
        }
        let p = self.grid.to_dbu(design, pos);
        let c = design.cell_mut(cell);
        c.pos = p;
        c.legalized = true;
        Ok(disp)
    }

    /// Legalizes all movable cells in the given order.
    pub fn run(&mut self, design: &mut Design, ordering: &Ordering) -> RunStats {
        let order = ordering.order(design, None);
        self.run_cells(design, &order)
    }

    /// Legalizes an explicit list of cells in order.
    pub fn run_cells(&mut self, design: &mut Design, order: &[CellId]) -> RunStats {
        let mut stats = RunStats::default();
        for &cell in order {
            match self.legalize_cell(design, cell) {
                Ok(_) => stats.legalized += 1,
                Err(e) => stats.failed.push(e.cell),
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{legality, metrics::Qor, DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn design(n: i64) -> Design {
        let mut b = DesignBuilder::new("tt", Technology::contest(), 40, 8);
        for i in 0..n {
            let w = 1 + i % 3;
            let h = 1 + u8::from(i % 5 == 0);
            b.add_cell(
                format!("u{i}"),
                w,
                h,
                Point::new((i * 530) % 7_000, (i * 1_900) % 15_000),
            );
        }
        b.build()
    }

    #[test]
    fn x_ordered_run_is_legal() {
        let mut d = design(40);
        let mut lg = TetrisLegalizer::new(&d);
        let stats = lg.run(&mut d, &Ordering::XAscending);
        assert!(stats.is_complete(), "failed: {:?}", stats.failed);
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
    }

    #[test]
    fn size_and_random_orders_also_legal() {
        for ordering in [Ordering::SizeDescending, Ordering::Random(5)] {
            let mut d = design(40);
            let mut lg = TetrisLegalizer::new(&d);
            let stats = lg.run(&mut d, &ordering);
            assert!(stats.is_complete());
            assert!(legality::is_legal(&d));
        }
    }

    #[test]
    fn frontier_advances_and_blocks_left_space() {
        let mut d = design(2);
        let mut lg = TetrisLegalizer::new(&d);
        // Place the first cell far right; its row frontier must advance
        // past it, so the second cell in that row goes right of it even if
        // space exists on the left.
        d.cell_mut(rlleg_design::CellId(0)).gp_pos = Point::new(4_000, 0);
        d.cell_mut(rlleg_design::CellId(0)).pos = Point::new(4_000, 0);
        lg.legalize_cell(&mut d, rlleg_design::CellId(0))
            .expect("first");
        let placed_pos = d.cell(rlleg_design::CellId(0)).pos;
        let placed_width = d.cell(rlleg_design::CellId(0)).width;
        assert_eq!(placed_pos, Point::new(4_000, 0));
        assert_eq!(lg.frontier(0), 20 + placed_width / 200);
        // Second cell wants site 0 of the same row: frontier pushes it
        // right (or to another row, whichever is cheaper — row 1 here).
        d.cell_mut(rlleg_design::CellId(1)).gp_pos = Point::new(0, 100);
        d.cell_mut(rlleg_design::CellId(1)).pos = Point::new(0, 100);
        lg.legalize_cell(&mut d, rlleg_design::CellId(1))
            .expect("second");
        let c1_pos = d.cell(rlleg_design::CellId(1)).pos;
        assert!(
            c1_pos.y > 0 || c1_pos.x >= placed_pos.x + placed_width,
            "tetris never uses space left of the frontier: {c1_pos}"
        );
    }

    #[test]
    fn is_more_order_sensitive_than_diamond() {
        // Under x-ascending order Tetris is near-optimal; under size order
        // it typically pays more displacement than the diamond search.
        let base = design(60);
        let mut tetris_x = base.clone();
        let mut lg_x = TetrisLegalizer::new(&tetris_x);
        lg_x.run(&mut tetris_x, &Ordering::XAscending);
        let mut tetris_size = base.clone();
        let mut lg_s = TetrisLegalizer::new(&tetris_size);
        lg_s.run(&mut tetris_size, &Ordering::SizeDescending);
        let qx = Qor::measure(&tetris_x);
        let qs = Qor::measure(&tetris_size);
        assert!(qx.is_complete() && qs.is_complete());
        assert!(
            qx.total_displacement <= qs.total_displacement,
            "x-order should suit tetris: {} vs {}",
            qx.total_displacement,
            qs.total_displacement
        );
    }

    #[test]
    fn reports_failure_when_band_is_exhausted() {
        let mut b = DesignBuilder::new("full", Technology::contest(), 4, 1);
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("c", 4, 1, Point::new(0, 0));
        let mut d = b.build();
        let mut lg = TetrisLegalizer::new(&d);
        lg.legalize_cell(&mut d, a).expect("fits");
        // Frontier is at site 2; a 4-site cell no longer fits.
        assert_eq!(lg.legalize_cell(&mut d, c), Err(PlaceCellError { cell: c }));
    }

    #[test]
    fn respects_macros_by_marching_right() {
        let mut b = DesignBuilder::new("m", Technology::contest(), 20, 2);
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        b.add_fixed_cell("blk", 6, 1, Point::new(0, 0));
        let mut d = b.build();
        let mut lg = TetrisLegalizer::new(&d);
        let disp = lg.legalize_cell(&mut d, a).expect("placed");
        let c = d.cell(a);
        // Either right of the macro in row 0 or in row 1 (whichever is
        // cheaper; row 1 costs a full row height = 2000 > 6 sites = 1200).
        assert_eq!(c.pos, Point::new(1_200, 0));
        assert_eq!(disp, 1_200);
    }
}
