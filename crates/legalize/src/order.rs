//! Cell-ordering strategies for sequential legalization.
//!
//! The whole point of the paper is that this ordering matters: the baseline
//! \[26\] sorts by descending cell size, other works sort by x-coordinate,
//! Fig. 1 randomizes the order, and the RL agent picks a custom order.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rlleg_design::{CellId, Design, HotCells};

/// How to order the movable cells of a legalization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ordering {
    /// Descending cell area, the state-of-the-art baseline of Do et al. /
    /// OpenDP (\[26\] in the paper). Ties break by id, which models the
    /// paper's observation that same-size cells end up in arbitrary order.
    SizeDescending,
    /// Ascending x-coordinate of the global placement (the rule used by
    /// \[5\]–\[8\] in the paper).
    XAscending,
    /// Uniformly random order from the given seed (Fig. 1's experiment).
    Random(u64),
    /// An explicit order (the RL agent's choice). Entries outside the
    /// requested cell set and repeated entries are dropped; every requested
    /// cell must appear at least once.
    Explicit(Vec<CellId>),
}

impl Ordering {
    /// Produces the legalization order for `cells` (defaulting to every
    /// movable cell of `design` when `cells` is `None`).
    ///
    /// # Panics
    ///
    /// For [`Ordering::Explicit`], panics when the order does not cover
    /// every requested cell — a silent drop would leave cells unlegalized
    /// and misreport the run as complete.
    pub fn order(&self, design: &Design, cells: Option<&[CellId]>) -> Vec<CellId> {
        let mut ids: Vec<CellId> = match cells {
            Some(c) => c.to_vec(),
            None => design.movable_ids().collect(),
        };
        match self {
            Ordering::SizeDescending => {
                let rh = design.tech.row_height;
                ids.sort_by_key(|&id| {
                    let c = design.cell(id);
                    (std::cmp::Reverse(c.area(rh)), id)
                });
            }
            Ordering::XAscending => {
                ids.sort_by_key(|&id| (design.cell(id).gp_pos.x, id));
            }
            Ordering::Random(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                ids.shuffle(&mut rng);
            }
            Ordering::Explicit(order) => {
                // Validate instead of blindly cloning: keep the first
                // occurrence of each requested cell, drop everything else,
                // and require the result to be a permutation of the request.
                let requested: std::collections::HashSet<CellId> = ids.iter().copied().collect();
                let mut seen = std::collections::HashSet::with_capacity(ids.len());
                let filtered: Vec<CellId> = order
                    .iter()
                    .copied()
                    .filter(|id| requested.contains(id) && seen.insert(*id))
                    .collect();
                assert_eq!(
                    filtered.len(),
                    ids.len(),
                    "explicit order covers {} of the {} requested cells",
                    filtered.len(),
                    ids.len()
                );
                return filtered;
            }
        }
        ids
    }

    /// [`order`](Self::order) on a [`HotCells`] snapshot: the sort keys
    /// (area, global-placement x) come from the dense columns instead of
    /// the `Cell` structs, so per-Gcell ordering on big designs walks
    /// contiguous memory. Produces exactly the same order as `order`.
    pub fn order_hot(
        &self,
        design: &Design,
        hot: &HotCells,
        cells: Option<&[CellId]>,
    ) -> Vec<CellId> {
        let mut ids: Vec<CellId> = match cells {
            Some(c) => c.to_vec(),
            None => hot.movable_ids().collect(),
        };
        match self {
            Ordering::SizeDescending => {
                ids.sort_by_key(|&id| (std::cmp::Reverse(hot.area(id)), id));
            }
            Ordering::XAscending => {
                ids.sort_by_key(|&id| (hot.gp_x(id), id));
            }
            // Random and Explicit never read cell attributes.
            Ordering::Random(_) | Ordering::Explicit(_) => return self.order(design, cells),
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn design() -> Design {
        let mut b = DesignBuilder::new("o", Technology::contest(), 50, 10);
        b.add_cell("small_right", 1, 1, Point::new(5_000, 0));
        b.add_cell("big", 3, 2, Point::new(2_000, 0));
        b.add_cell("mid_left", 2, 1, Point::new(100, 0));
        b.add_fixed_cell("macro", 5, 4, Point::new(8_000, 0));
        b.build()
    }

    #[test]
    fn size_descending() {
        let d = design();
        let got = Ordering::SizeDescending.order(&d, None);
        assert_eq!(got, vec![CellId(1), CellId(2), CellId(0)]);
    }

    #[test]
    fn size_ties_break_by_id() {
        let mut b = DesignBuilder::new("t", Technology::contest(), 50, 10);
        b.add_cell("a", 2, 1, Point::new(900, 0));
        b.add_cell("b", 2, 1, Point::new(100, 0));
        b.add_cell("c", 1, 2, Point::new(500, 0));
        let d = b.build();
        // a and b tie on area (2x1); c has area 1x2 = same area too!
        // All three tie => pure id order.
        let got = Ordering::SizeDescending.order(&d, None);
        assert_eq!(got, vec![CellId(0), CellId(1), CellId(2)]);
    }

    #[test]
    fn x_ascending() {
        let d = design();
        let got = Ordering::XAscending.order(&d, None);
        assert_eq!(got, vec![CellId(2), CellId(1), CellId(0)]);
    }

    #[test]
    fn random_is_seeded_and_permutes() {
        let d = design();
        let a = Ordering::Random(1).order(&d, None);
        let b = Ordering::Random(1).order(&d, None);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![CellId(0), CellId(1), CellId(2)],
            "it is a permutation"
        );
        // Some seed must give a different order (try a few).
        let differs = (2..30).any(|s| Ordering::Random(s).order(&d, None) != a);
        assert!(differs);
    }

    #[test]
    fn explicit_filters_to_requested_subset() {
        let d = design();
        // Full permutation with noise: a fixed cell (never movable), a
        // duplicate, and an out-of-range id are all dropped.
        let noisy = vec![
            CellId(2),
            CellId(3), // the macro: not movable, filtered
            CellId(0),
            CellId(2), // duplicate, filtered
            CellId(99),
            CellId(1),
        ];
        assert_eq!(
            Ordering::Explicit(noisy).order(&d, None),
            vec![CellId(2), CellId(0), CellId(1)]
        );
        // Subset request: the explicit order may mention cells outside the
        // subset; only the requested ones survive, in the given order.
        let got = Ordering::Explicit(vec![CellId(1), CellId(2), CellId(0)])
            .order(&d, Some(&[CellId(0), CellId(1)]));
        assert_eq!(got, vec![CellId(1), CellId(0)]);
    }

    #[test]
    fn explicit_duplicates_keep_first_occurrence() {
        let d = design();
        // Each repeated id is kept only where it first appears — the later
        // duplicates must not reorder or re-insert it ("repeated entries are
        // dropped", first occurrence wins).
        let dup = vec![
            CellId(2),
            CellId(0),
            CellId(2), // dup of position 0
            CellId(1),
            CellId(2), // dup again
            CellId(0), // dup of position 1
        ];
        assert_eq!(
            Ordering::Explicit(dup).order(&d, None),
            vec![CellId(2), CellId(0), CellId(1)]
        );
    }

    #[test]
    #[should_panic(expected = "explicit order covers")]
    fn explicit_missing_cell_panics() {
        let d = design();
        // CellId(1) is movable but absent from the order.
        Ordering::Explicit(vec![CellId(0), CellId(2)]).order(&d, None);
    }

    #[test]
    fn order_hot_matches_order_for_every_strategy() {
        let d = design();
        let hot = d.hot_cells();
        let subset = [CellId(0), CellId(2)];
        for strategy in [
            Ordering::SizeDescending,
            Ordering::XAscending,
            Ordering::Random(7),
            Ordering::Explicit(vec![CellId(2), CellId(0), CellId(1)]),
        ] {
            assert_eq!(
                strategy.order_hot(&d, &hot, None),
                strategy.order(&d, None),
                "{strategy:?} full set"
            );
            if !matches!(strategy, Ordering::Explicit(_)) {
                assert_eq!(
                    strategy.order_hot(&d, &hot, Some(&subset)),
                    strategy.order(&d, Some(&subset)),
                    "{strategy:?} subset"
                );
            }
        }
    }

    #[test]
    fn explicit_passthrough_and_subset() {
        let d = design();
        let order = vec![CellId(2), CellId(0), CellId(1)];
        assert_eq!(Ordering::Explicit(order.clone()).order(&d, None), order);
        // Subset restriction for Gcell runs.
        let subset = [CellId(0), CellId(1)];
        let got = Ordering::SizeDescending.order(&d, Some(&subset));
        assert_eq!(got, vec![CellId(1), CellId(0)]);
    }
}
