//! The pixel-wise mixed-height standard-cell legalizer and its supporting
//! machinery: the reproduction of the size-ordered academic legalizer the
//! paper builds on and compares against (\[26\]/OpenDP-style), plus the
//! Gcell/bin partitioning and the 13-feature extraction the RL framework
//! consumes.
//!
//! Main pieces:
//!
//! - [`PixelGrid`] — site × row occupancy with fences, rail parity, and
//!   edge-spacing checks,
//! - [`search::find_position`] — the diamond pixel search (Sec. II-B),
//! - [`Ordering`] — size-sorted / x-sorted / random / explicit cell orders,
//! - [`Legalizer`] — the sequential legalization driver, with the baseline's
//!   rearrangement and cell-swap heuristics,
//! - [`TetrisLegalizer`] — a greedy row-packing alternative backend (the
//!   paper: "our framework can be applied to any sequential legalization
//!   algorithms"),
//! - [`SubGrid`] — window-scoped scratch snapshots for clone-free parallel
//!   per-Gcell solves, behind the [`GridRead`] search abstraction,
//! - [`pool::WorkerPool`] — the persistent worker pool amortizing thread
//!   startup across `run_gcells_parallel` calls,
//! - [`sched::TileSchedule`] / [`sched::StealQueues`] — the two-level
//!   coarse-tile → fine-Gcell schedule with per-worker stealing deques
//!   that feeds the pool deterministically,
//! - [`GcellGrid`] / [`BinGrid`] — subepisode partitioning (Sec. III-E-1),
//! - [`FeatureSpace`] — incremental maintenance of the Table-I features.
//!
//! # Example
//!
//! ```
//! use rlleg_design::{legality, DesignBuilder, Technology};
//! use rlleg_geom::Point;
//! use rlleg_legalize::{Legalizer, Ordering};
//!
//! let mut b = DesignBuilder::new("quick", Technology::nangate45(), 40, 10);
//! for i in 0..20 {
//!     b.add_cell(format!("u{i}"), 1 + i % 3, 1 + (i % 2) as u8, Point::new(i * 310, i * 450));
//! }
//! let mut design = b.build();
//! let mut legalizer = Legalizer::new(&design);
//! let stats = legalizer.run(&mut design, &Ordering::SizeDescending);
//! assert!(stats.is_complete());
//! assert!(legality::is_legal(&design));
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod features;
pub mod gcell;
mod legalizer;
mod order;
pub mod pixel;
pub mod pool;
pub mod sched;
pub mod search;
mod tetris;

pub use fault::{FaultGuard, FaultPlan, InferStall};
pub use features::{FeatureSpace, NUM_FEATURES};
pub use gcell::{BinGrid, GcellGrid};
pub use legalizer::{Legalizer, PlaceCellError, RunStats};
pub use order::Ordering;
pub use pixel::{GridPos, GridRead, GridWindow, PixelGrid, PlaceRejection, SubGrid};
pub use pool::WorkerPool;
pub use sched::{StealQueues, TileSchedule};
pub use search::{find_position, find_position_hot, find_position_reference, SearchConfig};
pub use tetris::TetrisLegalizer;
