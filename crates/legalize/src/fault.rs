//! Deterministic fault injection for resilience testing.
//!
//! Production code must contain faults (a panicking Gcell solve is
//! quarantined, a stalled inference step trips the watchdog) — but proving
//! that requires *causing* faults on demand, deterministically, without
//! `#[cfg(test)]`-only seams that the release fuzz harness cannot reach.
//! This module is that seam: a process-global [`FaultPlan`] armed through
//! [`arm`] and consulted from the hot paths through near-free probes
//! ([`panic_if_planned`], [`infer_stall`]).
//!
//! The disarmed fast path is a single relaxed atomic load; arming takes a
//! process-wide lock held by the returned [`FaultGuard`], so concurrent
//! tests that inject faults serialize instead of trampling each other's
//! plans. Faults are keyed by *logical* indices (Gcell index, inference
//! step), never by thread or wall clock, so an injected run is exactly as
//! deterministic as a fault-free one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Which faults to inject, and where.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Panic inside the phase-1 solve of this Gcell index (every solve of
    /// that Gcell panics while armed, whatever thread runs it).
    pub panic_at_gcell: Option<usize>,
    /// Sleep this long inside every RL-inference step with index `>= from`
    /// (simulates a pathologically slow solve for watchdog tests).
    pub infer_stall: Option<InferStall>,
}

/// A slow-solve stall injected into the inference loop.
#[derive(Debug, Clone, Copy)]
pub struct InferStall {
    /// First inference step (0-based, counted per run) that stalls.
    pub from_step: u64,
    /// How long each stalled step sleeps.
    pub sleep: Duration,
}

/// Armed-plan fast path: checked before taking any lock.
static ARMED: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<FaultPlan> {
    static PLAN: OnceLock<Mutex<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(FaultPlan::default()))
}

/// Serializes arm/disarm across threads (tests injecting faults must not
/// observe each other's plans).
fn arm_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Fault tests panic on purpose; a poisoned plan lock is expected, and
    // the data (a Copy plan) cannot be left torn.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Keeps the plan armed; disarms on drop. Holding it also excludes every
/// other would-be armer, so fault tests serialize process-wide.
pub struct FaultGuard {
    _excl: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_ignore_poison(plan_slot()) = FaultPlan::default();
    }
}

/// Arms `plan` process-wide until the returned guard drops. Blocks while
/// another guard is alive.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let excl = lock_ignore_poison(arm_lock());
    *lock_ignore_poison(plan_slot()) = plan;
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _excl: excl }
}

/// `true` while a plan is armed (single relaxed load; the production fast
/// path).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Probe called from the per-Gcell solve: panics when the armed plan
/// targets `gcell`.
#[inline]
pub fn panic_if_planned(gcell: usize) {
    if !armed() {
        return;
    }
    let target = lock_ignore_poison(plan_slot()).panic_at_gcell;
    if target == Some(gcell) {
        panic!("injected fault: gcell {gcell} solve panic");
    }
}

/// Probe called from the RL-inference loop: returns how long step `step`
/// should stall, if the armed plan says so.
#[inline]
pub fn infer_stall(step: u64) -> Option<Duration> {
    if !armed() {
        return None;
    }
    lock_ignore_poison(plan_slot())
        .infer_stall
        .filter(|s| step >= s.from_step)
        .map(|s| s.sleep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_probes_are_inert() {
        assert!(!armed());
        panic_if_planned(0);
        assert_eq!(infer_stall(0), None);
    }

    #[test]
    fn armed_plan_fires_and_disarms_on_drop() {
        let guard = arm(FaultPlan {
            panic_at_gcell: Some(3),
            infer_stall: Some(InferStall {
                from_step: 2,
                sleep: Duration::from_millis(1),
            }),
        });
        assert!(armed());
        panic_if_planned(2); // not the target: no panic
        assert_eq!(infer_stall(1), None);
        assert_eq!(infer_stall(2), Some(Duration::from_millis(1)));
        let hit = std::panic::catch_unwind(|| panic_if_planned(3));
        assert!(hit.is_err(), "planned gcell must panic");
        drop(guard);
        assert!(!armed());
        panic_if_planned(3); // inert again
    }
}
