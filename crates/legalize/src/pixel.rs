//! The pixel grid: per-site/per-row occupancy, fence maps, and the
//! edge-spacing row index.
//!
//! The pixel-wise search algorithm (Sec. II-B) "divides the entire design
//! into pixels of minimum width and height, i.e., in the unit of placement
//! site and spacing of power rails". [`PixelGrid`] is that division plus
//! everything needed to answer "can this cell go here?" in `O(cell pixels)`.
//!
//! On top of the per-pixel occupant array the grid keeps per-row `u64`
//! occupancy bitmaps (LSB = lowest site index, padding bits beyond the core
//! read as occupied). A `w_sites × h_rows` candidate window is tested by
//! OR-ing the row words and masking, and [`for_each_free_span`]
//! (PixelGrid::for_each_free_span) enumerates maximal free runs with
//! `trailing_zeros`, so searches skip whole blocked stretches instead of
//! probing pixel-by-pixel (see DESIGN.md §9).

use std::collections::BTreeMap;

use rlleg_design::{CellId, Design};
use rlleg_geom::{Dbu, Point, Rect};

/// Sentinel for an unoccupied pixel.
const FREE: u32 = u32::MAX;
/// Sentinel occupant for fixed-cell / blocked pixels.
pub(crate) const BLOCKED: u32 = u32::MAX - 1;
/// Sentinel for "no fence".
const NO_FENCE: u16 = u16::MAX;

/// A legal-position candidate in grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridPos {
    /// Site index (x).
    pub site: i64,
    /// Row index (y).
    pub row: i64,
}

/// A half-open rectangular region of the grid, `[lo_site, hi_site) ×
/// [lo_row, hi_row)`, used to restrict searches to a Gcell-local window
/// during parallel legalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridWindow {
    /// First site (inclusive).
    pub lo_site: i64,
    /// First row (inclusive).
    pub lo_row: i64,
    /// Last site (exclusive).
    pub hi_site: i64,
    /// Last row (exclusive).
    pub hi_row: i64,
}

impl GridWindow {
    /// The window covering a whole grid.
    pub fn full(grid: &PixelGrid) -> Self {
        Self {
            lo_site: 0,
            lo_row: 0,
            hi_site: grid.sites_x(),
            hi_row: grid.rows(),
        }
    }

    /// `true` when the window holds no pixels.
    pub fn is_degenerate(&self) -> bool {
        self.lo_site >= self.hi_site || self.lo_row >= self.hi_row
    }

    /// `true` when a `w_sites × h_rows` footprint anchored at `pos` lies
    /// entirely inside the window.
    pub fn contains_footprint(&self, pos: GridPos, w_sites: i64, h_rows: i64) -> bool {
        pos.site >= self.lo_site
            && pos.row >= self.lo_row
            && pos.site + w_sites <= self.hi_site
            && pos.row + h_rows <= self.hi_row
    }
}

/// Read-only occupancy view the diamond search runs against: either the
/// full [`PixelGrid`] or a window-scoped [`SubGrid`] scratch snapshot.
///
/// All coordinates are **full-grid** site/row indices in both cases; a
/// `SubGrid` reports the full grid's dimensions and answers queries inside
/// its window, so search code (bounds, clamping, span walks) is byte-for-byte
/// the same against either view — the foundation of the parallel
/// legalizer's bit-identical-to-sequential contract.
pub trait GridRead {
    /// Number of sites across the full grid.
    fn sites_x(&self) -> i64;
    /// Number of rows in the full grid.
    fn rows(&self) -> i64;
    /// Enumerates maximal free spans `[s_lo, s_hi)` of sites within
    /// `[lo, hi)` where all rows `row..row + h_rows` are simultaneously
    /// unoccupied, in ascending site order (see
    /// [`PixelGrid::for_each_free_span`]).
    fn for_each_free_span(&self, row: i64, h_rows: i64, lo: i64, hi: i64, f: impl FnMut(i64, i64));
    /// Full legality check of placing `cell` at `pos` (see
    /// [`PixelGrid::check_place`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceRejection`] encountered.
    fn check_place(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection>;
}

/// Shared span-walk core: enumerates maximal zero runs within `[lo, hi)`
/// over the per-word row-band OR supplied by `band_word` (indexed by the
/// *global* word column). Both the full grid and window snapshots feed
/// this, so their span enumeration is identical by construction.
fn walk_free_spans(
    lo: i64,
    hi: i64,
    mut band_word: impl FnMut(usize) -> u64,
    mut f: impl FnMut(i64, i64),
) {
    let lo_w = lo as usize / 64;
    let hi_w = ((hi - 1) as usize / 64) + 1;
    // Start of the currently open free run, or negative when closed.
    let mut open: i64 = -1;
    for wi in lo_w..hi_w {
        let base = wi as i64 * 64;
        let mut word = band_word(wi);
        // Mask sites outside [lo, hi) as occupied.
        if base < lo {
            word |= (1u64 << (lo - base)) - 1;
        }
        let k = hi - base;
        if k < 64 {
            word |= !0u64 << k;
        }
        let mut bit: i64 = 0;
        while bit < 64 {
            let rest = word >> bit;
            if open < 0 {
                // Skip the occupied run (trailing ones).
                let ones = (!rest).trailing_zeros() as i64;
                if ones == 0 {
                    open = base + bit;
                    continue;
                }
                bit += ones;
            } else {
                // Extend the free run (trailing zeros); a set bit ends it.
                let zeros = rest.trailing_zeros() as i64;
                if zeros == 0 {
                    f(open, base + bit);
                    open = -1;
                    continue;
                }
                bit += zeros;
            }
        }
    }
    if open >= 0 {
        f(open, hi);
    }
}

/// Word-level block test shared by the full grid and window snapshots:
/// `true` when `bits` is all-zero over the masked word window covering
/// sites `[site, site + w)` across `h` consecutive rows. `row0` indexes the
/// first row into `bits` (in units of `stride` words) and `col0` shifts
/// absolute word columns into the slice (0 for the full grid, `w_lo` for a
/// snapshot). The hot loop ORs u64×4 blocks across rows — plain indexed
/// array ops the autovectorizer lowers to 256-bit loads on AVX2 (128-bit
/// pairs on NEON) — with a scalar tail for the remaining columns.
#[inline]
fn window_zero_words(
    bits: &[u64],
    stride: usize,
    row0: usize,
    h: usize,
    col0: usize,
    site: i64,
    w: i64,
) -> bool {
    let lo_w = site as usize / 64;
    let hi_w = ((site + w - 1) as usize / 64) + 1;
    let mask_of = |wi: usize| {
        let base = wi as i64 * 64;
        let mut mask = !0u64;
        if base < site {
            mask &= !0u64 << (site - base);
        }
        let k = site + w - base;
        if k < 64 {
            mask &= (1u64 << k) - 1;
        }
        mask
    };
    let mut wi = lo_w;
    while wi + 4 <= hi_w {
        let mut acc = [0u64; 4];
        for r in 0..h {
            let rb = (row0 + r) * stride + (wi - col0);
            let w4: &[u64; 4] = bits[rb..rb + 4].try_into().unwrap();
            acc[0] |= w4[0];
            acc[1] |= w4[1];
            acc[2] |= w4[2];
            acc[3] |= w4[3];
        }
        for (j, a) in acc.iter().enumerate() {
            if a & mask_of(wi + j) != 0 {
                return false;
            }
        }
        wi += 4;
    }
    while wi < hi_w {
        let mask = mask_of(wi);
        for r in 0..h {
            if bits[(row0 + r) * stride + (wi - col0)] & mask != 0 {
                return false;
            }
        }
        wi += 1;
    }
    true
}

/// Builds the row-band word supplier [`walk_free_spans`] consumes: the OR
/// of `h` rows per word column, computed u64×4 columns at a time and cached
/// so the strictly ascending span walk folds each block across the rows
/// once instead of per column. `lo_w` anchors block alignment at the first
/// queried column; `limit` is the exclusive upper bound of valid absolute
/// word columns (`stride` for the full grid, `w_hi` for a snapshot).
#[inline]
fn band_words(
    bits: &[u64],
    stride: usize,
    row0: usize,
    h: usize,
    col0: usize,
    lo_w: usize,
    limit: usize,
) -> impl FnMut(usize) -> u64 + '_ {
    let mut blk = usize::MAX;
    let mut cache = [0u64; 4];
    move |wi| {
        let b = lo_w + ((wi - lo_w) & !3);
        if b != blk {
            blk = b;
            cache = [0u64; 4];
            let n = 4.min(limit - b);
            if n == 4 {
                for r in 0..h {
                    let rb = (row0 + r) * stride + (b - col0);
                    let w4: &[u64; 4] = bits[rb..rb + 4].try_into().unwrap();
                    cache[0] |= w4[0];
                    cache[1] |= w4[1];
                    cache[2] |= w4[2];
                    cache[3] |= w4[3];
                }
            } else {
                for r in 0..h {
                    let rb = (row0 + r) * stride + (b - col0);
                    for (j, c) in cache.iter_mut().take(n).enumerate() {
                        *c |= bits[rb + j];
                    }
                }
            }
        }
        cache[wi - b]
    }
}

/// Why a candidate position is not legal. Returned by
/// [`PixelGrid::check_place`] so search heuristics can distinguish hard
/// failures from merely occupied pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceRejection {
    /// Cell would extend beyond the core.
    OutOfBounds,
    /// Even-height cell on the wrong rail parity.
    RailParity,
    /// At least one pixel is occupied by another cell or a macro.
    Occupied,
    /// Fence-region rule violated.
    Fence,
    /// Edge-spacing rule violated against a horizontal neighbour.
    EdgeSpacing,
}

/// Occupancy grid over the design core at site × row granularity.
///
/// Fixed cells are rasterized as blocked pixels at construction; movable cells
/// occupy pixels only once [`place`](PixelGrid::place)d. A per-row interval
/// index tracks placed cells for the edge-spacing rule, and per-row `u64`
/// bitmaps mirror the occupant array for word-level free-space queries.
#[derive(Debug, Clone)]
pub struct PixelGrid {
    sites_x: i64,
    rows: i64,
    occ: Vec<u32>,
    /// Fence id when a pixel is fully inside that region.
    fence_inside: Vec<u16>,
    /// `true` when a pixel overlaps any fence region at all.
    fence_touched: Vec<bool>,
    /// Per row: `lo.x → (hi.x, cell)` of placed cells, for edge spacing.
    row_cells: Vec<BTreeMap<Dbu, (Dbu, u32)>>,
    /// `u64` words per row in the bitmaps below.
    words_per_row: usize,
    /// Occupancy bitmap (placed cells and blocked pixels); bit = 1 means
    /// occupied. Padding bits beyond `sites_x` are set.
    occ_bits: Vec<u64>,
    /// Blocked-only bitmap (fixed cells / padding); never changes after
    /// construction.
    fixed_bits: Vec<u64>,
    /// Whether the design has fence regions; when `false`, a clean word
    /// test alone proves a window passes occupancy *and* fence rules.
    has_fences: bool,
}

impl PixelGrid {
    /// Builds the grid for `design`, rasterizing fixed cells and fences.
    pub fn new(design: &Design) -> Self {
        let sites_x = design.num_sites_x();
        let rows = design.num_rows();
        let n = (sites_x * rows) as usize;
        let words_per_row = (sites_x.max(0) as usize).div_ceil(64);
        let mut grid = Self {
            sites_x,
            rows,
            occ: vec![FREE; n],
            fence_inside: vec![NO_FENCE; n],
            fence_touched: vec![false; n],
            row_cells: vec![BTreeMap::new(); rows as usize],
            words_per_row,
            occ_bits: Vec::new(),
            fixed_bits: Vec::new(),
            has_fences: !design.regions.is_empty(),
        };
        let rh = design.tech.row_height;
        let sw = design.tech.site_width;
        for id in design.fixed_ids() {
            let r = design.cell(id).rect(rh);
            grid.for_pixels_overlapping(design, &r, |g, idx| g.occ[idx] = BLOCKED);
        }
        for (ri, region) in design.regions.iter().enumerate() {
            for rect in &region.rects {
                grid.for_pixels_overlapping(design, rect, |g, idx| g.fence_touched[idx] = true);
                // Fully-inside pixels: snap the rect inward to pixel
                // boundaries.
                let lo_s = (rect.lo.x - design.core.lo.x).div_euclid(sw)
                    + i64::from((rect.lo.x - design.core.lo.x).rem_euclid(sw) != 0);
                let lo_r = (rect.lo.y - design.core.lo.y).div_euclid(rh)
                    + i64::from((rect.lo.y - design.core.lo.y).rem_euclid(rh) != 0);
                let hi_s = (rect.hi.x - design.core.lo.x).div_euclid(sw);
                let hi_r = (rect.hi.y - design.core.lo.y).div_euclid(rh);
                for row in lo_r.max(0)..hi_r.min(grid.rows) {
                    for site in lo_s.max(0)..hi_s.min(grid.sites_x) {
                        let idx = (row * grid.sites_x + site) as usize;
                        grid.fence_inside[idx] = ri as u16;
                    }
                }
            }
        }
        grid.rebuild_bits();
        grid
    }

    /// Rebuilds both bitmaps from the occupant array (construction only;
    /// `place`/`remove` maintain them incrementally afterwards).
    fn rebuild_bits(&mut self) {
        let wpr = self.words_per_row;
        self.occ_bits = vec![0u64; wpr * self.rows.max(0) as usize];
        self.fixed_bits = vec![0u64; wpr * self.rows.max(0) as usize];
        // Padding bits beyond sites_x read as occupied/blocked so word
        // tests never report free space outside the core.
        if self.sites_x > 0 {
            let tail = self.sites_x as usize % 64;
            if tail != 0 {
                let pad = !0u64 << tail;
                for row in 0..self.rows as usize {
                    self.occ_bits[row * wpr + wpr - 1] |= pad;
                    self.fixed_bits[row * wpr + wpr - 1] |= pad;
                }
            }
        }
        for row in 0..self.rows {
            for site in 0..self.sites_x {
                match self.occ[(row * self.sites_x + site) as usize] {
                    FREE => {}
                    BLOCKED => {
                        let w = row as usize * wpr + site as usize / 64;
                        self.occ_bits[w] |= 1u64 << (site as usize % 64);
                        self.fixed_bits[w] |= 1u64 << (site as usize % 64);
                    }
                    _ => {
                        let w = row as usize * wpr + site as usize / 64;
                        self.occ_bits[w] |= 1u64 << (site as usize % 64);
                    }
                }
            }
        }
    }

    #[inline]
    fn set_occ_bit(&mut self, site: i64, row: i64) {
        let w = row as usize * self.words_per_row + site as usize / 64;
        self.occ_bits[w] |= 1u64 << (site as usize % 64);
    }

    #[inline]
    fn clear_occ_bit(&mut self, site: i64, row: i64) {
        let w = row as usize * self.words_per_row + site as usize / 64;
        self.occ_bits[w] &= !(1u64 << (site as usize % 64));
    }

    fn for_pixels_overlapping(
        &mut self,
        design: &Design,
        r: &Rect,
        mut f: impl FnMut(&mut Self, usize),
    ) {
        let sw = design.tech.site_width;
        let rh = design.tech.row_height;
        let lo_s = (r.lo.x - design.core.lo.x).div_euclid(sw).max(0);
        let hi_s = ((r.hi.x - design.core.lo.x) + sw - 1)
            .div_euclid(sw)
            .min(self.sites_x);
        let lo_r = (r.lo.y - design.core.lo.y).div_euclid(rh).max(0);
        let hi_r = ((r.hi.y - design.core.lo.y) + rh - 1)
            .div_euclid(rh)
            .min(self.rows);
        for row in lo_r..hi_r {
            for site in lo_s..hi_s {
                let idx = (row * self.sites_x + site) as usize;
                f(self, idx);
            }
        }
    }

    /// Number of sites across.
    pub fn sites_x(&self) -> i64 {
        self.sites_x
    }

    /// Number of rows.
    pub fn rows(&self) -> i64 {
        self.rows
    }

    /// Converts a grid position to the dbu lower-left corner.
    pub fn to_dbu(&self, design: &Design, pos: GridPos) -> Point {
        Point::new(
            design.core.lo.x + pos.site * design.tech.site_width,
            design.core.lo.y + pos.row * design.tech.row_height,
        )
    }

    /// Snaps a dbu point to the grid position at or below it.
    pub fn to_grid(&self, design: &Design, p: Point) -> GridPos {
        GridPos {
            site: design.site_of(p.x),
            row: design.row_of(p.y),
        }
    }

    /// Word-level test that `bits` is all-zero over the in-bounds window
    /// `[site, site+w) × [row, row+h)` (u64×4 blocks via
    /// [`window_zero_words`]).
    #[inline]
    fn window_zero(&self, bits: &[u64], site: i64, row: i64, w: i64, h: i64) -> bool {
        window_zero_words(
            bits,
            self.words_per_row,
            row as usize,
            h as usize,
            0,
            site,
            w,
        )
    }

    /// `true` when every pixel of the `w_sites × h_rows` window anchored at
    /// `pos` is unoccupied (no placed cell, no macro). Out-of-bounds
    /// windows are not free.
    pub fn window_free(&self, pos: GridPos, w_sites: i64, h_rows: i64) -> bool {
        if pos.site < 0
            || pos.row < 0
            || w_sites <= 0
            || h_rows <= 0
            || pos.site + w_sites > self.sites_x
            || pos.row + h_rows > self.rows
        {
            return false;
        }
        self.window_zero(&self.occ_bits, pos.site, pos.row, w_sites, h_rows)
    }

    /// `true` when the window anchored at `pos` touches any fixed-cell
    /// (blocked) pixel. Out-of-bounds windows count as blocked.
    pub fn window_has_fixed(&self, pos: GridPos, w_sites: i64, h_rows: i64) -> bool {
        if pos.site < 0
            || pos.row < 0
            || w_sites <= 0
            || h_rows <= 0
            || pos.site + w_sites > self.sites_x
            || pos.row + h_rows > self.rows
        {
            return true;
        }
        !self.window_zero(&self.fixed_bits, pos.site, pos.row, w_sites, h_rows)
    }

    /// Enumerates maximal free spans `[s_lo, s_hi)` of sites within
    /// `[lo, hi)` where all rows `row..row + h_rows` are simultaneously
    /// unoccupied, in ascending site order. `lo`/`hi` are clamped to the
    /// grid; rows must be in bounds.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the row band leaves the grid.
    pub fn for_each_free_span(
        &self,
        row: i64,
        h_rows: i64,
        lo: i64,
        hi: i64,
        f: impl FnMut(i64, i64),
    ) {
        debug_assert!(row >= 0 && h_rows >= 1 && row + h_rows <= self.rows);
        let lo = lo.max(0);
        let hi = hi.min(self.sites_x);
        if lo >= hi {
            return;
        }
        let wpr = self.words_per_row;
        walk_free_spans(
            lo,
            hi,
            band_words(
                &self.occ_bits,
                wpr,
                row as usize,
                h_rows as usize,
                0,
                lo as usize / 64,
                wpr,
            ),
            f,
        );
    }

    /// Per-pixel occupancy + fence loop shared by [`check_place`]
    /// (Self::check_place) (slow path) and
    /// [`check_place_reference`](Self::check_place_reference); preserves the
    /// row-major first-rejection ordering of the original implementation.
    fn pixel_loop(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
        w_sites: i64,
        h_rows: i64,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let me = cell.0;
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                let idx = base + site as usize;
                let occ = self.occ[idx];
                if occ != FREE && occ != me {
                    return Err(PlaceRejection::Occupied);
                }
                match c.region {
                    Some(reg) => {
                        if self.fence_inside[idx] != reg.0 {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                    None => {
                        if self.fence_touched[idx] {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fence-only per-pixel loop, used after a word test already proved the
    /// window unoccupied.
    fn fence_loop(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
        w_sites: i64,
        h_rows: i64,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                let idx = base + site as usize;
                match c.region {
                    Some(reg) => {
                        if self.fence_inside[idx] != reg.0 {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                    None => {
                        if self.fence_touched[idx] {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Edge-spacing check against already placed neighbours on shared rows.
    fn edge_spacing_check(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
        h_rows: i64,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let me = cell.0;
        let sw = design.tech.site_width;
        let x_lo = design.core.lo.x + pos.site * sw;
        let x_hi = x_lo + c.width;
        for row in pos.row..pos.row + h_rows {
            let map = &self.row_cells[row as usize];
            if let Some((_, &(left_hi, left_cell))) = map.range(..x_lo).next_back() {
                if left_cell != me && left_hi <= x_lo {
                    let lc = design.cell(CellId(left_cell));
                    let need = design.tech.edge_spacing(lc.edge_right, c.edge_left);
                    if x_lo - left_hi < need {
                        return Err(PlaceRejection::EdgeSpacing);
                    }
                }
            }
            if let Some((&right_lo, &(_, right_cell))) = map.range(x_lo..).next() {
                if right_cell != me && right_lo >= x_hi {
                    let rc = design.cell(CellId(right_cell));
                    let need = design.tech.edge_spacing(c.edge_right, rc.edge_left);
                    if right_lo - x_hi < need {
                        return Err(PlaceRejection::EdgeSpacing);
                    }
                }
            }
        }
        Ok(())
    }

    /// Full legality check of placing `cell` with its lower-left pixel at
    /// `pos`. `Ok(())` means the position is legal w.r.t. bounds, rail
    /// parity, occupancy, fences, and edge spacing (the max-displacement
    /// constraint is the search's concern, not the grid's).
    ///
    /// Occupancy goes through the word-level bitmaps: a clean window test
    /// skips the per-pixel loop entirely (on fence-free designs the fence
    /// scan too); any set bit falls back to the exact per-pixel reference
    /// walk so rejection ordering matches
    /// [`check_place_reference`](Self::check_place_reference) bit for bit.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceRejection`] encountered, checking cheap
    /// rules first.
    pub fn check_place(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        if pos.site < 0
            || pos.row < 0
            || pos.site + w_sites > self.sites_x
            || pos.row + h_rows > self.rows
        {
            return Err(PlaceRejection::OutOfBounds);
        }
        if c.is_rail_constrained() && !c.rail.allows_row(pos.row) {
            return Err(PlaceRejection::RailParity);
        }
        if self.window_zero(&self.occ_bits, pos.site, pos.row, w_sites, h_rows) {
            debug_assert_eq!(
                self.pixel_loop(design, cell, pos, w_sites, h_rows).err(),
                if self.has_fences {
                    self.fence_loop(design, cell, pos, w_sites, h_rows).err()
                } else {
                    None
                },
                "bitmap fast path disagrees with the per-pixel reference"
            );
            if self.has_fences {
                self.fence_loop(design, cell, pos, w_sites, h_rows)?;
            }
        } else {
            self.pixel_loop(design, cell, pos, w_sites, h_rows)?;
        }
        self.edge_spacing_check(design, cell, pos, h_rows)
    }

    /// The pre-bitmap legality check: identical semantics to
    /// [`check_place`](Self::check_place) via per-pixel scans only. Kept as
    /// the oracle for equivalence tests and as the honest "before" baseline
    /// in the bench harness.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceRejection`] encountered, checking cheap
    /// rules first.
    pub fn check_place_reference(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        if pos.site < 0
            || pos.row < 0
            || pos.site + w_sites > self.sites_x
            || pos.row + h_rows > self.rows
        {
            return Err(PlaceRejection::OutOfBounds);
        }
        if c.is_rail_constrained() && !c.rail.allows_row(pos.row) {
            return Err(PlaceRejection::RailParity);
        }
        self.pixel_loop(design, cell, pos, w_sites, h_rows)?;
        self.edge_spacing_check(design, cell, pos, h_rows)
    }

    /// Marks `cell` as occupying the pixels at `pos`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the position is not
    /// [`check_place`](Self::check_place)-legal; callers must check first.
    pub fn place(&mut self, design: &Design, cell: CellId, pos: GridPos) {
        debug_assert_eq!(self.check_place(design, cell, pos), Ok(()));
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                self.occ[base + site as usize] = cell.0;
                self.set_occ_bit(site, row);
            }
        }
        let x_lo = design.core.lo.x + pos.site * design.tech.site_width;
        for row in pos.row..pos.row + h_rows {
            self.row_cells[row as usize].insert(x_lo, (x_lo + c.width, cell.0));
        }
    }

    /// Clears `cell` from the pixels at `pos` (its current placement).
    pub fn remove(&mut self, design: &Design, cell: CellId, pos: GridPos) {
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                let idx = base + site as usize;
                debug_assert_eq!(self.occ[idx], cell.0, "removing wrong occupant");
                self.occ[idx] = FREE;
                self.clear_occ_bit(site, row);
            }
        }
        let x_lo = design.core.lo.x + pos.site * design.tech.site_width;
        for row in pos.row..pos.row + h_rows {
            self.row_cells[row as usize].remove(&x_lo);
        }
    }

    /// `true` when lifting `cell` (placed at `pos`) cannot expose an
    /// illegal adjacency: on every row the cell spans, the placed cells to
    /// its left and right — which become adjacent once the cell is gone —
    /// still satisfy their mutual edge-spacing requirement.
    ///
    /// [`check_place`](Self::check_place) only validates a mover's *new*
    /// spot against its new neighbours; the adjacency its departure
    /// creates at the old spot is invisible to it. Any caller that
    /// relocates an already-placed cell must hold this before removing
    /// it, or two cells it was legally wedged between end up closer than
    /// their edge types allow.
    pub fn vacate_safe(&self, design: &Design, cell: CellId, pos: GridPos) -> bool {
        let c = design.cell(cell);
        let h_rows = i64::from(c.height_rows);
        let x_lo = design.core.lo.x + pos.site * design.tech.site_width;
        for row in pos.row..pos.row + h_rows {
            let map = &self.row_cells[row as usize];
            debug_assert_eq!(map.get(&x_lo).map(|&(_, id)| id), Some(cell.0));
            if let (Some((_, &(left_hi, left_cell))), Some((&right_lo, &(_, right_cell)))) =
                (map.range(..x_lo).next_back(), map.range(x_lo + 1..).next())
            {
                let lc = design.cell(CellId(left_cell));
                let rc = design.cell(CellId(right_cell));
                let need = design.tech.edge_spacing(lc.edge_right, rc.edge_left);
                if right_lo - left_hi < need {
                    return false;
                }
            }
        }
        true
    }

    /// Occupant of a pixel: `Some(cell)` for a movable cell, `None` when
    /// free or blocked by a macro. Out-of-range pixels read as blocked.
    pub fn occupant(&self, site: i64, row: i64) -> Option<CellId> {
        if site < 0 || row < 0 || site >= self.sites_x || row >= self.rows {
            return None;
        }
        match self.occ[(row * self.sites_x + site) as usize] {
            FREE | BLOCKED => None,
            id => Some(CellId(id)),
        }
    }

    /// `true` when a pixel holds neither a placed cell nor a macro.
    pub fn is_free(&self, site: i64, row: i64) -> bool {
        site >= 0
            && row >= 0
            && site < self.sites_x
            && row < self.rows
            && self.occ[(row * self.sites_x + site) as usize] == FREE
    }

    /// Fraction of pixels that are free (diagnostic).
    pub fn free_ratio(&self) -> f64 {
        let free = self.occ.iter().filter(|&&o| o == FREE).count();
        free as f64 / self.occ.len().max(1) as f64
    }

    /// Snapshots the window `win` into a fresh [`SubGrid`] scratch: only the
    /// window's occupancy words, occupant block, fence block (when the
    /// design has fences), and the row-index entries within the
    /// max-edge-spacing halo are copied — not the whole core.
    ///
    /// Prefer keeping one `SubGrid` per worker and calling
    /// [`SubGrid::load`] to reuse its buffers across windows.
    ///
    /// # Panics
    ///
    /// Panics if `win` is degenerate or leaves the grid.
    pub fn extract_window(&self, design: &Design, win: GridWindow) -> SubGrid {
        let mut sub = SubGrid::new();
        sub.load(self, design, win);
        sub
    }
}

impl GridRead for PixelGrid {
    fn sites_x(&self) -> i64 {
        PixelGrid::sites_x(self)
    }

    fn rows(&self) -> i64 {
        PixelGrid::rows(self)
    }

    fn for_each_free_span(&self, row: i64, h_rows: i64, lo: i64, hi: i64, f: impl FnMut(i64, i64)) {
        PixelGrid::for_each_free_span(self, row, h_rows, lo, hi, f);
    }

    fn check_place(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection> {
        PixelGrid::check_place(self, design, cell, pos)
    }
}

/// A window-scoped scratch snapshot of a [`PixelGrid`]: the occupancy
/// state of one [`GridWindow`] (plus the edge-spacing halo of the row
/// index), answering the same queries as the full grid for any footprint
/// inside the window.
///
/// This is the clone-free substrate of parallel per-Gcell legalization:
/// instead of cloning the whole grid per Gcell, each worker keeps one
/// `SubGrid` and [`load`](Self::load)s it per window, copying `O(window)`
/// bytes and reusing its buffers between Gcells. Queries and placements use
/// **full-grid** coordinates; [`GridRead::sites_x`]/[`GridRead::rows`]
/// report the full grid's dimensions so search-space bounds derived from
/// them match the full grid exactly.
///
/// The snapshot is *exact* for in-window footprints:
///
/// - occupancy words are copied verbatim (word-aligned, so boundary words
///   retain out-of-window neighbour bits, which every query masks off),
/// - the row index copies the entries whose occupied interval ends within
///   [`Technology::max_edge_spacing`](rlleg_design::Technology::max_edge_spacing)
///   of the window; since placed intervals are disjoint, any dropped entry
///   is provably too far away to decide an edge-spacing check for an
///   in-window footprint, so [`check_place`](Self::check_place) returns
///   exactly what the full grid would.
///
/// Probing a footprint that leaves the window is a contract violation
/// (debug assertion).
#[derive(Debug, Clone)]
pub struct SubGrid {
    win: GridWindow,
    /// Full-grid dimensions, reported by the [`GridRead`] impl.
    sites_x: i64,
    rows: i64,
    /// Copied word-column range `[w_lo, w_hi)` of the occupancy bitmap.
    w_lo: usize,
    w_hi: usize,
    /// Window occupancy words, `(hi_row - lo_row) × (w_hi - w_lo)`.
    occ_bits: Vec<u64>,
    /// Window occupant block, row-major, window-local indexing.
    occ: Vec<u32>,
    /// Window fence blocks (empty when the design has no fences).
    fence_inside: Vec<u16>,
    fence_touched: Vec<bool>,
    has_fences: bool,
    /// Per window row: halo-trimmed copy of the edge-spacing row index.
    row_cells: Vec<BTreeMap<Dbu, (Dbu, u32)>>,
}

impl Default for SubGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl SubGrid {
    /// An empty scratch; call [`load`](Self::load) before use.
    pub fn new() -> Self {
        Self {
            win: GridWindow {
                lo_site: 0,
                lo_row: 0,
                hi_site: 0,
                hi_row: 0,
            },
            sites_x: 0,
            rows: 0,
            w_lo: 0,
            w_hi: 0,
            occ_bits: Vec::new(),
            occ: Vec::new(),
            fence_inside: Vec::new(),
            fence_touched: Vec::new(),
            has_fences: false,
            row_cells: Vec::new(),
        }
    }

    /// The window this scratch currently snapshots.
    pub fn window(&self) -> GridWindow {
        self.win
    }

    /// Re-snapshots `win` from `base`, reusing this scratch's buffers
    /// (reset, not reallocated, when capacities suffice).
    ///
    /// # Panics
    ///
    /// Panics if `win` is degenerate or leaves the grid.
    pub fn load(&mut self, base: &PixelGrid, design: &Design, win: GridWindow) {
        assert!(!win.is_degenerate(), "cannot snapshot a degenerate window");
        assert!(
            win.lo_site >= 0
                && win.lo_row >= 0
                && win.hi_site <= base.sites_x
                && win.hi_row <= base.rows,
            "window {win:?} leaves the {}x{} grid",
            base.sites_x,
            base.rows
        );
        self.win = win;
        self.sites_x = base.sites_x;
        self.rows = base.rows;
        self.w_lo = (win.lo_site / 64) as usize;
        self.w_hi = ((win.hi_site - 1) / 64) as usize + 1;
        let ww = (win.hi_site - win.lo_site) as usize;
        self.occ_bits.clear();
        self.occ.clear();
        for row in win.lo_row..win.hi_row {
            let wb = row as usize * base.words_per_row;
            self.occ_bits
                .extend_from_slice(&base.occ_bits[wb + self.w_lo..wb + self.w_hi]);
            let pb = (row * base.sites_x + win.lo_site) as usize;
            self.occ.extend_from_slice(&base.occ[pb..pb + ww]);
        }
        self.has_fences = base.has_fences;
        self.fence_inside.clear();
        self.fence_touched.clear();
        if base.has_fences {
            for row in win.lo_row..win.hi_row {
                let pb = (row * base.sites_x + win.lo_site) as usize;
                self.fence_inside
                    .extend_from_slice(&base.fence_inside[pb..pb + ww]);
                self.fence_touched
                    .extend_from_slice(&base.fence_touched[pb..pb + ww]);
            }
        }
        // Row index: an entry can decide an edge-spacing check for an
        // in-window footprint only if its interval ends after
        // `x_lo - halo`; row intervals are disjoint, so everything to the
        // left of the last such entry is farther still and can be dropped.
        let halo = design.tech.max_edge_spacing();
        let sw = design.tech.site_width;
        let x_lo = design.core.lo.x + win.lo_site * sw;
        let x_hi = design.core.lo.x + win.hi_site * sw;
        let h = (win.hi_row - win.lo_row) as usize;
        for m in &mut self.row_cells {
            m.clear();
        }
        self.row_cells.resize_with(h, BTreeMap::new);
        for (local, row) in (win.lo_row..win.hi_row).enumerate() {
            let map = &mut self.row_cells[local];
            let src = &base.row_cells[row as usize];
            if let Some((&k, &v)) = src.range(..x_lo - halo).next_back() {
                if v.0 > x_lo - halo {
                    map.insert(k, v);
                }
            }
            for (&k, &v) in src.range(x_lo - halo..x_hi + halo) {
                map.insert(k, v);
            }
        }
    }

    /// Words per local row of the copied bitmap block.
    #[inline]
    fn wpr(&self) -> usize {
        self.w_hi - self.w_lo
    }

    /// Window-local pixel index for a full-grid `(site, row)`.
    #[inline]
    fn pix(&self, site: i64, row: i64) -> usize {
        let ww = (self.win.hi_site - self.win.lo_site) as usize;
        (row - self.win.lo_row) as usize * ww + (site - self.win.lo_site) as usize
    }

    /// Word-level test that the in-window footprint is all-free
    /// (mirrors [`PixelGrid::window_zero`] over the copied words, same
    /// u64×4 block path).
    fn window_zero(&self, site: i64, row: i64, w: i64, h: i64) -> bool {
        window_zero_words(
            &self.occ_bits,
            self.wpr(),
            (row - self.win.lo_row) as usize,
            h as usize,
            self.w_lo,
            site,
            w,
        )
    }

    /// Per-pixel occupancy + fence loop (mirrors [`PixelGrid::pixel_loop`]
    /// with window-local indexing; same first-rejection ordering).
    fn pixel_loop(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
        w_sites: i64,
        h_rows: i64,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let me = cell.0;
        for row in pos.row..pos.row + h_rows {
            for site in pos.site..pos.site + w_sites {
                let idx = self.pix(site, row);
                let occ = self.occ[idx];
                if occ != FREE && occ != me {
                    return Err(PlaceRejection::Occupied);
                }
                if self.has_fences {
                    match c.region {
                        Some(reg) => {
                            if self.fence_inside[idx] != reg.0 {
                                return Err(PlaceRejection::Fence);
                            }
                        }
                        None => {
                            if self.fence_touched[idx] {
                                return Err(PlaceRejection::Fence);
                            }
                        }
                    }
                } else if c.region.is_some() {
                    // No fences rasterized: a fenced cell can never sit
                    // "inside" its region (matches NO_FENCE semantics).
                    return Err(PlaceRejection::Fence);
                }
            }
        }
        Ok(())
    }

    /// Fence-only per-pixel loop after a clean word test (mirrors
    /// [`PixelGrid::fence_loop`]).
    fn fence_loop(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
        w_sites: i64,
        h_rows: i64,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        for row in pos.row..pos.row + h_rows {
            for site in pos.site..pos.site + w_sites {
                let idx = self.pix(site, row);
                match c.region {
                    Some(reg) => {
                        if self.fence_inside[idx] != reg.0 {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                    None => {
                        if self.fence_touched[idx] {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Edge-spacing check against the halo-trimmed row index (mirrors
    /// [`PixelGrid::edge_spacing_check`]).
    fn edge_spacing_check(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
        h_rows: i64,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let me = cell.0;
        let sw = design.tech.site_width;
        let x_lo = design.core.lo.x + pos.site * sw;
        let x_hi = x_lo + c.width;
        for row in pos.row..pos.row + h_rows {
            let map = &self.row_cells[(row - self.win.lo_row) as usize];
            if let Some((_, &(left_hi, left_cell))) = map.range(..x_lo).next_back() {
                if left_cell != me && left_hi <= x_lo {
                    let lc = design.cell(CellId(left_cell));
                    let need = design.tech.edge_spacing(lc.edge_right, c.edge_left);
                    if x_lo - left_hi < need {
                        return Err(PlaceRejection::EdgeSpacing);
                    }
                }
            }
            if let Some((&right_lo, &(_, right_cell))) = map.range(x_lo..).next() {
                if right_cell != me && right_lo >= x_hi {
                    let rc = design.cell(CellId(right_cell));
                    let need = design.tech.edge_spacing(c.edge_right, rc.edge_left);
                    if right_lo - x_hi < need {
                        return Err(PlaceRejection::EdgeSpacing);
                    }
                }
            }
        }
        Ok(())
    }

    /// Full legality check of placing `cell` at `pos`, identical to
    /// [`PixelGrid::check_place`] for any footprint inside the window.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceRejection`] encountered, checking cheap
    /// rules first.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the in-bounds footprint leaves the
    /// snapshot window.
    pub fn check_place(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        if pos.site < 0
            || pos.row < 0
            || pos.site + w_sites > self.sites_x
            || pos.row + h_rows > self.rows
        {
            return Err(PlaceRejection::OutOfBounds);
        }
        debug_assert!(
            self.win.contains_footprint(pos, w_sites, h_rows),
            "SubGrid probed outside its window: {pos:?} {w_sites}x{h_rows} vs {:?}",
            self.win
        );
        if c.is_rail_constrained() && !c.rail.allows_row(pos.row) {
            return Err(PlaceRejection::RailParity);
        }
        if self.window_zero(pos.site, pos.row, w_sites, h_rows) {
            if self.has_fences {
                self.fence_loop(design, cell, pos, w_sites, h_rows)?;
            }
        } else {
            self.pixel_loop(design, cell, pos, w_sites, h_rows)?;
        }
        self.edge_spacing_check(design, cell, pos, h_rows)
    }

    /// Marks `cell` as occupying the pixels at `pos` within the snapshot.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the position is not
    /// [`check_place`](Self::check_place)-legal.
    pub fn place(&mut self, design: &Design, cell: CellId, pos: GridPos) {
        debug_assert_eq!(self.check_place(design, cell, pos), Ok(()));
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        let wpr = self.wpr();
        for row in pos.row..pos.row + h_rows {
            let wb = (row - self.win.lo_row) as usize * wpr;
            for site in pos.site..pos.site + w_sites {
                let idx = self.pix(site, row);
                self.occ[idx] = cell.0;
                self.occ_bits[wb + (site as usize / 64 - self.w_lo)] |=
                    1u64 << (site as usize % 64);
            }
        }
        let x_lo = design.core.lo.x + pos.site * design.tech.site_width;
        for row in pos.row..pos.row + h_rows {
            self.row_cells[(row - self.win.lo_row) as usize].insert(x_lo, (x_lo + c.width, cell.0));
        }
    }
}

impl GridRead for SubGrid {
    fn sites_x(&self) -> i64 {
        self.sites_x
    }

    fn rows(&self) -> i64 {
        self.rows
    }

    fn for_each_free_span(&self, row: i64, h_rows: i64, lo: i64, hi: i64, f: impl FnMut(i64, i64)) {
        debug_assert!(row >= self.win.lo_row && h_rows >= 1 && row + h_rows <= self.win.hi_row);
        let lo = lo.max(0);
        let hi = hi.min(self.sites_x);
        if lo >= hi {
            return;
        }
        debug_assert!(
            lo >= self.win.lo_site && hi <= self.win.hi_site,
            "span range [{lo},{hi}) leaves window {:?}",
            self.win
        );
        walk_free_spans(
            lo,
            hi,
            band_words(
                &self.occ_bits,
                self.wpr(),
                (row - self.win.lo_row) as usize,
                h_rows as usize,
                self.w_lo,
                lo as usize / 64,
                self.w_hi,
            ),
            f,
        );
    }

    fn check_place(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection> {
        SubGrid::check_place(self, design, cell, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, EdgeType, RailParity, Technology};

    fn builder() -> DesignBuilder {
        DesignBuilder::new("px", Technology::contest(), 20, 6)
    }

    #[test]
    fn fixed_cells_block_pixels() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        b.add_fixed_cell("m", 3, 2, Point::new(1_000, 2_000));
        let d = b.build();
        let g = PixelGrid::new(&d);
        assert!(g.is_free(0, 0));
        assert!(!g.is_free(5, 1), "macro pixel blocked");
        assert!(!g.is_free(7, 2), "macro spans rows 1..3");
        assert_eq!(g.occupant(5, 1), None, "macros are anonymous blockers");
        assert_eq!(
            g.check_place(&d, a, GridPos { site: 5, row: 1 }),
            Err(PlaceRejection::Occupied)
        );
    }

    #[test]
    fn bounds_and_parity() {
        let mut b = builder();
        let odd = b.add_cell("odd", 2, 1, Point::new(0, 0));
        let even = b.add_cell("even", 2, 2, Point::new(0, 0));
        b.set_rail(even, RailParity::Even);
        let d = b.build();
        let g = PixelGrid::new(&d);
        assert_eq!(
            g.check_place(&d, odd, GridPos { site: 19, row: 0 }),
            Err(PlaceRejection::OutOfBounds)
        );
        assert_eq!(
            g.check_place(&d, even, GridPos { site: 0, row: 5 }),
            Err(PlaceRejection::OutOfBounds),
            "2-row cell on last row"
        );
        assert_eq!(
            g.check_place(&d, even, GridPos { site: 0, row: 1 }),
            Err(PlaceRejection::RailParity)
        );
        assert_eq!(g.check_place(&d, even, GridPos { site: 0, row: 2 }), Ok(()));
        assert_eq!(g.check_place(&d, odd, GridPos { site: 0, row: 3 }), Ok(()));
    }

    #[test]
    fn place_remove_cycle() {
        let mut b = builder();
        let a = b.add_cell("a", 3, 2, Point::new(0, 0));
        let c = b.add_cell("c", 1, 1, Point::new(0, 0));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        let p = GridPos { site: 4, row: 2 };
        g.place(&d, a, p);
        assert_eq!(g.occupant(4, 2), Some(a));
        assert_eq!(g.occupant(6, 3), Some(a));
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 5, row: 3 }),
            Err(PlaceRejection::Occupied)
        );
        g.remove(&d, a, p);
        assert!(g.is_free(4, 2));
        assert_eq!(g.check_place(&d, c, GridPos { site: 5, row: 3 }), Ok(()));
    }

    #[test]
    fn edge_spacing_between_placed_cells() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        b.set_edges(a, EdgeType(2), EdgeType(2));
        b.set_edges(c, EdgeType(2), EdgeType(2));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 4, row: 0 });
        // Adjacent: gap 0 < 2 sites.
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 6, row: 0 }),
            Err(PlaceRejection::EdgeSpacing)
        );
        // Gap of one site still violates (needs 2).
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 7, row: 0 }),
            Err(PlaceRejection::EdgeSpacing)
        );
        // Two sites: legal.
        assert_eq!(g.check_place(&d, c, GridPos { site: 8, row: 0 }), Ok(()));
        // Left neighbour side as well.
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 1, row: 0 }),
            Err(PlaceRejection::EdgeSpacing)
        );
        // Exactly two sites of gap on the left: legal.
        assert_eq!(g.check_place(&d, c, GridPos { site: 0, row: 0 }), Ok(()));
        // Different row: no constraint.
        assert_eq!(g.check_place(&d, c, GridPos { site: 6, row: 1 }), Ok(()));
    }

    #[test]
    fn vacate_safe_sees_the_adjacency_a_removal_would_create() {
        // a |x| b packed tight: x's default edges need no gap on either
        // side, but a and b (type-2 edges, 2-site mutual spacing) rely on
        // x's body to stay apart. Lifting x must be flagged as unsafe.
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let x = b.add_cell("x", 1, 1, Point::new(0, 0));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        b.set_edges(a, EdgeType(2), EdgeType(2));
        b.set_edges(c, EdgeType(2), EdgeType(2));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 0, row: 0 });
        g.place(&d, x, GridPos { site: 2, row: 0 });
        g.place(&d, c, GridPos { site: 3, row: 0 });
        assert!(!g.vacate_safe(&d, x, GridPos { site: 2, row: 0 }));
        // Edge cells have a neighbour on one side only: always safe.
        assert!(g.vacate_safe(&d, a, GridPos { site: 0, row: 0 }));
        assert!(g.vacate_safe(&d, c, GridPos { site: 3, row: 0 }));
        // With c one site further right the exposed gap is exactly the
        // required two sites: lifting x becomes safe.
        g.remove(&d, c, GridPos { site: 3, row: 0 });
        g.place(&d, c, GridPos { site: 4, row: 0 });
        assert!(g.vacate_safe(&d, x, GridPos { site: 2, row: 0 }));
    }

    #[test]
    fn fences_gate_both_directions() {
        let mut b = builder();
        let inside = b.add_cell("in", 2, 1, Point::new(0, 0));
        let outside = b.add_cell("out", 2, 1, Point::new(0, 0));
        let r = b.add_region("f", vec![Rect::new(800, 0, 2_000, 4_000)]);
        b.assign_region(inside, r);
        let d = b.build();
        let g = PixelGrid::new(&d);
        // Fenced cell fully inside: ok (sites 4..10 in rows 0,1).
        assert_eq!(
            g.check_place(&d, inside, GridPos { site: 4, row: 0 }),
            Ok(())
        );
        // Fenced cell straddling the boundary: rejected.
        assert_eq!(
            g.check_place(&d, inside, GridPos { site: 3, row: 0 }),
            Err(PlaceRejection::Fence)
        );
        // Unfenced cell inside the region: rejected.
        assert_eq!(
            g.check_place(&d, outside, GridPos { site: 5, row: 0 }),
            Err(PlaceRejection::Fence)
        );
        // Unfenced cell clear of the region: ok.
        assert_eq!(
            g.check_place(&d, outside, GridPos { site: 10, row: 0 }),
            Ok(())
        );
    }

    #[test]
    fn grid_dbu_round_trip() {
        let mut b = builder();
        b.add_cell("a", 1, 1, Point::new(0, 0));
        let d = b.build();
        let g = PixelGrid::new(&d);
        let pos = GridPos { site: 7, row: 3 };
        let p = g.to_dbu(&d, pos);
        assert_eq!(p, Point::new(1_400, 6_000));
        assert_eq!(g.to_grid(&d, p), pos);
        assert_eq!(
            g.to_grid(&d, Point::new(1_399, 5_999)),
            GridPos { site: 6, row: 2 }
        );
    }

    #[test]
    fn free_ratio() {
        let mut b = builder();
        b.add_fixed_cell("m", 10, 3, Point::new(0, 0));
        let d = b.build();
        let g = PixelGrid::new(&d);
        let expect = 1.0 - 30.0 / 120.0;
        assert!((g.free_ratio() - expect).abs() < 1e-9);
    }

    #[test]
    fn window_free_matches_per_pixel() {
        let mut b = builder();
        let a = b.add_cell("a", 3, 2, Point::new(0, 0));
        b.add_fixed_cell("m", 2, 1, Point::new(2_000, 6_000));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 7, row: 2 });
        for row in -1..=g.rows() {
            for site in -1..=g.sites_x() {
                for (w, h) in [(1, 1), (3, 2), (5, 1)] {
                    let pos = GridPos { site, row };
                    let expect = site >= 0
                        && row >= 0
                        && site + w <= g.sites_x()
                        && row + h <= g.rows()
                        && (row..row + h).all(|r| (site..site + w).all(|s| g.is_free(s, r)));
                    assert_eq!(
                        g.window_free(pos, w, h),
                        expect,
                        "window {w}x{h} at ({site},{row})"
                    );
                }
            }
        }
    }

    #[test]
    fn window_has_fixed_sees_only_macros() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        b.add_fixed_cell("m", 2, 1, Point::new(2_000, 6_000));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 0, row: 0 });
        // Movable cell pixels are not "fixed".
        assert!(!g.window_has_fixed(GridPos { site: 0, row: 0 }, 2, 1));
        // Macro at sites 10..12, row 3.
        assert!(g.window_has_fixed(GridPos { site: 9, row: 3 }, 3, 1));
        assert!(!g.window_has_fixed(GridPos { site: 12, row: 3 }, 3, 1));
        // Out of bounds counts as blocked.
        assert!(g.window_has_fixed(GridPos { site: 19, row: 0 }, 2, 1));
    }

    #[test]
    fn free_spans_enumerate_gaps() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("c", 3, 2, Point::new(0, 0));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 4, row: 2 });
        g.place(&d, c, GridPos { site: 10, row: 2 });
        let mut spans = Vec::new();
        g.for_each_free_span(2, 1, 0, g.sites_x(), |lo, hi| spans.push((lo, hi)));
        assert_eq!(spans, vec![(0, 4), (6, 10), (13, 20)]);
        // Two-row band: only pixels free in both rows count; `a` occupies
        // row 2 only, `c` occupies rows 2..4.
        let mut band = Vec::new();
        g.for_each_free_span(2, 2, 0, g.sites_x(), |lo, hi| band.push((lo, hi)));
        assert_eq!(band, vec![(0, 4), (6, 10), (13, 20)]);
        // Sub-range clips the spans.
        let mut clipped = Vec::new();
        g.for_each_free_span(2, 1, 5, 12, |lo, hi| clipped.push((lo, hi)));
        assert_eq!(clipped, vec![(6, 10)]);
        // Fully occupied range yields nothing.
        let mut none = Vec::new();
        g.for_each_free_span(2, 1, 4, 6, |lo, hi| none.push((lo, hi)));
        assert!(none.is_empty());
    }

    #[test]
    fn free_spans_cross_word_boundaries() {
        // 100-site core exercises spans spanning the 64-bit word boundary.
        let mut b = DesignBuilder::new("wide", Technology::contest(), 100, 2);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 63, row: 0 });
        let mut spans = Vec::new();
        g.for_each_free_span(0, 1, 0, g.sites_x(), |lo, hi| spans.push((lo, hi)));
        assert_eq!(spans, vec![(0, 63), (64, 100)]);
        // Padding bits beyond site 100 must read occupied.
        assert!(!g.window_free(GridPos { site: 99, row: 0 }, 2, 1));
        assert!(g.window_free(GridPos { site: 99, row: 0 }, 1, 1));
    }

    #[test]
    fn grid_window_footprint_containment() {
        let mut b = builder();
        b.add_cell("a", 1, 1, Point::new(0, 0));
        let d = b.build();
        let g = PixelGrid::new(&d);
        let full = GridWindow::full(&g);
        assert!(!full.is_degenerate());
        assert!(full.contains_footprint(GridPos { site: 0, row: 0 }, 20, 6));
        let w = GridWindow {
            lo_site: 4,
            lo_row: 1,
            hi_site: 10,
            hi_row: 4,
        };
        assert!(w.contains_footprint(GridPos { site: 4, row: 1 }, 6, 3));
        assert!(!w.contains_footprint(GridPos { site: 4, row: 1 }, 7, 3));
        assert!(!w.contains_footprint(GridPos { site: 3, row: 1 }, 2, 1));
        assert!(GridWindow {
            lo_site: 5,
            lo_row: 2,
            hi_site: 5,
            hi_row: 3,
        }
        .is_degenerate());
    }

    #[test]
    fn check_place_agrees_with_reference() {
        let mut b = builder();
        let a = b.add_cell("a", 3, 2, Point::new(0, 0));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        let fenced = b.add_cell("f", 1, 1, Point::new(0, 0));
        b.set_edges(a, EdgeType(2), EdgeType(1));
        b.set_edges(c, EdgeType(1), EdgeType(2));
        let r = b.add_region("reg", vec![Rect::new(2_800, 8_000, 4_000, 12_000)]);
        b.assign_region(fenced, r);
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 6, row: 2 });
        for id in [a, c, fenced] {
            for row in -1..=g.rows() {
                for site in -1..=g.sites_x() {
                    let pos = GridPos { site, row };
                    assert_eq!(
                        g.check_place(&d, id, pos),
                        g.check_place_reference(&d, id, pos),
                        "cell {id} at ({site},{row})"
                    );
                }
            }
        }
    }

    #[test]
    fn subgrid_check_place_matches_full_grid_inside_the_window() {
        // Mixed occupancy, fences, edge spacing, and a window whose left
        // edge cuts through the middle of a word: every in-window probe
        // must answer exactly as the full grid.
        let mut b = builder();
        let a = b.add_cell("a", 3, 2, Point::new(0, 0));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        let fenced = b.add_cell("f", 1, 1, Point::new(0, 0));
        b.set_edges(a, EdgeType(2), EdgeType(1));
        b.set_edges(c, EdgeType(1), EdgeType(2));
        let r = b.add_region("reg", vec![Rect::new(2_800, 8_000, 4_000, 12_000)]);
        b.assign_region(fenced, r);
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 6, row: 2 });
        g.place(&d, c, GridPos { site: 11, row: 4 });
        let win = GridWindow {
            lo_site: 5,
            lo_row: 1,
            hi_site: 15,
            hi_row: 6,
        };
        let sub = g.extract_window(&d, win);
        assert_eq!(sub.window(), win);
        assert_eq!((sub.sites_x(), sub.rows()), (g.sites_x(), g.rows()));
        for id in [a, c, fenced] {
            let cell = d.cell(id);
            let w_sites = cell.width / d.tech.site_width;
            let h_rows = i64::from(cell.height_rows);
            for row in win.lo_row..win.hi_row - h_rows + 1 {
                for site in win.lo_site..win.hi_site - w_sites + 1 {
                    let pos = GridPos { site, row };
                    assert_eq!(
                        sub.check_place(&d, id, pos),
                        g.check_place(&d, id, pos),
                        "cell {id} at ({site},{row})"
                    );
                }
            }
        }
    }

    #[test]
    fn subgrid_place_blocks_subsequent_probes() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        let d = b.build();
        let g = PixelGrid::new(&d);
        let win = GridWindow {
            lo_site: 2,
            lo_row: 0,
            hi_site: 12,
            hi_row: 4,
        };
        let mut sub = g.extract_window(&d, win);
        let p = GridPos { site: 4, row: 1 };
        assert_eq!(sub.check_place(&d, a, p), Ok(()));
        sub.place(&d, a, p);
        assert_eq!(
            sub.check_place(&d, c, p),
            Err(PlaceRejection::Occupied),
            "a placement must be visible to later solves in the same window"
        );
        assert_eq!(
            sub.check_place(&d, c, GridPos { site: 6, row: 1 }),
            Ok(()),
            "the next free site still accepts"
        );
        // Reloading resets the scratch to the base grid's state.
        sub.load(&g, &d, win);
        assert_eq!(sub.check_place(&d, c, p), Ok(()));
    }

    /// A 300-site, 4-row die with occupancy scattered across word
    /// boundaries: 4.69 words per row exercises the u64×4 block path, the
    /// scalar word tail, and the padded final word at once.
    fn wide_grid() -> (rlleg_design::Design, PixelGrid) {
        let mut b = DesignBuilder::new("wide4", Technology::contest(), 300, 4);
        let sites: [i64; 14] = [0, 5, 62, 63, 65, 90, 126, 128, 140, 200, 255, 256, 270, 296];
        let mut ids = Vec::new();
        for (i, _) in sites.iter().enumerate() {
            ids.push(b.add_cell(
                format!("u{i}"),
                1 + (i as i64 % 3),
                1 + (i as u8 % 2),
                Point::ORIGIN,
            ));
        }
        b.add_fixed_cell("m", 4, 1, Point::new(180 * 200, 3 * 2_000));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        for (i, (&s, &id)) in sites.iter().zip(&ids).enumerate() {
            let pos = GridPos {
                site: s,
                row: i as i64 % 3,
            };
            if g.check_place(&d, id, pos).is_ok() {
                g.place(&d, id, pos);
            }
        }
        (d, g)
    }

    #[test]
    fn block_window_free_matches_per_pixel_on_wide_grids() {
        let (_d, g) = wide_grid();
        for (w, h) in [(1i64, 1i64), (7, 2), (70, 1), (130, 3), (300, 4)] {
            for row in 0..=g.rows() - h {
                for site in 0..=g.sites_x() - w {
                    let pos = GridPos { site, row };
                    let expect = (row..row + h).all(|r| (site..site + w).all(|s| g.is_free(s, r)));
                    assert_eq!(
                        g.window_free(pos, w, h),
                        expect,
                        "window {w}x{h} at {pos:?}"
                    );
                }
            }
        }
        // Fixed-bitmap path: the macro at sites 180..184 of row 3.
        assert!(g.window_has_fixed(GridPos { site: 100, row: 3 }, 90, 1));
        assert!(!g.window_has_fixed(GridPos { site: 100, row: 3 }, 80, 1));
        assert!(g.window_has_fixed(GridPos { site: 0, row: 0 }, 300, 4));
    }

    #[test]
    fn block_free_spans_match_per_pixel_on_wide_grids() {
        let (_d, g) = wide_grid();
        let reference = |row: i64, h: i64, lo: i64, hi: i64| {
            let (lo, hi) = (lo.max(0), hi.min(g.sites_x()));
            let mut out = Vec::new();
            let mut open = -1i64;
            for s in lo..hi {
                let free = (row..row + h).all(|r| g.is_free(s, r));
                if free && open < 0 {
                    open = s;
                } else if !free && open >= 0 {
                    out.push((open, s));
                    open = -1;
                }
            }
            if open >= 0 {
                out.push((open, hi));
            }
            out
        };
        for h in 1..=3i64 {
            for row in 0..=g.rows() - h {
                // Ranges chosen to start/end mid-word, on word boundaries,
                // inside the same block, and across the block seam.
                for (lo, hi) in [
                    (0, 300),
                    (1, 299),
                    (63, 65),
                    (60, 130),
                    (64, 256),
                    (128, 192),
                    (200, 300),
                    (5, 62),
                ] {
                    let mut got = Vec::new();
                    g.for_each_free_span(row, h, lo, hi, |a, b| got.push((a, b)));
                    assert_eq!(got, reference(row, h, lo, hi), "band {row}+{h} [{lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn subgrid_block_scans_match_full_grid_on_wide_windows() {
        let (d, g) = wide_grid();
        // Windows cutting mid-word on both edges, wide enough to hold
        // full u64×4 blocks, plus a narrow one that never fills a block.
        for win in [
            GridWindow {
                lo_site: 33,
                lo_row: 0,
                hi_site: 290,
                hi_row: 4,
            },
            GridWindow {
                lo_site: 70,
                lo_row: 1,
                hi_site: 258,
                hi_row: 4,
            },
            GridWindow {
                lo_site: 120,
                lo_row: 0,
                hi_site: 150,
                hi_row: 3,
            },
        ] {
            let sub = g.extract_window(&d, win);
            for h in 1..=2i64 {
                for row in win.lo_row..=win.hi_row - h {
                    let mut got = Vec::new();
                    sub.for_each_free_span(row, h, win.lo_site, win.hi_site, |a, b| {
                        got.push((a, b))
                    });
                    let mut want = Vec::new();
                    g.for_each_free_span(row, h, win.lo_site, win.hi_site, |a, b| {
                        want.push((a, b))
                    });
                    assert_eq!(got, want, "win {win:?} band {row}+{h}");
                }
            }
            for id in d.movable_ids() {
                let c = d.cell(id);
                let (w, h) = (c.width / d.tech.site_width, i64::from(c.height_rows));
                for row in win.lo_row..=win.hi_row - h {
                    for site in win.lo_site..=win.hi_site - w {
                        let pos = GridPos { site, row };
                        assert_eq!(
                            sub.check_place(&d, id, pos),
                            g.check_place(&d, id, pos),
                            "cell {id} at {pos:?} in {win:?}"
                        );
                    }
                }
            }
        }
    }
}
