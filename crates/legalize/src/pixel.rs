//! The pixel grid: per-site/per-row occupancy, fence maps, and the
//! edge-spacing row index.
//!
//! The pixel-wise search algorithm (Sec. II-B) "divides the entire design
//! into pixels of minimum width and height, i.e., in the unit of placement
//! site and spacing of power rails". [`PixelGrid`] is that division plus
//! everything needed to answer "can this cell go here?" in `O(cell pixels)`.

use std::collections::BTreeMap;

use rlleg_design::{CellId, Design};
use rlleg_geom::{Dbu, Point, Rect};

/// Sentinel for an unoccupied pixel.
const FREE: u32 = u32::MAX;
/// Sentinel occupant for fixed-cell / blocked pixels.
pub(crate) const BLOCKED: u32 = u32::MAX - 1;
/// Sentinel for "no fence".
const NO_FENCE: u16 = u16::MAX;

/// A legal-position candidate in grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridPos {
    /// Site index (x).
    pub site: i64,
    /// Row index (y).
    pub row: i64,
}

/// Why a candidate position is not legal. Returned by
/// [`PixelGrid::check_place`] so search heuristics can distinguish hard
/// failures from merely occupied pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceRejection {
    /// Cell would extend beyond the core.
    OutOfBounds,
    /// Even-height cell on the wrong rail parity.
    RailParity,
    /// At least one pixel is occupied by another cell or a macro.
    Occupied,
    /// Fence-region rule violated.
    Fence,
    /// Edge-spacing rule violated against a horizontal neighbour.
    EdgeSpacing,
}

/// Occupancy grid over the design core at site × row granularity.
///
/// Fixed cells are rasterized as blocked pixels at construction; movable cells
/// occupy pixels only once [`place`](PixelGrid::place)d. A per-row interval
/// index tracks placed cells for the edge-spacing rule.
#[derive(Debug, Clone)]
pub struct PixelGrid {
    sites_x: i64,
    rows: i64,
    occ: Vec<u32>,
    /// Fence id when a pixel is fully inside that region.
    fence_inside: Vec<u16>,
    /// `true` when a pixel overlaps any fence region at all.
    fence_touched: Vec<bool>,
    /// Per row: `lo.x → (hi.x, cell)` of placed cells, for edge spacing.
    row_cells: Vec<BTreeMap<Dbu, (Dbu, u32)>>,
}

impl PixelGrid {
    /// Builds the grid for `design`, rasterizing fixed cells and fences.
    pub fn new(design: &Design) -> Self {
        let sites_x = design.num_sites_x();
        let rows = design.num_rows();
        let n = (sites_x * rows) as usize;
        let mut grid = Self {
            sites_x,
            rows,
            occ: vec![FREE; n],
            fence_inside: vec![NO_FENCE; n],
            fence_touched: vec![false; n],
            row_cells: vec![BTreeMap::new(); rows as usize],
        };
        let rh = design.tech.row_height;
        let sw = design.tech.site_width;
        for id in design.fixed_ids() {
            let r = design.cell(id).rect(rh);
            grid.for_pixels_overlapping(design, &r, |g, idx| g.occ[idx] = BLOCKED);
        }
        for (ri, region) in design.regions.iter().enumerate() {
            for rect in &region.rects {
                grid.for_pixels_overlapping(design, rect, |g, idx| g.fence_touched[idx] = true);
                // Fully-inside pixels: snap the rect inward to pixel
                // boundaries.
                let lo_s = (rect.lo.x - design.core.lo.x).div_euclid(sw)
                    + i64::from((rect.lo.x - design.core.lo.x).rem_euclid(sw) != 0);
                let lo_r = (rect.lo.y - design.core.lo.y).div_euclid(rh)
                    + i64::from((rect.lo.y - design.core.lo.y).rem_euclid(rh) != 0);
                let hi_s = (rect.hi.x - design.core.lo.x).div_euclid(sw);
                let hi_r = (rect.hi.y - design.core.lo.y).div_euclid(rh);
                for row in lo_r.max(0)..hi_r.min(grid.rows) {
                    for site in lo_s.max(0)..hi_s.min(grid.sites_x) {
                        let idx = (row * grid.sites_x + site) as usize;
                        grid.fence_inside[idx] = ri as u16;
                    }
                }
            }
        }
        grid
    }

    fn for_pixels_overlapping(
        &mut self,
        design: &Design,
        r: &Rect,
        mut f: impl FnMut(&mut Self, usize),
    ) {
        let sw = design.tech.site_width;
        let rh = design.tech.row_height;
        let lo_s = (r.lo.x - design.core.lo.x).div_euclid(sw).max(0);
        let hi_s = ((r.hi.x - design.core.lo.x) + sw - 1)
            .div_euclid(sw)
            .min(self.sites_x);
        let lo_r = (r.lo.y - design.core.lo.y).div_euclid(rh).max(0);
        let hi_r = ((r.hi.y - design.core.lo.y) + rh - 1)
            .div_euclid(rh)
            .min(self.rows);
        for row in lo_r..hi_r {
            for site in lo_s..hi_s {
                let idx = (row * self.sites_x + site) as usize;
                f(self, idx);
            }
        }
    }

    /// Number of sites across.
    pub fn sites_x(&self) -> i64 {
        self.sites_x
    }

    /// Number of rows.
    pub fn rows(&self) -> i64 {
        self.rows
    }

    /// Converts a grid position to the dbu lower-left corner.
    pub fn to_dbu(&self, design: &Design, pos: GridPos) -> Point {
        Point::new(
            design.core.lo.x + pos.site * design.tech.site_width,
            design.core.lo.y + pos.row * design.tech.row_height,
        )
    }

    /// Snaps a dbu point to the grid position at or below it.
    pub fn to_grid(&self, design: &Design, p: Point) -> GridPos {
        GridPos {
            site: design.site_of(p.x),
            row: design.row_of(p.y),
        }
    }

    /// Full legality check of placing `cell` with its lower-left pixel at
    /// `pos`. `Ok(())` means the position is legal w.r.t. bounds, rail
    /// parity, occupancy, fences, and edge spacing (the max-displacement
    /// constraint is the search's concern, not the grid's).
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceRejection`] encountered, checking cheap
    /// rules first.
    pub fn check_place(
        &self,
        design: &Design,
        cell: CellId,
        pos: GridPos,
    ) -> Result<(), PlaceRejection> {
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        if pos.site < 0
            || pos.row < 0
            || pos.site + w_sites > self.sites_x
            || pos.row + h_rows > self.rows
        {
            return Err(PlaceRejection::OutOfBounds);
        }
        if c.is_rail_constrained() && !c.rail.allows_row(pos.row) {
            return Err(PlaceRejection::RailParity);
        }
        let me = cell.0;
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                let idx = base + site as usize;
                let occ = self.occ[idx];
                if occ != FREE && occ != me {
                    return Err(PlaceRejection::Occupied);
                }
                match c.region {
                    Some(reg) => {
                        if self.fence_inside[idx] != reg.0 {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                    None => {
                        if self.fence_touched[idx] {
                            return Err(PlaceRejection::Fence);
                        }
                    }
                }
            }
        }
        // Edge spacing against already placed neighbours on shared rows.
        let sw = design.tech.site_width;
        let x_lo = design.core.lo.x + pos.site * sw;
        let x_hi = x_lo + c.width;
        for row in pos.row..pos.row + h_rows {
            let map = &self.row_cells[row as usize];
            if let Some((_, &(left_hi, left_cell))) = map.range(..x_lo).next_back() {
                if left_cell != me && left_hi <= x_lo {
                    let lc = design.cell(CellId(left_cell));
                    let need = design.tech.edge_spacing(lc.edge_right, c.edge_left);
                    if x_lo - left_hi < need {
                        return Err(PlaceRejection::EdgeSpacing);
                    }
                }
            }
            if let Some((&right_lo, &(_, right_cell))) = map.range(x_lo..).next() {
                if right_cell != me && right_lo >= x_hi {
                    let rc = design.cell(CellId(right_cell));
                    let need = design.tech.edge_spacing(c.edge_right, rc.edge_left);
                    if right_lo - x_hi < need {
                        return Err(PlaceRejection::EdgeSpacing);
                    }
                }
            }
        }
        Ok(())
    }

    /// Marks `cell` as occupying the pixels at `pos`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the position is not
    /// [`check_place`](Self::check_place)-legal; callers must check first.
    pub fn place(&mut self, design: &Design, cell: CellId, pos: GridPos) {
        debug_assert_eq!(self.check_place(design, cell, pos), Ok(()));
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                self.occ[base + site as usize] = cell.0;
            }
        }
        let x_lo = design.core.lo.x + pos.site * design.tech.site_width;
        for row in pos.row..pos.row + h_rows {
            self.row_cells[row as usize].insert(x_lo, (x_lo + c.width, cell.0));
        }
    }

    /// Clears `cell` from the pixels at `pos` (its current placement).
    pub fn remove(&mut self, design: &Design, cell: CellId, pos: GridPos) {
        let c = design.cell(cell);
        let w_sites = c.width / design.tech.site_width;
        let h_rows = i64::from(c.height_rows);
        for row in pos.row..pos.row + h_rows {
            let base = (row * self.sites_x) as usize;
            for site in pos.site..pos.site + w_sites {
                let idx = base + site as usize;
                debug_assert_eq!(self.occ[idx], cell.0, "removing wrong occupant");
                self.occ[idx] = FREE;
            }
        }
        let x_lo = design.core.lo.x + pos.site * design.tech.site_width;
        for row in pos.row..pos.row + h_rows {
            self.row_cells[row as usize].remove(&x_lo);
        }
    }

    /// Occupant of a pixel: `Some(cell)` for a movable cell, `None` when
    /// free or blocked by a macro. Out-of-range pixels read as blocked.
    pub fn occupant(&self, site: i64, row: i64) -> Option<CellId> {
        if site < 0 || row < 0 || site >= self.sites_x || row >= self.rows {
            return None;
        }
        match self.occ[(row * self.sites_x + site) as usize] {
            FREE | BLOCKED => None,
            id => Some(CellId(id)),
        }
    }

    /// `true` when a pixel holds neither a placed cell nor a macro.
    pub fn is_free(&self, site: i64, row: i64) -> bool {
        site >= 0
            && row >= 0
            && site < self.sites_x
            && row < self.rows
            && self.occ[(row * self.sites_x + site) as usize] == FREE
    }

    /// Fraction of pixels that are free (diagnostic).
    pub fn free_ratio(&self) -> f64 {
        let free = self.occ.iter().filter(|&&o| o == FREE).count();
        free as f64 / self.occ.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, EdgeType, RailParity, Technology};

    fn builder() -> DesignBuilder {
        DesignBuilder::new("px", Technology::contest(), 20, 6)
    }

    #[test]
    fn fixed_cells_block_pixels() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        b.add_fixed_cell("m", 3, 2, Point::new(1_000, 2_000));
        let d = b.build();
        let g = PixelGrid::new(&d);
        assert!(g.is_free(0, 0));
        assert!(!g.is_free(5, 1), "macro pixel blocked");
        assert!(!g.is_free(7, 2), "macro spans rows 1..3");
        assert_eq!(g.occupant(5, 1), None, "macros are anonymous blockers");
        assert_eq!(
            g.check_place(&d, a, GridPos { site: 5, row: 1 }),
            Err(PlaceRejection::Occupied)
        );
    }

    #[test]
    fn bounds_and_parity() {
        let mut b = builder();
        let odd = b.add_cell("odd", 2, 1, Point::new(0, 0));
        let even = b.add_cell("even", 2, 2, Point::new(0, 0));
        b.set_rail(even, RailParity::Even);
        let d = b.build();
        let g = PixelGrid::new(&d);
        assert_eq!(
            g.check_place(&d, odd, GridPos { site: 19, row: 0 }),
            Err(PlaceRejection::OutOfBounds)
        );
        assert_eq!(
            g.check_place(&d, even, GridPos { site: 0, row: 5 }),
            Err(PlaceRejection::OutOfBounds),
            "2-row cell on last row"
        );
        assert_eq!(
            g.check_place(&d, even, GridPos { site: 0, row: 1 }),
            Err(PlaceRejection::RailParity)
        );
        assert_eq!(g.check_place(&d, even, GridPos { site: 0, row: 2 }), Ok(()));
        assert_eq!(g.check_place(&d, odd, GridPos { site: 0, row: 3 }), Ok(()));
    }

    #[test]
    fn place_remove_cycle() {
        let mut b = builder();
        let a = b.add_cell("a", 3, 2, Point::new(0, 0));
        let c = b.add_cell("c", 1, 1, Point::new(0, 0));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        let p = GridPos { site: 4, row: 2 };
        g.place(&d, a, p);
        assert_eq!(g.occupant(4, 2), Some(a));
        assert_eq!(g.occupant(6, 3), Some(a));
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 5, row: 3 }),
            Err(PlaceRejection::Occupied)
        );
        g.remove(&d, a, p);
        assert!(g.is_free(4, 2));
        assert_eq!(g.check_place(&d, c, GridPos { site: 5, row: 3 }), Ok(()));
    }

    #[test]
    fn edge_spacing_between_placed_cells() {
        let mut b = builder();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("c", 2, 1, Point::new(0, 0));
        b.set_edges(a, EdgeType(2), EdgeType(2));
        b.set_edges(c, EdgeType(2), EdgeType(2));
        let d = b.build();
        let mut g = PixelGrid::new(&d);
        g.place(&d, a, GridPos { site: 4, row: 0 });
        // Adjacent: gap 0 < 2 sites.
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 6, row: 0 }),
            Err(PlaceRejection::EdgeSpacing)
        );
        // Gap of one site still violates (needs 2).
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 7, row: 0 }),
            Err(PlaceRejection::EdgeSpacing)
        );
        // Two sites: legal.
        assert_eq!(g.check_place(&d, c, GridPos { site: 8, row: 0 }), Ok(()));
        // Left neighbour side as well.
        assert_eq!(
            g.check_place(&d, c, GridPos { site: 1, row: 0 }),
            Err(PlaceRejection::EdgeSpacing)
        );
        // Exactly two sites of gap on the left: legal.
        assert_eq!(g.check_place(&d, c, GridPos { site: 0, row: 0 }), Ok(()));
        // Different row: no constraint.
        assert_eq!(g.check_place(&d, c, GridPos { site: 6, row: 1 }), Ok(()));
    }

    #[test]
    fn fences_gate_both_directions() {
        let mut b = builder();
        let inside = b.add_cell("in", 2, 1, Point::new(0, 0));
        let outside = b.add_cell("out", 2, 1, Point::new(0, 0));
        let r = b.add_region("f", vec![Rect::new(800, 0, 2_000, 4_000)]);
        b.assign_region(inside, r);
        let d = b.build();
        let g = PixelGrid::new(&d);
        // Fenced cell fully inside: ok (sites 4..10 in rows 0,1).
        assert_eq!(
            g.check_place(&d, inside, GridPos { site: 4, row: 0 }),
            Ok(())
        );
        // Fenced cell straddling the boundary: rejected.
        assert_eq!(
            g.check_place(&d, inside, GridPos { site: 3, row: 0 }),
            Err(PlaceRejection::Fence)
        );
        // Unfenced cell inside the region: rejected.
        assert_eq!(
            g.check_place(&d, outside, GridPos { site: 5, row: 0 }),
            Err(PlaceRejection::Fence)
        );
        // Unfenced cell clear of the region: ok.
        assert_eq!(
            g.check_place(&d, outside, GridPos { site: 10, row: 0 }),
            Ok(())
        );
    }

    #[test]
    fn grid_dbu_round_trip() {
        let mut b = builder();
        b.add_cell("a", 1, 1, Point::new(0, 0));
        let d = b.build();
        let g = PixelGrid::new(&d);
        let pos = GridPos { site: 7, row: 3 };
        let p = g.to_dbu(&d, pos);
        assert_eq!(p, Point::new(1_400, 6_000));
        assert_eq!(g.to_grid(&d, p), pos);
        assert_eq!(
            g.to_grid(&d, Point::new(1_399, 5_999)),
            GridPos { site: 6, row: 2 }
        );
    }

    #[test]
    fn free_ratio() {
        let mut b = builder();
        b.add_fixed_cell("m", 10, 3, Point::new(0, 0));
        let d = b.build();
        let g = PixelGrid::new(&d);
        let expect = 1.0 - 30.0 / 120.0;
        assert!((g.free_ratio() - expect).abs() < 1e-9);
    }
}
