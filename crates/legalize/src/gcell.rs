//! Gcell partitioning (Sec. III-E-1) and the bin grid used for
//! surrounding-environment features.
//!
//! Designs are tiled into at most 5×5 Gcells of roughly 200 µm; each Gcell
//! is one RL subepisode. Each Gcell is further divided into bins holding
//! ~20 cells each, over which the bin features of Table I are computed.

use rlleg_design::{CellId, Design};
use rlleg_geom::{Dbu, Point, Rect};

use crate::pixel::GridWindow;

/// A rectangular tiling of the core into `nx × ny` Gcells with the movable
/// cells assigned by global-placement position.
#[derive(Debug, Clone)]
pub struct GcellGrid {
    nx: usize,
    ny: usize,
    bounds: Vec<Rect>,
    cells: Vec<Vec<CellId>>,
}

impl GcellGrid {
    /// Tiles `design` into `nx × ny` Gcells.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    pub fn new(design: &Design, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "gcell grid must be nonempty");
        let core = design.core;
        let mut bounds = Vec::with_capacity(nx * ny);
        for gy in 0..ny {
            for gx in 0..nx {
                let x1 = core.lo.x + core.width() * gx as i64 / nx as i64;
                let x2 = core.lo.x + core.width() * (gx + 1) as i64 / nx as i64;
                let y1 = core.lo.y + core.height() * gy as i64 / ny as i64;
                let y2 = core.lo.y + core.height() * (gy + 1) as i64 / ny as i64;
                bounds.push(Rect::new(x1, y1, x2, y2));
            }
        }
        let mut grid = Self {
            nx,
            ny,
            bounds,
            cells: vec![Vec::new(); nx * ny],
        };
        for id in design.movable_ids() {
            let g = grid.gcell_of(design.cell(id).gp_pos);
            grid.cells[g].push(id);
        }
        grid
    }

    /// Tiles `design` with the paper's default grid
    /// (`ceil(dim / 200 µm)`, capped at 5 per axis).
    pub fn auto(design: &Design) -> Self {
        let (nx, ny) = design.default_gcell_grid();
        Self::new(design, nx, ny)
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of Gcells.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `true` for a 0-Gcell grid (never constructed; satisfies clippy's
    /// `len`-without-`is_empty` lint).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Index of the Gcell containing `p` (clamped into the grid so
    /// off-core global placements still map somewhere).
    pub fn gcell_of(&self, p: Point) -> usize {
        // Clamp into the core, then binary-search the irregular (integer
        // division) boundaries via the per-axis formula inverse.
        let core = self.bounds[0].union(&self.bounds[self.bounds.len() - 1]);
        let x = p.x.clamp(core.lo.x, core.hi.x - 1);
        let y = p.y.clamp(core.lo.y, core.hi.y - 1);
        let gx = (((x - core.lo.x) as i128 * self.nx as i128) / core.width() as i128) as usize;
        let gy = (((y - core.lo.y) as i128 * self.ny as i128) / core.height() as i128) as usize;
        gy.min(self.ny - 1) * self.nx + gx.min(self.nx - 1)
    }

    /// Bounds of Gcell `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn bounds(&self, g: usize) -> Rect {
        self.bounds[g]
    }

    /// Movable cells assigned to Gcell `g` (by global-placement position).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn cells_of(&self, g: usize) -> &[CellId] {
        &self.cells[g]
    }

    /// Site/row window of Gcell `g`: the pixels whose lower-left corner
    /// falls inside the Gcell bounds. A pixel belongs to exactly one
    /// window, so the windows of a grid tile the core's site/row space
    /// disjointly — the property the parallel legalizer relies on.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn window_of(&self, design: &Design, g: usize) -> GridWindow {
        let r = self.bounds(g);
        let sw = design.tech.site_width;
        let rh = design.tech.row_height;
        let ceil_site = |x: Dbu| (x - design.core.lo.x + sw - 1).div_euclid(sw);
        let ceil_row = |y: Dbu| (y - design.core.lo.y + rh - 1).div_euclid(rh);
        GridWindow {
            lo_site: ceil_site(r.lo.x),
            lo_row: ceil_row(r.lo.y),
            hi_site: ceil_site(r.hi.x).min(design.num_sites_x()),
            hi_row: ceil_row(r.hi.y).min(design.num_rows()),
        }
    }

    /// Gcell indices in subepisode order: descending movable-cell count, so
    /// the most congested regions legalize first ("to prevent legalization
    /// failure", Sec. III-B).
    pub fn subepisode_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&g| (std::cmp::Reverse(self.cells[g].len()), g));
        order
    }
}

/// A bin grid over the whole core sized so each bin holds ~`target`
/// movable cells on average (the paper uses ~20; footnote 1).
#[derive(Debug, Clone)]
pub struct BinGrid {
    nx: usize,
    ny: usize,
    bounds: Vec<Rect>,
}

impl BinGrid {
    /// Builds a bin grid for `design` targeting `target_cells_per_bin`.
    ///
    /// # Panics
    ///
    /// Panics if `target_cells_per_bin` is zero.
    pub fn new(design: &Design, target_cells_per_bin: usize) -> Self {
        assert!(target_cells_per_bin > 0);
        let n = design.num_movable().max(1);
        let bins = n.div_ceil(target_cells_per_bin).max(1);
        // Split bins over the two axes proportionally to the core aspect.
        let aspect = design.core.width() as f64 / design.core.height().max(1) as f64;
        let nx = ((bins as f64 * aspect).sqrt().round() as usize).max(1);
        let ny = bins.div_ceil(nx).max(1);
        let core = design.core;
        let mut bounds = Vec::with_capacity(nx * ny);
        for by in 0..ny {
            for bx in 0..nx {
                let x1 = core.lo.x + core.width() * bx as i64 / nx as i64;
                let x2 = core.lo.x + core.width() * (bx + 1) as i64 / nx as i64;
                let y1 = core.lo.y + core.height() * by as i64 / ny as i64;
                let y2 = core.lo.y + core.height() * (by + 1) as i64 / ny as i64;
                bounds.push(Rect::new(x1, y1, x2, y2));
            }
        }
        Self { nx, ny, bounds }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `true` when there are no bins (never constructed).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Index of the bin containing `p` (clamped into the grid).
    pub fn bin_of(&self, p: Point) -> usize {
        let core = self.bounds[0].union(&self.bounds[self.bounds.len() - 1]);
        let x = p.x.clamp(core.lo.x, core.hi.x - 1);
        let y = p.y.clamp(core.lo.y, core.hi.y - 1);
        let bx = (((x - core.lo.x) as i128 * self.nx as i128) / core.width() as i128) as usize;
        let by = (((y - core.lo.y) as i128 * self.ny as i128) / core.height() as i128) as usize;
        by.min(self.ny - 1) * self.nx + bx.min(self.nx - 1)
    }

    /// Bounds of bin `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn bounds(&self, b: usize) -> Rect {
        self.bounds[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("g", Technology::contest(), 100, 40);
        for i in 0..n {
            let x = (i as i64 * 997) % 19_000;
            let y = (i as i64 * 7_919) % 79_000;
            b.add_cell(format!("u{i}"), 1, 1, Point::new(x, y));
        }
        b.build()
    }

    #[test]
    fn partition_covers_all_cells_once() {
        let d = design(200);
        let g = GcellGrid::new(&d, 3, 2);
        assert_eq!(g.len(), 6);
        let total: usize = (0..g.len()).map(|i| g.cells_of(i).len()).sum();
        assert_eq!(total, 200);
        // Bounds tile the core exactly.
        let area: i64 = (0..g.len()).map(|i| g.bounds(i).area()).sum();
        assert_eq!(area, d.core.area());
    }

    #[test]
    fn gcell_of_matches_bounds() {
        let d = design(50);
        let g = GcellGrid::new(&d, 4, 4);
        for i in 0..g.len() {
            let b = g.bounds(i);
            assert_eq!(g.gcell_of(b.center()), i, "centre of gcell {i}");
            assert_eq!(g.gcell_of(b.lo), i, "lower-left of gcell {i}");
        }
        // Clamping for off-core points.
        assert_eq!(g.gcell_of(Point::new(-100, -100)), 0);
        assert_eq!(g.gcell_of(Point::new(999_999, 999_999)), g.len() - 1);
    }

    #[test]
    fn subepisode_order_is_descending_count() {
        let d = design(100);
        let g = GcellGrid::new(&d, 2, 2);
        let order = g.subepisode_order();
        let counts: Vec<usize> = order.iter().map(|&i| g.cells_of(i).len()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
    }

    #[test]
    fn windows_tile_the_grid_disjointly() {
        let d = design(50);
        for (nx, ny) in [(1, 1), (2, 2), (3, 4), (5, 5)] {
            let g = GcellGrid::new(&d, nx, ny);
            // Count how many windows claim each pixel: must be exactly one.
            let sites = d.num_sites_x();
            let rows = d.num_rows();
            let mut claims = vec![0u8; (sites * rows) as usize];
            for i in 0..g.len() {
                let w = g.window_of(&d, i);
                for row in w.lo_row..w.hi_row {
                    for site in w.lo_site..w.hi_site {
                        claims[(row * sites + site) as usize] += 1;
                    }
                }
            }
            assert!(
                claims.iter().all(|&c| c == 1),
                "{nx}x{ny}: every pixel in exactly one window"
            );
        }
    }

    #[test]
    fn auto_uses_paper_defaults() {
        let d = design(10);
        // Core is 20_000 x 80_000 dbu -> 1 x 1 (both under 200_000).
        assert_eq!(GcellGrid::auto(&d).shape(), (1, 1));
    }

    #[test]
    fn bins_target_cell_count() {
        let d = design(200);
        let bins = BinGrid::new(&d, 20);
        assert!(
            bins.len() >= 10,
            "200 cells / 20 per bin => >= 10 bins, got {}",
            bins.len()
        );
        // Every cell maps into a valid bin.
        for id in d.movable_ids() {
            let b = bins.bin_of(d.cell(id).gp_pos);
            assert!(b < bins.len());
        }
        // Bin bounds tile the core.
        let area: i64 = (0..bins.len()).map(|i| bins.bounds(i).area()).sum();
        assert_eq!(area, d.core.area());
    }

    #[test]
    fn bin_of_matches_bounds() {
        let d = design(60);
        let bins = BinGrid::new(&d, 10);
        for i in 0..bins.len() {
            assert_eq!(bins.bin_of(bins.bounds(i).center()), i);
        }
    }
}
