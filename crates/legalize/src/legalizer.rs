//! The sequential pixel-wise legalizer and the baseline heuristics.
//!
//! [`Legalizer`] reproduces the flow of the size-ordered academic legalizer
//! the paper compares against (\[26\]/OpenDP-style): legalize cells one at a
//! time with the diamond search, optionally followed by the rearrangement
//! and cell-swap heuristics that compensate for the fixed ordering. The RL
//! framework drives the same `legalize_cell` primitive but picks the order
//! itself and uses no heuristics.

use rlleg_design::{CellId, Design, HotCells};
use rlleg_geom::Dbu;

use crate::gcell::GcellGrid;
use crate::order::Ordering;
use crate::pixel::{GridPos, PixelGrid, SubGrid};
use crate::sched::{StealQueues, TileSchedule};
use crate::search::{find_position_hot, SearchConfig};

std::thread_local! {
    /// Per-thread [`SubGrid`] scratch for Gcell solves: each pool worker
    /// (and the calling thread) reuses one snapshot buffer across Gcells
    /// and across `run_gcells_parallel` calls instead of reallocating.
    static GCELL_SCRATCH: std::cell::RefCell<SubGrid> = std::cell::RefCell::new(SubGrid::new());
}

/// Outcome of one Gcell-local solve: committed `(cell, pos)` pairs in
/// order, plus the cells that found no window-local position.
type GcellSolve = (Vec<(CellId, GridPos)>, Vec<CellId>);

/// Error returned when no legal pixel exists for a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaceCellError {
    /// The cell that could not be placed.
    pub cell: CellId,
}

impl std::fmt::Display for PlaceCellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no legal position found for cell {}", self.cell)
    }
}

impl std::error::Error for PlaceCellError {}

/// Summary of one legalization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Cells successfully legalized.
    pub legalized: usize,
    /// Cells for which no legal position was found, in encounter order.
    pub failed: Vec<CellId>,
    /// Gcells whose parallel solve panicked and was contained, in merge
    /// order (coarse tiles ascending, tile-local subepisode order within
    /// each); their cells were retried on the sequential size-ordered
    /// fallback path. Always empty for fault-free runs.
    pub quarantined: Vec<usize>,
}

impl RunStats {
    /// `true` when every attempted cell was placed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// A sequential mixed-height legalizer over a [`PixelGrid`].
///
/// The legalizer owns the grid; the [`Design`] is threaded through calls so
/// cell positions and the grid stay in sync.
///
/// ```
/// use rlleg_design::{DesignBuilder, Technology, legality};
/// use rlleg_geom::Point;
/// use rlleg_legalize::{Legalizer, Ordering};
///
/// let mut b = DesignBuilder::new("d", Technology::contest(), 30, 8);
/// for i in 0..10 {
///     b.add_cell(format!("u{i}"), 2, 1, Point::new(i * 130, 70));
/// }
/// let mut design = b.build();
/// let mut lg = Legalizer::new(&design);
/// let stats = lg.run(&mut design, &Ordering::SizeDescending);
/// assert!(stats.is_complete());
/// assert!(legality::is_legal(&design));
/// ```
#[derive(Debug, Clone)]
pub struct Legalizer {
    grid: PixelGrid,
    /// Struct-of-arrays snapshot of the immutable hot cell attributes,
    /// taken at construction (like the grid raster). Orders, search shape
    /// parameters, and merge bookkeeping read these dense columns instead
    /// of striding over `Cell` structs.
    hot: HotCells,
    search: SearchConfig,
}

impl Legalizer {
    /// Creates a legalizer for `design`, rasterizing fixed cells and any
    /// already-legalized movable cells into the grid.
    pub fn new(design: &Design) -> Self {
        Self::with_config(design, SearchConfig::default())
    }

    /// Creates a legalizer with explicit search configuration.
    pub fn with_config(design: &Design, search: SearchConfig) -> Self {
        let mut grid = PixelGrid::new(design);
        for id in design.movable_ids() {
            let c = design.cell(id);
            if c.legalized {
                let pos = grid.to_grid(design, c.pos);
                grid.place(design, id, pos);
            }
        }
        Self {
            grid,
            hot: design.hot_cells(),
            search,
        }
    }

    /// Read access to the occupancy grid.
    pub fn grid(&self) -> &PixelGrid {
        &self.grid
    }

    /// Legalizes a single cell with the pixel-wise search, committing the
    /// best position into the design and the grid.
    ///
    /// Returns the physical displacement from the cell's global-placement
    /// position.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceCellError`] when the search space holds no legal
    /// pixel; the design and grid are unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is fixed or already legalized.
    pub fn legalize_cell(
        &mut self,
        design: &mut Design,
        cell: CellId,
    ) -> Result<Dbu, PlaceCellError> {
        assert!(
            self.hot.is_movable(cell),
            "cannot legalize fixed cell {cell}"
        );
        assert!(
            !design.cell(cell).legalized,
            "cell {cell} already legalized"
        );
        let from = self.hot.gp_pos(cell);
        let Some((pos, disp)) =
            find_position_hot(&self.grid, &self.hot, design, cell, from, self.search)
        else {
            if !telemetry::disabled() {
                telemetry::counter("legalize.cells_failed").inc();
            }
            return Err(PlaceCellError { cell });
        };
        if !telemetry::disabled() {
            telemetry::counter("legalize.cells_placed").inc();
            telemetry::histogram(
                "legalize.displacement_dbu",
                telemetry::buckets::DISPLACEMENT_DBU,
            )
            .record(disp as f64);
        }
        self.grid.place(design, cell, pos);
        let p = self.grid.to_dbu(design, pos);
        let c = design.cell_mut(cell);
        c.pos = p;
        c.legalized = true;
        Ok(disp)
    }

    /// Removes a legalized cell from the grid and restores its
    /// global-placement position (used by the heuristics and by tests).
    ///
    /// # Panics
    ///
    /// Panics if the cell is not currently legalized.
    pub fn unlegalize_cell(&mut self, design: &mut Design, cell: CellId) {
        let c = design.cell(cell);
        assert!(c.legalized, "cell {cell} is not legalized");
        let pos = self.grid.to_grid(design, c.pos);
        self.grid.remove(design, cell, pos);
        let c = design.cell_mut(cell);
        c.pos = c.gp_pos;
        c.legalized = false;
    }

    /// Legalizes all movable cells of `design` in the given order.
    ///
    /// Failed cells are skipped (recorded in [`RunStats::failed`]) and left
    /// at their global-placement position, matching the baseline behaviour
    /// the paper reports as "\[26\] failed to legalize all cells".
    pub fn run(&mut self, design: &mut Design, ordering: &Ordering) -> RunStats {
        let _t = telemetry::span("legalize.run");
        let order = ordering.order_hot(design, &self.hot, None);
        self.run_cells(design, &order)
    }

    /// Legalizes the design Gcell by Gcell ("\[26\]+G" in Tables II–III):
    /// subepisodes in descending cell-count order, cells within each Gcell
    /// ordered by `ordering`.
    pub fn run_gcells(
        &mut self,
        design: &mut Design,
        ordering: &Ordering,
        gcells: &GcellGrid,
    ) -> RunStats {
        let _t = telemetry::span("legalize.run_gcells");
        let mut stats = RunStats::default();
        for g in gcells.subepisode_order() {
            let order = ordering.order_hot(design, &self.hot, Some(gcells.cells_of(g)));
            let s = self.run_cells(design, &order);
            stats.legalized += s.legalized;
            stats.failed.extend(s.failed);
        }
        stats
    }

    /// Legalizes the design Gcell by Gcell with the subepisodes solved in
    /// parallel on `threads` workers from the persistent
    /// [`pool`](crate::pool) (`0` = one per available core, `1` = the
    /// sequential fallback; the calling thread always works too, so only
    /// `threads - 1` pool workers are engaged).
    ///
    /// Phase 1 solves every Gcell independently and **clone-free**: the
    /// design is never mutated during the solve (cell order and search
    /// starts read only immutable fields), and instead of cloning the
    /// whole grid each worker [`load`](SubGrid::load)s its thread-local
    /// [`SubGrid`] scratch with just the Gcell's disjoint site/row window
    /// ([`GcellGrid::window_of`]) — occupancy words, occupant block, and
    /// the edge-spacing halo of the row index. Searches are restricted to
    /// the window, and the scratch answers them exactly as the full grid
    /// would, so workers never observe each other and the per-Gcell
    /// outcome cannot depend on thread scheduling. Work is handed out as
    /// coarse 2×2 [`TileSchedule`] tiles on per-worker stealing deques
    /// ([`StealQueues`]), so workers stay in one region of the die and a
    /// drained worker steals whole tiles instead of idling; stealing only
    /// moves *where* a tile is solved, never what its solve produces.
    ///
    /// Phase 2 merges the recorded placements sequentially in the fixed
    /// [`TileSchedule::merge_order`] (tiles ascending, tile-local
    /// subepisode order). Placements whose footprint sits at least an
    /// edge-spacing halo inside their window's x-extent are committed
    /// directly — the windows tile disjointly and edge spacing is the
    /// only cross-window rule, so the window-local solve already proved
    /// them legal; only boundary-near placements are re-validated against
    /// the real grid (they can violate edge spacing against a
    /// neighbouring Gcell's cell). Rejected or unplaced cells get a
    /// sequential retry with any caller-configured search window cleared,
    /// so retries may use the whole grid. Every phase after the
    /// embarrassingly-parallel solve is sequential and ordered, which is
    /// what makes the result bit-identical for any thread count —
    /// including the `threads == 1` fallback, which runs the very same
    /// two phases in a plain loop.
    pub fn run_gcells_parallel(
        &mut self,
        design: &mut Design,
        ordering: &Ordering,
        gcells: &GcellGrid,
        threads: usize,
    ) -> RunStats {
        let _t = telemetry::span("legalize.run_gcells_parallel");
        let started = std::time::Instant::now();
        let n = gcells.len();
        // Empty or degenerate grids (no Gcells, or none holding a movable
        // cell) have nothing to solve: never enter the worker machinery.
        if n == 0 || (0..n).all(|g| gcells.cells_of(g).is_empty()) {
            return RunStats::default();
        }
        let tiles = TileSchedule::new(gcells);
        let threads = match threads {
            0 => crate::pool::default_threads(),
            t => t,
        }
        .min(tiles.len());

        // Phase 1: window-restricted, snapshot-isolated per-Gcell solves
        // on per-worker scratch windows, scheduled as coarse tiles.
        let base_grid = &self.grid;
        let search = self.search;
        let design_ro: &Design = design;
        let hot = &self.hot;
        let solve = |scratch: &mut SubGrid, g: usize| -> GcellSolve {
            crate::fault::panic_if_planned(g);
            let order = ordering.order_hot(design_ro, hot, Some(gcells.cells_of(g)));
            if order.is_empty() {
                return (Vec::new(), Vec::new());
            }
            let win = gcells.window_of(design_ro, g);
            if win.is_degenerate() {
                // No in-window pixel can exist; every cell goes to the
                // sequential retry, as the windowed search would decide.
                return (Vec::new(), order);
            }
            scratch.load(base_grid, design_ro, win);
            let cfg = SearchConfig {
                window: Some(win),
                ..search
            };
            let mut placed = Vec::new();
            let mut failed = Vec::new();
            for cell in order {
                assert!(hot.is_movable(cell), "cannot legalize fixed cell {cell}");
                assert!(
                    !design_ro.cell(cell).legalized,
                    "cell {cell} already legalized"
                );
                match find_position_hot(&*scratch, hot, design_ro, cell, hot.gp_pos(cell), cfg) {
                    Some((pos, _)) => {
                        scratch.place(design_ro, cell, pos);
                        placed.push((cell, pos));
                    }
                    None => failed.push(cell),
                }
            }
            (placed, failed)
        };

        // `Err(())` marks a quarantined Gcell: its solve panicked. The
        // panic is contained here — [`SubGrid::load`] fully reinitializes
        // the scratch, so the next Gcell on the same worker is unaffected,
        // and the merge phase retries the Gcell's cells on the sequential
        // size-ordered fallback path instead of aborting the run.
        let results: Vec<std::sync::Mutex<Option<Result<GcellSolve, ()>>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let queues = StealQueues::seed(tiles.len(), threads);
        let gcells_done: Vec<std::sync::atomic::AtomicI64> = (0..threads)
            .map(|_| std::sync::atomic::AtomicI64::new(0))
            .collect();
        {
            // Claim coarse tiles from this worker's stealing deque and
            // solve each tile's Gcells on this thread's scratch.
            let worker_loop = |w: usize| {
                GCELL_SCRATCH.with(|s| {
                    let mut scratch = s.borrow_mut();
                    let mut done = 0i64;
                    while let Some(t) = queues.next(w) {
                        for &g in tiles.gcells(t) {
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    solve(&mut scratch, g)
                                }))
                                .map_err(drop);
                            *results[g]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                            done += 1;
                        }
                    }
                    gcells_done[w].store(done, std::sync::atomic::Ordering::Relaxed);
                })
            };
            if threads <= 1 {
                worker_loop(0);
            } else {
                let pool = crate::pool::global();
                pool.ensure_workers(threads - 1);
                pool.scope(|s| {
                    for w in 1..threads {
                        let worker_loop = &worker_loop;
                        s.spawn(move || worker_loop(w));
                    }
                    // The calling thread is worker 0; on few-core hosts
                    // this is what keeps the pool from being pure
                    // overhead.
                    worker_loop(0);
                });
            }
        }
        if !telemetry::disabled() {
            let mut lo = i64::MAX;
            let mut hi = 0i64;
            for (w, done) in gcells_done.iter().enumerate() {
                let done = done.load(std::sync::atomic::Ordering::Relaxed);
                telemetry::gauge(&format!("legalize.parallel.worker{w}.gcells")).set(done);
                lo = lo.min(done);
                hi = hi.max(done);
            }
            telemetry::counter("legalize.steal.count").add(queues.steals());
            telemetry::gauge("legalize.tile.imbalance").set(hi - lo);
        }

        // Phase 2: deterministic sequential merge, coarse tile by coarse
        // tile in the fixed merge order.
        let mut stats = RunStats::default();
        let mut retry: Vec<CellId> = Vec::new();
        let mut fallback: Vec<CellId> = Vec::new();
        let mut conflicts = 0u64;
        let mut fast_commits = 0u64;
        let sw = design.tech.site_width;
        let halo_sites = (design.tech.max_edge_spacing() + sw - 1).div_euclid(sw);
        for g in tiles.merge_order() {
            let solved = results[g]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("every gcell solved");
            let (placed, failed) = match solved {
                Ok(out) => out,
                Err(()) => {
                    // Quarantine: the solve panicked, so no window-local
                    // result exists. Send every cell of the Gcell to the
                    // sequential size-ordered fallback; the fallback order
                    // is computed here, at merge time, so it is identical
                    // for every thread count.
                    stats.quarantined.push(g);
                    fallback.extend(Ordering::SizeDescending.order_hot(
                        design,
                        &self.hot,
                        Some(gcells.cells_of(g)),
                    ));
                    continue;
                }
            };
            let win = gcells.window_of(design, g);
            for (cell, pos) in placed {
                // Interior fast path: windows tile disjointly, footprint
                // rows stay inside the window, and edge spacing (the only
                // cross-window rule) reaches at most `halo_sites`; a
                // placement that far inside its window's x-extent was
                // fully validated by the window-local solve and cannot
                // conflict with other Gcells' merges. `place` keeps its
                // debug-mode `check_place` tripwire on this path.
                let interior = pos.site - halo_sites >= win.lo_site
                    && pos.site + self.hot.w_sites(cell) + halo_sites <= win.hi_site;
                if interior || self.grid.check_place(design, cell, pos).is_ok() {
                    fast_commits += interior as u64;
                    self.grid.place(design, cell, pos);
                    let p = self.grid.to_dbu(design, pos);
                    let c = design.cell_mut(cell);
                    c.pos = p;
                    c.legalized = true;
                    stats.legalized += 1;
                } else {
                    conflicts += 1;
                    retry.push(cell);
                }
            }
            retry.extend(failed);
        }
        if !telemetry::disabled() {
            telemetry::counter("legalize.parallel.merge_conflicts").add(conflicts);
            telemetry::counter("legalize.parallel.fast_commits").add(fast_commits);
            telemetry::counter("legalize.parallel.retries").add(retry.len() as u64);
            telemetry::counter("legalize.gcell.quarantined").add(stats.quarantined.len() as u64);
        }
        // Merge-retry must see the whole grid: clear any caller-configured
        // window for the duration of the retries.
        let saved_window = self.search.window.take();
        for cell in retry {
            match self.legalize_cell(design, cell) {
                Ok(_) => stats.legalized += 1,
                Err(e) => stats.failed.push(e.cell),
            }
        }
        // Quarantined Gcells run last, on the same sequential full-grid
        // path; for fault-free runs this loop is empty and the run is
        // bit-identical to one without quarantine support.
        let mut fallback_ok = 0u64;
        for cell in fallback {
            match self.legalize_cell(design, cell) {
                Ok(_) => {
                    stats.legalized += 1;
                    fallback_ok += 1;
                }
                Err(e) => stats.failed.push(e.cell),
            }
        }
        if !telemetry::disabled() && fallback_ok > 0 {
            telemetry::counter("legalize.gcell.fallback_ok").add(fallback_ok);
        }
        self.search.window = saved_window;
        if !telemetry::disabled() {
            let secs = started.elapsed().as_secs_f64();
            if secs > 0.0 {
                telemetry::gauge("legalize.cells_per_sec")
                    .set((stats.legalized as f64 / secs) as i64);
            }
        }
        stats
    }

    /// Legalizes an explicit list of cells in order.
    pub fn run_cells(&mut self, design: &mut Design, order: &[CellId]) -> RunStats {
        let mut stats = RunStats::default();
        for &cell in order {
            match self.legalize_cell(design, cell) {
                Ok(_) => stats.legalized += 1,
                Err(e) => stats.failed.push(e.cell),
            }
        }
        stats
    }

    /// Places `cell` even when the plain search fails, by evicting a small
    /// set of already-legalized cells and re-legalizing them afterwards.
    ///
    /// Plain search failures on dense designs are usually fragmentation:
    /// plenty of free pixels, but no contiguous window for a wide or
    /// multi-row cell. This pass scans every anchor window the cell could
    /// legally occupy, ranks them by target displacement plus an eviction
    /// penalty, and tries the cheapest ones: evict the movable occupants,
    /// commit the target, then re-run the search for each evicted cell.
    /// An attempt where any evicted cell cannot be re-placed is rolled
    /// back exactly, so the design and grid are never left worse than
    /// before the call.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceCellError`] when no attempt succeeds (e.g. the only
    /// windows are blocked by fixed cells, or evictees cannot re-place).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is fixed or already legalized.
    pub fn ripup_place(
        &mut self,
        design: &mut Design,
        cell: CellId,
    ) -> Result<Dbu, PlaceCellError> {
        if let Ok(disp) = self.legalize_cell(design, cell) {
            return Ok(disp);
        }
        if !telemetry::disabled() {
            telemetry::counter("legalize.ripup.attempts").inc();
        }
        /// Most evicted cells per window; windows needing more are skipped.
        const MAX_EVICT: usize = 12;
        /// Most candidate windows actually attempted.
        const MAX_ATTEMPTS: usize = 32;

        let c = design.cell(cell);
        let sw = design.tech.site_width;
        let rh = design.tech.row_height;
        let w_sites = c.width / sw;
        let h_rows = i64::from(c.height_rows);
        let from = c.gp_pos;
        let limit = self.search.displacement_limit.or(design.max_displacement);
        // An eviction is worth roughly one cell's worth of extra movement.
        let evict_penalty = sw + rh;

        // Restrict the scan to the displacement-limit window around the
        // target: anchors whose row or column alone already exceeds the
        // limit can never pass the per-candidate `disp > limit` test the
        // unbounded scan applied, so pruning them is behaviour-preserving.
        let full_rows = (self.grid.rows() - h_rows).max(-1);
        let full_sites = (self.grid.sites_x() - w_sites).max(-1);
        let (lo_row, hi_row, lo_site, hi_site) = match limit {
            Some(l) => {
                let y0 = design.core.lo.y;
                let x0 = design.core.lo.x;
                (
                    (from.y - l - y0 + rh - 1).div_euclid(rh).max(0),
                    (from.y + l - y0).div_euclid(rh).min(full_rows),
                    (from.x - l - x0 + sw - 1).div_euclid(sw).max(0),
                    (from.x + l - x0).div_euclid(sw).min(full_sites),
                )
            }
            None => (0, full_rows, 0, full_sites),
        };
        if !telemetry::disabled() {
            let total = (full_rows + 1).max(0) * (full_sites + 1).max(0);
            let window = (hi_row - lo_row + 1).max(0) * (hi_site - lo_site + 1).max(0);
            telemetry::counter("legalize.ripup.window_pruned").add((total - window).max(0) as u64);
        }

        // Rank every legal-if-evicted anchor window.
        let mut candidates: Vec<(Dbu, crate::pixel::GridPos)> = Vec::new();
        for row in lo_row..=hi_row {
            'site: for site in lo_site..=hi_site {
                let pos = crate::pixel::GridPos { site, row };
                if c.is_rail_constrained() && !c.rail.allows_row(row) {
                    continue;
                }
                let p = self.grid.to_dbu(design, pos);
                let disp = p.manhattan(from);
                if limit.is_some_and(|l| disp > l) {
                    continue;
                }
                // Word-level pre-filter: a window touching a fixed pixel
                // can never be evicted into.
                if self.grid.window_has_fixed(pos, w_sites, h_rows) {
                    continue;
                }
                let mut evicted: Vec<CellId> = Vec::new();
                for r in row..row + h_rows {
                    for s in site..site + w_sites {
                        match self.grid.occupant(s, r) {
                            Some(occ) => {
                                if !evicted.contains(&occ) {
                                    if evicted.len() == MAX_EVICT {
                                        continue 'site;
                                    }
                                    evicted.push(occ);
                                }
                            }
                            None => {
                                if !self.grid.is_free(s, r) {
                                    continue 'site; // fixed-cell pixel
                                }
                            }
                        }
                    }
                }
                if evicted.is_empty() {
                    // The plain search normally covers empty windows; the
                    // ones it rejected (fence, edge spacing) or its radius
                    // bound missed are only worth attempting when directly
                    // legal.
                    if self.grid.check_place(design, cell, pos).is_ok() {
                        candidates.push((disp, pos));
                    }
                    continue;
                }
                candidates.push((disp + evicted.len() as Dbu * evict_penalty, pos));
            }
        }
        candidates.sort_unstable_by_key(|&(cost, pos)| (cost, pos.row, pos.site));

        for &(_, pos) in candidates.iter().take(MAX_ATTEMPTS) {
            // Evict the window's occupants, remembering their spots.
            let mut evicted: Vec<(CellId, rlleg_geom::Point)> = Vec::new();
            for r in pos.row..pos.row + h_rows {
                for s in pos.site..pos.site + w_sites {
                    if let Some(occ) = self.grid.occupant(s, r) {
                        let old = design.cell(occ).pos;
                        self.unlegalize_cell(design, occ);
                        evicted.push((occ, old));
                    }
                }
            }
            let rollback = |lg: &mut Self,
                            design: &mut Design,
                            replaced: &[CellId],
                            evicted: &[(CellId, rlleg_geom::Point)]| {
                for &id in replaced {
                    lg.unlegalize_cell(design, id);
                }
                for &(id, old) in evicted {
                    let gp = lg.grid.to_grid(design, old);
                    lg.grid.place(design, id, gp);
                    let cm = design.cell_mut(id);
                    cm.pos = old;
                    cm.legalized = true;
                }
            };
            // The window may still violate edge spacing against untouched
            // neighbours; if so, restore and try the next one.
            if self.grid.check_place(design, cell, pos).is_err() {
                rollback(self, design, &[], &evicted);
                continue;
            }
            self.grid.place(design, cell, pos);
            let p = self.grid.to_dbu(design, pos);
            let disp = p.manhattan(from);
            let cm = design.cell_mut(cell);
            cm.pos = p;
            cm.legalized = true;
            // Largest evictees first: they are the hardest to re-place.
            let mut order: Vec<CellId> = evicted.iter().map(|&(id, _)| id).collect();
            order.sort_by_key(|&id| {
                let ec = design.cell(id);
                std::cmp::Reverse((i64::from(ec.height_rows), ec.width, id.0))
            });
            let mut replaced: Vec<CellId> = Vec::new();
            let mut ok = true;
            for id in order {
                match self.legalize_cell(design, id) {
                    Ok(_) => replaced.push(id),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                if !telemetry::disabled() {
                    telemetry::counter("legalize.ripup.recovered").inc();
                }
                return Ok(disp);
            }
            self.unlegalize_cell(design, cell);
            rollback(self, design, &replaced, &evicted);
        }
        Err(PlaceCellError { cell })
    }

    /// The rearrangement heuristic of the size-ordered baseline: each
    /// legalized cell (worst displacement first) is lifted and re-searched
    /// against the final occupancy; strictly better positions are kept.
    ///
    /// Returns the number of cells improved.
    pub fn rearrange_pass(&mut self, design: &mut Design) -> usize {
        let mut ids: Vec<CellId> = design
            .movable_ids()
            .filter(|&id| design.cell(id).legalized)
            .collect();
        ids.sort_by_key(|&id| std::cmp::Reverse(design.cell(id).displacement()));
        let mut improved = 0;
        for id in ids {
            let old_pos = design.cell(id).pos;
            let old_disp = design.cell(id).displacement();
            if old_disp == 0 {
                break; // sorted descending: nothing left to improve
            }
            // A cell legally wedged between two neighbours can be the only
            // thing keeping them apart — lifting it would expose an
            // edge-spacing violation check_place never re-examines.
            if !self
                .grid
                .vacate_safe(design, id, self.grid.to_grid(design, old_pos))
            {
                continue;
            }
            self.unlegalize_cell(design, id);
            match find_position_hot(
                &self.grid,
                &self.hot,
                design,
                id,
                self.hot.gp_pos(id),
                self.search,
            ) {
                Some((pos, disp)) if disp < old_disp => {
                    self.grid.place(design, id, pos);
                    let p = self.grid.to_dbu(design, pos);
                    let c = design.cell_mut(id);
                    c.pos = p;
                    c.legalized = true;
                    improved += 1;
                }
                _ => {
                    // Restore the original spot (always still legal).
                    let pos = self.grid.to_grid(design, old_pos);
                    self.grid.place(design, id, pos);
                    let c = design.cell_mut(id);
                    c.pos = old_pos;
                    c.legalized = true;
                }
            }
        }
        improved
    }

    /// The cell-swap heuristic of the size-ordered baseline: pairs of
    /// geometrically interchangeable cells (same width, height, rail
    /// parity, edge types, and fence) are swapped when that strictly
    /// reduces their combined displacement.
    ///
    /// Returns the number of swaps applied.
    pub fn swap_pass(&mut self, design: &mut Design) -> usize {
        use std::collections::HashMap;
        /// Geometric interchangeability key: width, height, odd-rail flag,
        /// edge types, fence.
        type SwapKey = (Dbu, u8, bool, u8, u8, Option<u16>);
        // Group interchangeable cells.
        let mut groups: HashMap<SwapKey, Vec<CellId>> = HashMap::new();
        for id in design.movable_ids() {
            let c = design.cell(id);
            if !c.legalized {
                continue;
            }
            let key = (
                c.width,
                c.height_rows,
                c.is_rail_constrained() && matches!(c.rail, rlleg_design::RailParity::Odd),
                c.edge_left.0,
                c.edge_right.0,
                c.region.map(|r| r.0),
            );
            groups.entry(key).or_default().push(id);
        }
        let mut swaps = 0;
        for ids in groups.values() {
            if ids.len() < 2 {
                continue;
            }
            // Greedy: examine pairs in a displacement-weighted order. The
            // group sizes in real designs make full O(k^2) acceptable for
            // k up to a few hundred; larger groups are truncated to the
            // worst offenders.
            let mut sorted = ids.clone();
            sorted.sort_by_key(|&id| std::cmp::Reverse(design.cell(id).displacement()));
            sorted.truncate(400);
            for i in 0..sorted.len() {
                for j in (i + 1)..sorted.len() {
                    let (a, b) = (sorted[i], sorted[j]);
                    let ca = design.cell(a);
                    let cb = design.cell(b);
                    let now = ca.displacement() + cb.displacement();
                    let disp_b_at_a = ca.pos.manhattan(cb.gp_pos);
                    let disp_a_at_b = cb.pos.manhattan(ca.gp_pos);
                    let within_limit = design
                        .max_displacement
                        .is_none_or(|l| disp_b_at_a <= l && disp_a_at_b <= l);
                    if within_limit && disp_b_at_a + disp_a_at_b < now {
                        let pa = ca.pos;
                        let pb = cb.pos;
                        design.cell_mut(a).pos = pb;
                        design.cell_mut(b).pos = pa;
                        // Same-footprint swap: occupancy pixels and the
                        // row index just exchange owners.
                        let ga = self.grid.to_grid(design, pa);
                        let gb = self.grid.to_grid(design, pb);
                        self.grid.remove(design, a, ga);
                        self.grid.remove(design, b, gb);
                        self.grid.place(design, a, gb);
                        self.grid.place(design, b, ga);
                        swaps += 1;
                    }
                }
            }
        }
        swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixel::GridWindow;
    use rlleg_design::{legality, metrics::Qor, DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn dense_design(n: usize, seed: u64) -> Design {
        // Deterministic pseudo-random overlapping placement.
        let mut b = DesignBuilder::new("lg", Technology::contest(), 60, 12);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            let w = 1 + (next() % 3) as i64;
            let h = 1 + (next() % 7 / 3) as u8; // mostly 1, some 2-3
            let x = (next() % 11_000) as i64;
            let y = (next() % 22_000) as i64;
            b.add_cell(format!("u{i}"), w, h, Point::new(x, y));
        }
        b.build()
    }

    #[test]
    fn run_produces_legal_placement() {
        let mut d = dense_design(60, 1);
        let mut lg = Legalizer::new(&d);
        let stats = lg.run(&mut d, &Ordering::SizeDescending);
        assert!(stats.is_complete(), "failed: {:?}", stats.failed);
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
    }

    #[test]
    fn random_orders_also_legal_but_different_qor() {
        let mut qors = Vec::new();
        for seed in 0..5 {
            let mut d = dense_design(60, 2);
            let mut lg = Legalizer::new(&d);
            let stats = lg.run(&mut d, &Ordering::Random(seed));
            assert!(stats.is_complete());
            assert!(legality::is_legal(&d));
            qors.push(Qor::measure(&d).total_displacement);
        }
        assert!(
            qors.iter().any(|&q| q != qors[0]),
            "order should affect displacement: {qors:?}"
        );
    }

    #[test]
    fn legalize_cell_reports_displacement() {
        let mut b = DesignBuilder::new("one", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 1, Point::new(250, 100));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        let disp = lg.legalize_cell(&mut d, a).expect("placed");
        assert_eq!(disp, 50 + 100, "snap to (200, 0)");
        assert_eq!(d.cell(a).pos, Point::new(200, 0));
        assert!(d.cell(a).legalized);
    }

    #[test]
    #[should_panic(expected = "already legalized")]
    fn double_legalize_panics() {
        let mut b = DesignBuilder::new("one", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        lg.legalize_cell(&mut d, a).expect("first is fine");
        let _ = lg.legalize_cell(&mut d, a);
    }

    #[test]
    fn failure_is_reported_and_design_untouched() {
        // Core fully covered by a macro: nowhere to go.
        let mut b = DesignBuilder::new("full", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        b.add_fixed_cell("m", 10, 4, Point::new(0, 0));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        let stats = lg.run(&mut d, &Ordering::SizeDescending);
        assert_eq!(stats.failed, vec![a]);
        assert!(!d.cell(a).legalized);
        assert_eq!(d.cell(a).pos, d.cell(a).gp_pos);
    }

    #[test]
    fn unlegalize_round_trip() {
        let mut b = DesignBuilder::new("u", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 2, 1, Point::new(450, 100));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        lg.legalize_cell(&mut d, a).expect("placed");
        let placed = d.cell(a).pos;
        lg.unlegalize_cell(&mut d, a);
        assert_eq!(d.cell(a).pos, d.cell(a).gp_pos);
        assert!(!d.cell(a).legalized);
        // The pixel is free again.
        let g = lg.grid().to_grid(&d, placed);
        assert!(lg.grid().is_free(g.site, g.row));
    }

    #[test]
    fn new_re_rasterizes_legalized_cells() {
        let mut d = dense_design(30, 3);
        let mut lg = Legalizer::new(&d);
        lg.run(&mut d, &Ordering::SizeDescending);
        // Rebuild from the committed design: grid must block placed cells.
        let lg2 = Legalizer::new(&d);
        let any = d.movable_ids().next().expect("cells");
        let pos = lg2.grid().to_grid(&d, d.cell(any).pos);
        assert_eq!(lg2.grid().occupant(pos.site, pos.row), Some(any));
    }

    #[test]
    fn ripup_places_fragmented_tall_cell() {
        // 6 sites x 3 rows; one 1x1 cell per column, staggered across rows,
        // so every column is broken and a 1x3 cell has no contiguous window
        // — the classic fragmentation failure.
        let mut b = DesignBuilder::new("rip", Technology::contest(), 6, 3);
        let mut small = Vec::new();
        for s in 0..6i64 {
            small.push(b.add_cell(format!("s{s}"), 1, 1, Point::new(s * 200, (s % 3) * 2_000)));
        }
        let tall = b.add_cell("tall", 1, 3, Point::new(400, 0));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        for &id in &small {
            lg.legalize_cell(&mut d, id)
                .expect("small cell at its spot");
        }
        assert!(
            lg.legalize_cell(&mut d, tall).is_err(),
            "fragmented grid must defeat the plain search"
        );
        lg.ripup_place(&mut d, tall).expect("rip-up succeeds");
        assert!(d.cell(tall).legalized);
        assert!(
            d.movable_ids().all(|id| d.cell(id).legalized),
            "evicted cells must be re-placed"
        );
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
    }

    #[test]
    fn ripup_fails_cleanly_when_impossible() {
        let mut b = DesignBuilder::new("imp", Technology::contest(), 8, 2);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        b.add_fixed_cell("m", 8, 2, Point::new(0, 0));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        assert!(lg.ripup_place(&mut d, a).is_err());
        assert!(!d.cell(a).legalized);
        assert_eq!(d.cell(a).pos, d.cell(a).gp_pos);
    }

    #[test]
    fn ripup_rolls_back_exactly_when_evictees_cannot_replace() {
        // 2 sites x 3 rows, every pixel occupied: both candidate windows
        // require evicting three cells that then have nowhere to go. The
        // attempt must fail and restore every cell to its original spot.
        let mut b = DesignBuilder::new("rb", Technology::contest(), 2, 3);
        let mut small = Vec::new();
        for s in 0..2i64 {
            for r in 0..3i64 {
                small.push(b.add_cell(format!("s{s}_{r}"), 1, 1, Point::new(s * 200, r * 2_000)));
            }
        }
        let tall = b.add_cell("tall", 1, 3, Point::new(0, 0));
        let mut d = b.build();
        let mut lg = Legalizer::new(&d);
        for &id in &small {
            lg.legalize_cell(&mut d, id)
                .expect("small cell at its spot");
        }
        let before: Vec<_> = small.iter().map(|&id| d.cell(id).pos).collect();
        assert!(lg.ripup_place(&mut d, tall).is_err());
        assert!(!d.cell(tall).legalized);
        for (&id, &pos) in small.iter().zip(&before) {
            assert_eq!(d.cell(id).pos, pos, "rollback must restore {id}");
            assert!(d.cell(id).legalized);
        }
        // The grid still answers consistently: every original spot occupied.
        for &id in &small {
            let g = lg.grid().to_grid(&d, d.cell(id).pos);
            assert_eq!(lg.grid().occupant(g.site, g.row), Some(id));
        }
    }

    #[test]
    fn rearrange_never_worsens_and_stays_legal() {
        let mut d = dense_design(80, 4);
        let mut lg = Legalizer::new(&d);
        lg.run(&mut d, &Ordering::SizeDescending);
        let before = Qor::measure(&d);
        let improved = lg.rearrange_pass(&mut d);
        let after = Qor::measure(&d);
        assert!(after.total_displacement <= before.total_displacement);
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
        // On a dense design, rearrangement should find at least one win.
        let _ = improved;
    }

    #[test]
    fn swap_never_worsens_and_stays_legal() {
        let mut d = dense_design(80, 5);
        let mut lg = Legalizer::new(&d);
        lg.run(&mut d, &Ordering::Random(9));
        let before = Qor::measure(&d);
        let swaps = lg.swap_pass(&mut d);
        let after = Qor::measure(&d);
        assert!(
            after.total_displacement <= before.total_displacement,
            "swaps: {swaps}"
        );
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
    }

    #[test]
    fn parallel_run_on_empty_or_fixed_only_design_returns_empty_stats() {
        // No cells at all.
        let mut d = DesignBuilder::new("none", Technology::contest(), 12, 4).build();
        let g = GcellGrid::new(&d, 2, 2);
        let mut lg = Legalizer::new(&d);
        assert_eq!(
            lg.run_gcells_parallel(&mut d, &Ordering::SizeDescending, &g, 8),
            RunStats::default()
        );
        // Only fixed cells: every Gcell exists but holds nothing movable.
        let mut b = DesignBuilder::new("fixed", Technology::contest(), 12, 4);
        b.add_fixed_cell("m", 4, 2, Point::new(400, 0));
        let mut d = b.build();
        let g = GcellGrid::new(&d, 3, 2);
        let mut lg = Legalizer::new(&d);
        let stats = lg.run_gcells_parallel(&mut d, &Ordering::SizeDescending, &g, 8);
        assert_eq!(stats, RunStats::default());
        assert!(stats.is_complete());
    }

    #[test]
    fn merge_retry_clears_caller_window_and_escapes_the_gcell() {
        // 20 sites x 2 rows, split into a left and a right Gcell. The right
        // half is fully covered by a macro, so the cell whose global
        // placement lands there fails its windowed Gcell solve and goes to
        // the merge-retry. The caller's own search window also points at
        // the blocked right half: the retry must clear it, or the cell can
        // never reach the free left half.
        let mut b = DesignBuilder::new("retry", Technology::contest(), 20, 2);
        let a = b.add_cell("a", 1, 1, Point::new(3_000, 0));
        b.add_fixed_cell("m", 10, 2, Point::new(2_000, 0));
        let mut d = b.build();
        let g = GcellGrid::new(&d, 2, 1);
        let right_half = GridWindow {
            lo_site: 10,
            lo_row: 0,
            hi_site: 20,
            hi_row: 2,
        };
        let mut lg = Legalizer::with_config(
            &d,
            SearchConfig {
                window: Some(right_half),
                ..SearchConfig::default()
            },
        );
        let stats = lg.run_gcells_parallel(&mut d, &Ordering::SizeDescending, &g, 2);
        assert!(stats.is_complete(), "failed: {:?}", stats.failed);
        assert_eq!(stats.legalized, 1);
        assert!(d.cell(a).legalized);
        assert!(
            d.cell(a).pos.x < 2_000,
            "must land in the left half, got {:?}",
            d.cell(a).pos
        );
        // The caller's window is restored after the retries.
        assert_eq!(lg.search.window, Some(right_half));
    }

    #[test]
    fn quarantined_gcell_recovers_via_sequential_fallback() {
        use crate::fault::{arm, FaultPlan};
        let d0 = dense_design(60, 7);
        let g = GcellGrid::new(&d0, 2, 2);
        let target = (0..g.len())
            .find(|&i| !g.cells_of(i).is_empty())
            .expect("a populated gcell");

        // Reference fault-free run: accounts for every movable cell.
        let mut dr = d0.clone();
        let ref_stats =
            Legalizer::new(&dr).run_gcells_parallel(&mut dr, &Ordering::SizeDescending, &g, 2);
        assert!(ref_stats.quarantined.is_empty());

        let _guard = arm(FaultPlan {
            panic_at_gcell: Some(target),
            ..FaultPlan::default()
        });
        // The faulted run must complete (no abort), quarantine exactly the
        // targeted Gcell, still account for every movable cell, and be
        // bit-identical across thread counts.
        let mut reference: Option<Design> = None;
        for threads in [1usize, 2, 4] {
            let mut d = d0.clone();
            let stats = Legalizer::new(&d).run_gcells_parallel(
                &mut d,
                &Ordering::SizeDescending,
                &g,
                threads,
            );
            assert_eq!(stats.quarantined, vec![target], "threads={threads}");
            assert_eq!(
                stats.legalized + stats.failed.len(),
                d.num_movable(),
                "threads={threads}"
            );
            assert!(
                legality::is_legal(&d) || !stats.is_complete(),
                "threads={threads}: {:?}",
                legality::check(&d, true).first()
            );
            match &reference {
                None => reference = Some(d),
                Some(r) => {
                    for id in r.cell_ids() {
                        assert_eq!(
                            r.cell(id).pos,
                            d.cell(id).pos,
                            "threads={threads}: faulted runs must stay deterministic"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fault_free_runs_have_no_quarantine() {
        let mut d = dense_design(40, 8);
        let g = GcellGrid::new(&d, 2, 2);
        let stats =
            Legalizer::new(&d).run_gcells_parallel(&mut d, &Ordering::SizeDescending, &g, 4);
        assert!(stats.quarantined.is_empty());
    }

    #[test]
    fn gcell_run_matches_flat_run_cell_coverage() {
        let mut d1 = dense_design(60, 6);
        let mut d2 = d1.clone();
        let mut lg1 = Legalizer::new(&d1);
        let s1 = lg1.run(&mut d1, &Ordering::SizeDescending);
        let g = GcellGrid::new(&d2, 2, 2);
        let mut lg2 = Legalizer::new(&d2);
        let s2 = lg2.run_gcells(&mut d2, &Ordering::SizeDescending, &g);
        assert_eq!(
            s1.legalized + s1.failed.len(),
            s2.legalized + s2.failed.len()
        );
        assert!(legality::is_legal(&d2) || !s2.is_complete());
    }
}
