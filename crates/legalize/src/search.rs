//! Pixel-wise diamond search (Sec. II-B, Fig. 2).
//!
//! For a target cell, the search "explores available pixel locations ...
//! using a diamond searching method within a search space. The search
//! boundary is determined to be proportional to the maximum displacement
//! constraint and cell size. Finally, the location with the minimum
//! displacement is designated to legalize the cell."
//!
//! [`find_position`] walks the same diamond-bounded candidate set as the
//! original ring enumeration (kept as [`find_position_reference`]) but in
//! best-first order over the word-level free spans of the grid: rows are
//! visited in nondecreasing vertical cost from the target row, and within a
//! row only the anchors of bitmap-free spans are probed, walking outward
//! from the cheapest x. Occupied stretches are skipped wholesale and both
//! walk orders are monotone in displacement, so the first-beaten candidate
//! ends its row and the first-beaten row ends the search — while the result
//! (position *and* tie-break) stays bit-identical to the reference.

use rlleg_design::{CellId, Design, HotCells, RailParity};
use rlleg_geom::{Dbu, Point};

use crate::pixel::{GridPos, GridRead, GridWindow, PixelGrid};

/// Tuning knobs for [`find_position`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchConfig {
    /// Hard cap on the pixel-Manhattan search radius; `None` derives the
    /// bound from the displacement limit and cell size (paper behaviour),
    /// falling back to the whole core when unconstrained.
    pub max_radius: Option<i64>,
    /// Per-cell displacement limit in dbu; candidates farther from the
    /// cell's global-placement position are skipped. Defaults to the
    /// design's `max_displacement`.
    pub displacement_limit: Option<Dbu>,
    /// When set, only positions whose full footprint lies inside the window
    /// are considered (parallel per-Gcell legalization).
    pub window: Option<GridWindow>,
}

/// The immutable shape parameters the diamond search reads per cell,
/// gathered up front so the inner loops never touch the `Cell` struct.
#[derive(Debug, Clone, Copy)]
struct CellShape {
    w_sites: i64,
    h_rows: i64,
    rail_constrained: bool,
    rail: RailParity,
}

impl CellShape {
    fn of(design: &Design, cell: CellId) -> Self {
        let c = design.cell(cell);
        Self {
            w_sites: c.width / design.tech.site_width,
            h_rows: i64::from(c.height_rows),
            rail_constrained: c.is_rail_constrained(),
            rail: c.rail,
        }
    }

    fn of_hot(hot: &HotCells, cell: CellId) -> Self {
        Self {
            w_sites: hot.w_sites(cell),
            h_rows: hot.h_rows(cell),
            rail_constrained: hot.is_rail_constrained(cell),
            rail: hot.rail(cell),
        }
    }
}

/// Pixel-Manhattan search bound shared by both search implementations.
fn search_bound(grid: &impl GridRead, cfg: SearchConfig, design: &Design, shape: CellShape) -> i64 {
    let sw = design.tech.site_width;
    let CellShape {
        w_sites, h_rows, ..
    } = shape;
    let limit = cfg.displacement_limit.or(design.max_displacement);
    cfg.max_radius.unwrap_or_else(|| {
        let from_limit = limit.map(|l| l / sw + 2);
        let whole_core = grid.sites_x() + grid.rows();
        // "Proportional to the maximum displacement constraint and cell
        // size": the cell-size term lets big cells look a little farther
        // than the displacement budget alone would.
        from_limit
            .map(|b| (b + 2 * (w_sites + h_rows)).min(whole_core))
            .unwrap_or(whole_core)
    })
}

/// The best legal position found for `cell` around `from` (its
/// global-placement position), with its physical displacement in dbu, or
/// `None` when the search space holds no legal pixel.
///
/// Generic over [`GridRead`]: the full [`PixelGrid`] and the window-scoped
/// [`SubGrid`](crate::pixel::SubGrid) snapshot run the very same search
/// (a `SubGrid` caller must restrict `cfg.window` to the snapshot window).
pub fn find_position<G: GridRead>(
    grid: &G,
    design: &Design,
    cell: CellId,
    from: Point,
    cfg: SearchConfig,
) -> Option<(GridPos, Dbu)> {
    find_position_shaped(grid, design, cell, CellShape::of(design, cell), from, cfg)
}

/// [`find_position`] with the cell's shape read from a [`HotCells`]
/// snapshot instead of the `Cell` struct — the hot path for big runs.
/// Bit-identical to `find_position` for a snapshot of the same design.
pub fn find_position_hot<G: GridRead>(
    grid: &G,
    hot: &HotCells,
    design: &Design,
    cell: CellId,
    from: Point,
    cfg: SearchConfig,
) -> Option<(GridPos, Dbu)> {
    find_position_shaped(grid, design, cell, CellShape::of_hot(hot, cell), from, cfg)
}

fn find_position_shaped<G: GridRead>(
    grid: &G,
    design: &Design,
    cell: CellId,
    shape: CellShape,
    from: Point,
    cfg: SearchConfig,
) -> Option<(GridPos, Dbu)> {
    let sw = design.tech.site_width;
    let rh = design.tech.row_height;
    let CellShape {
        w_sites, h_rows, ..
    } = shape;
    let limit = cfg.displacement_limit.or(design.max_displacement);
    let bound = search_bound(grid, cfg, design, shape);

    // Diamond centre, clamped into the representable placement range.
    let raw = GridPos {
        site: design.site_of(from.x),
        row: design.row_of(from.y),
    };
    let site0 = raw.site.clamp(0, (grid.sites_x() - w_sites).max(0));
    let row0 = raw.row.clamp(0, (grid.rows() - h_rows).max(0));

    let x0 = design.core.lo.x;
    let y0 = design.core.lo.y;

    // Anchor ranges: grid, optional window, and the diamond's row extent.
    let (win_lo_s, win_lo_r, win_hi_s, win_hi_r) = match cfg.window {
        Some(w) => (w.lo_site, w.lo_row, w.hi_site, w.hi_row),
        None => (0, 0, grid.sites_x(), grid.rows()),
    };
    let row_lo = win_lo_r.max(0).max(row0 - bound);
    let row_hi = (win_hi_r - h_rows)
        .min(grid.rows() - h_rows)
        .min(row0 + bound);
    let site_lo = win_lo_s.max(0);
    let site_hi = (win_hi_s - w_sites).min(grid.sites_x() - w_sites);

    let mut best: Option<(GridPos, Dbu)> = None;
    let mut scanned = 0u64;
    let mut spans = 0u64;
    let mut window_pixels = 0u64;

    if row_lo <= row_hi && site_lo <= site_hi && w_sites > 0 && h_rows > 0 {
        // Rows in nondecreasing vertical cost: |y(row) - from.y| is V-shaped
        // in the row index, so a two-pointer walk outward from its integer
        // argmin (clamped into range) visits rows cheapest-first.
        let q = (from.y - y0).div_euclid(rh);
        let row_star = if (y0 + (q + 1) * rh - from.y).abs() < (y0 + q * rh - from.y).abs() {
            q + 1
        } else {
            q
        };
        let row_c = row_star.clamp(row_lo, row_hi);
        // Same idea for the in-row anchor walk.
        let qx = (from.x - x0).div_euclid(sw);
        let site_star = if (x0 + (qx + 1) * sw - from.x).abs() < (x0 + qx * sw - from.x).abs() {
            qx + 1
        } else {
            qx
        };

        let mut down = row_c;
        let mut up = row_c + 1;
        loop {
            // Next row, cheapest vertical cost first (lower row on ties).
            let dy_down = (down >= row_lo).then(|| (y0 + down * rh - from.y).abs());
            let dy_up = (up <= row_hi).then(|| (y0 + up * rh - from.y).abs());
            let (row, dy_cost) = match (dy_down, dy_up) {
                (None, None) => break,
                (Some(a), None) => {
                    let r = down;
                    down -= 1;
                    (r, a)
                }
                (None, Some(b)) => {
                    let r = up;
                    up += 1;
                    (r, b)
                }
                (Some(a), Some(b)) => {
                    if a <= b {
                        let r = down;
                        down -= 1;
                        (r, a)
                    } else {
                        let r = up;
                        up += 1;
                        (r, b)
                    }
                }
            };
            // Monotone orders make these cuts exact, not heuristic.
            if limit.is_some_and(|l| dy_cost > l) {
                break;
            }
            if let Some((_, bd)) = best {
                if dy_cost > bd {
                    break;
                }
            }
            if shape.rail_constrained && !shape.rail.allows_row(row) {
                continue;
            }
            // Diamond width at this row plus the displacement-limit budget.
            let wx = bound - (row - row0).abs();
            if wx < 0 {
                continue;
            }
            let mut a_lo = site_lo.max(site0 - wx);
            let mut a_hi = site_hi.min(site0 + wx);
            if let Some(l) = limit {
                let bx = l - dy_cost;
                a_lo = a_lo.max((from.x - bx - x0 + sw - 1).div_euclid(sw));
                a_hi = a_hi.min((from.x + bx - x0).div_euclid(sw));
            }
            if a_lo > a_hi {
                continue;
            }
            window_pixels += (a_hi - a_lo + 1) as u64;
            let site_c = site_star.clamp(a_lo, a_hi);
            grid.for_each_free_span(row, h_rows, a_lo, a_hi + w_sites, |s_lo, s_hi| {
                let c_lo = s_lo.max(a_lo);
                let c_hi = (s_hi - w_sites).min(a_hi);
                if c_lo > c_hi {
                    return;
                }
                spans += 1;
                // Anchors outward from the cheapest x (lower site on ties):
                // horizontal cost is monotone along the walk, so the first
                // candidate the incumbent beats ends the span.
                let start = site_c.clamp(c_lo, c_hi);
                let mut left = start;
                let mut right = start + 1;
                loop {
                    let dl = (left >= c_lo).then(|| (x0 + left * sw - from.x).abs());
                    let dr = (right <= c_hi).then(|| (x0 + right * sw - from.x).abs());
                    let (site, dx_cost) = match (dl, dr) {
                        (None, None) => break,
                        (Some(a), None) => {
                            let s = left;
                            left -= 1;
                            (s, a)
                        }
                        (None, Some(b)) => {
                            let s = right;
                            right += 1;
                            (s, b)
                        }
                        (Some(a), Some(b)) => {
                            if a <= b {
                                let s = left;
                                left -= 1;
                                (s, a)
                            } else {
                                let s = right;
                                right += 1;
                                (s, b)
                            }
                        }
                    };
                    let disp = dx_cost + dy_cost;
                    if limit.is_some_and(|l| disp > l) {
                        break;
                    }
                    if let Some((bpos, bdisp)) = best {
                        if disp > bdisp {
                            break;
                        }
                        if disp == bdisp && (row, site) >= (bpos.row, bpos.site) {
                            continue;
                        }
                    }
                    scanned += 1;
                    let pos = GridPos { site, row };
                    if grid.check_place(design, cell, pos).is_ok() {
                        best = Some((pos, disp));
                    }
                }
            });
        }
    }
    if !telemetry::disabled() {
        telemetry::counter("legalize.search.pixels_scanned").add(scanned);
        telemetry::counter("legalize.search.calls").inc();
        telemetry::counter("legalize.search.spans").add(spans);
        telemetry::counter("legalize.search.span_skipped_pixels")
            .add(window_pixels.saturating_sub(scanned));
    }
    best
}

/// The pre-bitmap ring-enumeration search, preserved verbatim (on top of
/// [`PixelGrid::check_place_reference`]) as the equivalence oracle for
/// [`find_position`] and the honest "before" baseline in the bench harness.
/// Returns the same position and displacement as `find_position` for every
/// input.
pub fn find_position_reference(
    grid: &PixelGrid,
    design: &Design,
    cell: CellId,
    from: Point,
    cfg: SearchConfig,
) -> Option<(GridPos, Dbu)> {
    let sw = design.tech.site_width;
    let rh = design.tech.row_height;
    let shape = CellShape::of(design, cell);
    let CellShape {
        w_sites, h_rows, ..
    } = shape;

    let limit = cfg.displacement_limit.or(design.max_displacement);
    let bound = search_bound(grid, cfg, design, shape);

    // Clamp the ring centre into the representable placement range.
    let raw = grid.to_grid(design, from);
    let site0 = raw.site.clamp(0, (grid.sites_x() - w_sites).max(0));
    let row0 = raw.row.clamp(0, (grid.rows() - h_rows).max(0));
    let centre_dbu = grid.to_dbu(
        design,
        GridPos {
            site: site0,
            row: row0,
        },
    );
    let clamp_slack = centre_dbu.manhattan(Point::new(
        design.core.lo.x + raw.site * sw,
        design.core.lo.y + raw.row * rh,
    ));

    let mut best: Option<(GridPos, Dbu)> = None;
    let try_candidate = |pos: GridPos, best: &mut Option<(GridPos, Dbu)>| {
        if let Some(w) = cfg.window {
            if !w.contains_footprint(pos, w_sites, h_rows) {
                return;
            }
        }
        let p = grid.to_dbu(design, pos);
        let disp = p.manhattan(from);
        if let Some(l) = limit {
            if disp > l {
                return;
            }
        }
        if let Some((bpos, bdisp)) = *best {
            // Deterministic tie-break: lower row, then lower site.
            if disp > bdisp || (disp == bdisp && (pos.row, pos.site) >= (bpos.row, bpos.site)) {
                return;
            }
        }
        if grid.check_place_reference(design, cell, pos).is_ok() {
            *best = Some((pos, disp));
        }
    };

    for r in 0..=bound {
        if let Some((_, bdisp)) = best {
            // No candidate on ring r (or beyond) can be closer than
            // (r-2)·site_width minus the clamping slack.
            if (r - 2).max(0) * sw - clamp_slack > bdisp {
                break;
            }
        }
        if r == 0 {
            try_candidate(
                GridPos {
                    site: site0,
                    row: row0,
                },
                &mut best,
            );
            continue;
        }
        for dy in -r..=r {
            let row = row0 + dy;
            if row < 0 || row + h_rows > grid.rows() {
                continue;
            }
            let dx_abs = r - dy.abs();
            let candidates = if dx_abs == 0 {
                [0, 0]
            } else {
                [dx_abs, -dx_abs]
            };
            for (i, &dx) in candidates.iter().enumerate() {
                if dx_abs == 0 && i == 1 {
                    break;
                }
                let site = site0 + dx;
                if site < 0 || site + w_sites > grid.sites_x() {
                    continue;
                }
                try_candidate(GridPos { site, row }, &mut best);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};

    fn design_with(
        cells: &[(i64, u8, i64, i64)],
        fixed: &[(i64, u8, i64, i64)],
    ) -> (Design, PixelGrid) {
        let mut b = DesignBuilder::new("s", Technology::contest(), 40, 10);
        for (i, &(w, h, x, y)) in cells.iter().enumerate() {
            b.add_cell(format!("u{i}"), w, h, Point::new(x, y));
        }
        for (i, &(w, h, x, y)) in fixed.iter().enumerate() {
            b.add_fixed_cell(format!("m{i}"), w, h, Point::new(x, y));
        }
        let d = b.build();
        let g = PixelGrid::new(&d);
        (d, g)
    }

    #[test]
    fn already_legal_position_is_zero_displacement() {
        let (d, g) = design_with(&[(2, 1, 800, 2_000)], &[]);
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(800, 2_000),
            SearchConfig::default(),
        )
        .expect("found");
        assert_eq!(pos, GridPos { site: 4, row: 1 });
        assert_eq!(disp, 0);
    }

    #[test]
    fn off_grid_start_snaps_to_nearest() {
        // gp position off-grid by (90, 900): nearest legal pixel is the
        // snapped-down one at distance 990.
        let (d, g) = design_with(&[(1, 1, 890, 2_900)], &[]);
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(890, 2_900),
            SearchConfig::default(),
        )
        .expect("found");
        assert_eq!(pos, GridPos { site: 4, row: 1 });
        assert_eq!(disp, 90 + 900);
    }

    #[test]
    fn prefers_cheap_horizontal_over_expensive_vertical() {
        // Start pixel blocked: one site sideways costs 200 dbu, one row up
        // costs 2000 dbu. The search must pick the sideways pixel even
        // though both are ring-1 candidates.
        let (d, mut g) = {
            let (d, g) = design_with(&[(1, 1, 800, 2_000), (1, 1, 800, 2_000)], &[]);
            (d, g)
        };
        g.place(&d, CellId(1), GridPos { site: 4, row: 1 });
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(800, 2_000),
            SearchConfig::default(),
        )
        .expect("found");
        assert_eq!(disp, 200);
        assert_eq!(pos.row, 1);
        assert!(pos.site == 3 || pos.site == 5);
    }

    #[test]
    fn blocked_neighbourhood_found_across_macro() {
        // A macro covers the whole left half except the far column.
        let (d, g) = design_with(&[(1, 1, 0, 0)], &[(20, 4, 0, 0), (20, 4, 0, 8_000)]);
        let (pos, _) = find_position(&g, &d, CellId(0), Point::new(0, 0), SearchConfig::default())
            .expect("must escape the macro");
        assert!(g.check_place(&d, CellId(0), pos).is_ok());
        // Position is outside both macros.
        assert!(pos.site >= 20 || (4..8).contains(&pos.row));
    }

    #[test]
    fn displacement_limit_causes_failure() {
        let (d, g) = design_with(&[(1, 1, 0, 0)], &[(20, 4, 0, 0), (20, 4, 0, 8_000)]);
        let r = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(0, 0),
            SearchConfig {
                displacement_limit: Some(1_000),
                ..SearchConfig::default()
            },
        );
        assert_eq!(r, None, "every free pixel is farther than 1000 dbu");
    }

    #[test]
    fn max_radius_caps_the_search() {
        let (d, g) = design_with(&[(1, 1, 0, 0)], &[(20, 4, 0, 0), (20, 4, 0, 8_000)]);
        let r = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(0, 0),
            SearchConfig {
                max_radius: Some(3),
                ..SearchConfig::default()
            },
        );
        assert_eq!(r, None);
    }

    #[test]
    fn start_outside_core_clamps() {
        let (d, g) = design_with(&[(2, 1, -5_000, -5_000)], &[]);
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(-5_000, -5_000),
            SearchConfig::default(),
        )
        .expect("clamped into the core");
        assert_eq!(pos, GridPos { site: 0, row: 0 });
        assert_eq!(disp, 10_000);
    }

    #[test]
    fn multi_row_cell_requires_all_rows_free() {
        let (d, mut g) = design_with(&[(2, 3, 800, 2_000), (1, 1, 0, 0)], &[]);
        // Block one pixel in the middle of the would-be footprint.
        g.place(&d, CellId(1), GridPos { site: 5, row: 2 });
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(800, 2_000),
            SearchConfig::default(),
        )
        .expect("found elsewhere");
        assert!(disp > 0);
        assert!(g.check_place(&d, CellId(0), pos).is_ok());
    }

    #[test]
    fn finds_true_minimum_not_first_hit() {
        // Ring-order would visit (site0, row0+1) [2000 dbu] before
        // (site0+5, row0) [1000 dbu] at ring 5; the incumbent logic must
        // keep searching horizontally.
        let (d, mut g) = design_with(&[(1, 1, 1_000, 2_000), (5, 1, 0, 0)], &[]);
        // Occupy sites 3..8? place blocker of width 5 covering sites 3..8 at row 1.
        g.place(&d, CellId(1), GridPos { site: 3, row: 1 });
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(1_000, 2_000),
            SearchConfig::default(),
        )
        .expect("found");
        // Best is 3 sites left (site 2): 600 dbu, cheaper than any row move.
        assert_eq!(pos, GridPos { site: 2, row: 1 });
        assert_eq!(disp, 600);
    }

    #[test]
    fn window_restricts_candidates() {
        let (d, g) = design_with(&[(2, 1, 800, 2_000)], &[]);
        let win = GridWindow {
            lo_site: 10,
            lo_row: 3,
            hi_site: 20,
            hi_row: 8,
        };
        let cfg = SearchConfig {
            window: Some(win),
            ..SearchConfig::default()
        };
        let (pos, disp) = find_position(&g, &d, CellId(0), Point::new(800, 2_000), cfg)
            .expect("window holds free pixels");
        assert!(win.contains_footprint(pos, 2, 1));
        // Cheapest in-window anchor: site 10, row 3.
        assert_eq!(pos, GridPos { site: 10, row: 3 });
        assert_eq!(disp, (2_000 - 800) + (6_000 - 2_000));
        assert_eq!(
            find_position_reference(&g, &d, CellId(0), Point::new(800, 2_000), cfg),
            Some((pos, disp)),
            "reference honours the window identically"
        );
    }

    #[test]
    fn matches_reference_on_scattered_obstacles() {
        // Deterministic scatter of blockers and mixed-height cells, then
        // every movable cell's search must match the reference exactly.
        let mut cells: Vec<(i64, u8, i64, i64)> = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..25 {
            cells.push((
                1 + (next() % 4) as i64,
                1 + (next() % 3) as u8,
                (next() % 8_000) as i64,
                (next() % 20_000) as i64,
            ));
        }
        let (d, mut g) = design_with(&cells, &[(6, 2, 3_000, 8_000)]);
        // Pre-place every other cell to clutter the grid.
        for i in (0..25).step_by(2) {
            let id = CellId(i);
            if let Some((pos, _)) =
                find_position(&g, &d, id, d.cell(id).gp_pos, SearchConfig::default())
            {
                g.place(&d, id, pos);
            }
        }
        for i in (1..25).step_by(2) {
            let id = CellId(i);
            let from = d.cell(id).gp_pos;
            for cfg in [
                SearchConfig::default(),
                SearchConfig {
                    displacement_limit: Some(3_000),
                    ..SearchConfig::default()
                },
                SearchConfig {
                    max_radius: Some(6),
                    ..SearchConfig::default()
                },
            ] {
                assert_eq!(
                    find_position(&g, &d, id, from, cfg),
                    find_position_reference(&g, &d, id, from, cfg),
                    "cell {id} cfg {cfg:?}"
                );
            }
        }
    }
}
