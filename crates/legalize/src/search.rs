//! Pixel-wise diamond search (Sec. II-B, Fig. 2).
//!
//! For a target cell, the search "explores available pixel locations ...
//! using a diamond searching method within a search space. The search
//! boundary is determined to be proportional to the maximum displacement
//! constraint and cell size. Finally, the location with the minimum
//! displacement is designated to legalize the cell."
//!
//! Rings are enumerated by pixel Manhattan distance; candidates are costed
//! by *physical* displacement (`|Δx| + |Δy|` in dbu, so one row of vertical
//! motion is much more expensive than one site of horizontal motion), and
//! the search terminates once no later ring can beat the incumbent.

use rlleg_design::{CellId, Design};
use rlleg_geom::{Dbu, Point};

use crate::pixel::{GridPos, PixelGrid};

/// Tuning knobs for [`find_position`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchConfig {
    /// Hard cap on the pixel-Manhattan search radius; `None` derives the
    /// bound from the displacement limit and cell size (paper behaviour),
    /// falling back to the whole core when unconstrained.
    pub max_radius: Option<i64>,
    /// Per-cell displacement limit in dbu; candidates farther from the
    /// cell's global-placement position are skipped. Defaults to the
    /// design's `max_displacement`.
    pub displacement_limit: Option<Dbu>,
}

/// The best legal position found for `cell` around `from` (its
/// global-placement position), with its physical displacement in dbu, or
/// `None` when the search space holds no legal pixel.
pub fn find_position(
    grid: &PixelGrid,
    design: &Design,
    cell: CellId,
    from: Point,
    cfg: SearchConfig,
) -> Option<(GridPos, Dbu)> {
    let c = design.cell(cell);
    let sw = design.tech.site_width;
    let rh = design.tech.row_height;
    let w_sites = c.width / sw;
    let h_rows = i64::from(c.height_rows);

    let limit = cfg.displacement_limit.or(design.max_displacement);
    let bound = cfg.max_radius.unwrap_or_else(|| {
        let from_limit = limit.map(|l| l / sw + 2);
        let whole_core = grid.sites_x() + grid.rows();
        // "Proportional to the maximum displacement constraint and cell
        // size": the cell-size term lets big cells look a little farther
        // than the displacement budget alone would.
        from_limit
            .map(|b| (b + 2 * (w_sites + h_rows)).min(whole_core))
            .unwrap_or(whole_core)
    });

    // Clamp the ring centre into the representable placement range.
    let raw = grid.to_grid(design, from);
    let site0 = raw.site.clamp(0, (grid.sites_x() - w_sites).max(0));
    let row0 = raw.row.clamp(0, (grid.rows() - h_rows).max(0));
    let centre_dbu = grid.to_dbu(
        design,
        GridPos {
            site: site0,
            row: row0,
        },
    );
    let clamp_slack = centre_dbu.manhattan(Point::new(
        design.core.lo.x + raw.site * sw,
        design.core.lo.y + raw.row * rh,
    ));

    let mut best: Option<(GridPos, Dbu)> = None;
    // Candidate pixels examined, flushed to telemetry once per search so the
    // hot loop touches only a local cell.
    let scanned = std::cell::Cell::new(0u64);
    let try_candidate = |pos: GridPos, best: &mut Option<(GridPos, Dbu)>| {
        scanned.set(scanned.get() + 1);
        let p = grid.to_dbu(design, pos);
        let disp = p.manhattan(from);
        if let Some(l) = limit {
            if disp > l {
                return;
            }
        }
        if let Some((bpos, bdisp)) = *best {
            // Deterministic tie-break: lower row, then lower site.
            if disp > bdisp || (disp == bdisp && (pos.row, pos.site) >= (bpos.row, bpos.site)) {
                return;
            }
        }
        if grid.check_place(design, cell, pos).is_ok() {
            *best = Some((pos, disp));
        }
    };

    for r in 0..=bound {
        if let Some((_, bdisp)) = best {
            // No candidate on ring r (or beyond) can be closer than
            // (r-2)·site_width minus the clamping slack.
            if (r - 2).max(0) * sw - clamp_slack > bdisp {
                break;
            }
        }
        if r == 0 {
            try_candidate(
                GridPos {
                    site: site0,
                    row: row0,
                },
                &mut best,
            );
            continue;
        }
        for dy in -r..=r {
            let row = row0 + dy;
            if row < 0 || row + h_rows > grid.rows() {
                continue;
            }
            let dx_abs = r - dy.abs();
            let candidates = if dx_abs == 0 {
                [0, 0]
            } else {
                [dx_abs, -dx_abs]
            };
            for (i, &dx) in candidates.iter().enumerate() {
                if dx_abs == 0 && i == 1 {
                    break;
                }
                let site = site0 + dx;
                if site < 0 || site + w_sites > grid.sites_x() {
                    continue;
                }
                try_candidate(GridPos { site, row }, &mut best);
            }
        }
    }
    if !telemetry::disabled() {
        telemetry::counter("legalize.search.pixels_scanned").add(scanned.get());
        telemetry::counter("legalize.search.calls").inc();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};

    fn design_with(
        cells: &[(i64, u8, i64, i64)],
        fixed: &[(i64, u8, i64, i64)],
    ) -> (Design, PixelGrid) {
        let mut b = DesignBuilder::new("s", Technology::contest(), 40, 10);
        for (i, &(w, h, x, y)) in cells.iter().enumerate() {
            b.add_cell(format!("u{i}"), w, h, Point::new(x, y));
        }
        for (i, &(w, h, x, y)) in fixed.iter().enumerate() {
            b.add_fixed_cell(format!("m{i}"), w, h, Point::new(x, y));
        }
        let d = b.build();
        let g = PixelGrid::new(&d);
        (d, g)
    }

    #[test]
    fn already_legal_position_is_zero_displacement() {
        let (d, g) = design_with(&[(2, 1, 800, 2_000)], &[]);
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(800, 2_000),
            SearchConfig::default(),
        )
        .expect("found");
        assert_eq!(pos, GridPos { site: 4, row: 1 });
        assert_eq!(disp, 0);
    }

    #[test]
    fn off_grid_start_snaps_to_nearest() {
        // gp position off-grid by (90, 900): nearest legal pixel is the
        // snapped-down one at distance 990.
        let (d, g) = design_with(&[(1, 1, 890, 2_900)], &[]);
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(890, 2_900),
            SearchConfig::default(),
        )
        .expect("found");
        assert_eq!(pos, GridPos { site: 4, row: 1 });
        assert_eq!(disp, 90 + 900);
    }

    #[test]
    fn prefers_cheap_horizontal_over_expensive_vertical() {
        // Start pixel blocked: one site sideways costs 200 dbu, one row up
        // costs 2000 dbu. The search must pick the sideways pixel even
        // though both are ring-1 candidates.
        let (d, mut g) = {
            let (d, g) = design_with(&[(1, 1, 800, 2_000), (1, 1, 800, 2_000)], &[]);
            (d, g)
        };
        g.place(&d, CellId(1), GridPos { site: 4, row: 1 });
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(800, 2_000),
            SearchConfig::default(),
        )
        .expect("found");
        assert_eq!(disp, 200);
        assert_eq!(pos.row, 1);
        assert!(pos.site == 3 || pos.site == 5);
    }

    #[test]
    fn blocked_neighbourhood_found_across_macro() {
        // A macro covers the whole left half except the far column.
        let (d, g) = design_with(&[(1, 1, 0, 0)], &[(20, 4, 0, 0), (20, 4, 0, 8_000)]);
        let (pos, _) = find_position(&g, &d, CellId(0), Point::new(0, 0), SearchConfig::default())
            .expect("must escape the macro");
        assert!(g.check_place(&d, CellId(0), pos).is_ok());
        // Position is outside both macros.
        assert!(pos.site >= 20 || (4..8).contains(&pos.row));
    }

    #[test]
    fn displacement_limit_causes_failure() {
        let (d, g) = design_with(&[(1, 1, 0, 0)], &[(20, 4, 0, 0), (20, 4, 0, 8_000)]);
        let r = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(0, 0),
            SearchConfig {
                max_radius: None,
                displacement_limit: Some(1_000),
            },
        );
        assert_eq!(r, None, "every free pixel is farther than 1000 dbu");
    }

    #[test]
    fn max_radius_caps_the_search() {
        let (d, g) = design_with(&[(1, 1, 0, 0)], &[(20, 4, 0, 0), (20, 4, 0, 8_000)]);
        let r = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(0, 0),
            SearchConfig {
                max_radius: Some(3),
                displacement_limit: None,
            },
        );
        assert_eq!(r, None);
    }

    #[test]
    fn start_outside_core_clamps() {
        let (d, g) = design_with(&[(2, 1, -5_000, -5_000)], &[]);
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(-5_000, -5_000),
            SearchConfig::default(),
        )
        .expect("clamped into the core");
        assert_eq!(pos, GridPos { site: 0, row: 0 });
        assert_eq!(disp, 10_000);
    }

    #[test]
    fn multi_row_cell_requires_all_rows_free() {
        let (d, mut g) = design_with(&[(2, 3, 800, 2_000), (1, 1, 0, 0)], &[]);
        // Block one pixel in the middle of the would-be footprint.
        g.place(&d, CellId(1), GridPos { site: 5, row: 2 });
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(800, 2_000),
            SearchConfig::default(),
        )
        .expect("found elsewhere");
        assert!(disp > 0);
        assert!(g.check_place(&d, CellId(0), pos).is_ok());
    }

    #[test]
    fn finds_true_minimum_not_first_hit() {
        // Ring-order would visit (site0, row0+1) [2000 dbu] before
        // (site0+5, row0) [1000 dbu] at ring 5; the incumbent logic must
        // keep searching horizontally.
        let (d, mut g) = design_with(&[(1, 1, 1_000, 2_000), (5, 1, 0, 0)], &[]);
        // Occupy sites 3..8? place blocker of width 5 covering sites 3..8 at row 1.
        g.place(&d, CellId(1), GridPos { site: 3, row: 1 });
        let (pos, disp) = find_position(
            &g,
            &d,
            CellId(0),
            Point::new(1_000, 2_000),
            SearchConfig::default(),
        )
        .expect("found");
        // Best is 3 sites left (site 2): 600 dbu, cheaper than any row move.
        assert_eq!(pos, GridPos { site: 2, row: 1 });
        assert_eq!(disp, 600);
    }
}
