//! Two-level coarse-tile → fine-Gcell schedule with work stealing.
//!
//! The flat per-Gcell fan-out claimed Gcells one at a time off a shared
//! counter, which serializes workers on the counter for big grids and
//! gives no locality: consecutive claims can land on opposite corners of
//! the die. The hierarchical schedule groups the Gcell grid into fixed
//! 2×2 coarse tiles, seeds every worker's deque with tiles round-robin,
//! and lets idle workers steal from the back of a sibling's deque. A
//! worker solves all Gcells of a tile before taking the next one, so its
//! window snapshots stay in one region of the die.
//!
//! **Determinism:** the tile partition and the per-tile Gcell order depend
//! only on the Gcell grid — never on worker count or timing. Work stealing
//! only changes *which worker* solves a tile; solves are snapshot-isolated
//! so the per-Gcell outcome is schedule-independent, and the phase-2 merge
//! replays results in the fixed [`TileSchedule::merge_order`]. That is what
//! keeps legalization bit-identical across thread counts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::gcell::GcellGrid;

/// Coarse tiling of a [`GcellGrid`]: fixed [`TileSchedule::TILE`]² blocks
/// of Gcells, independent of worker count, with a deterministic per-tile
/// subepisode order.
#[derive(Debug, Clone)]
pub struct TileSchedule {
    /// Gcell indices per tile, in tile-local subepisode order
    /// (descending movable-cell count, then index).
    tiles: Vec<Vec<usize>>,
}

impl TileSchedule {
    /// Coarse tile side length, in Gcells.
    pub const TILE: usize = 2;

    /// Tiles `gcells` into 2×2 blocks (edge tiles may be smaller).
    pub fn new(gcells: &GcellGrid) -> Self {
        let (nx, ny) = gcells.shape();
        let tx = nx.div_ceil(Self::TILE);
        let ty = ny.div_ceil(Self::TILE);
        let mut tiles = vec![Vec::new(); tx * ty];
        for gy in 0..ny {
            for gx in 0..nx {
                let t = (gy / Self::TILE) * tx + gx / Self::TILE;
                tiles[t].push(gy * nx + gx);
            }
        }
        for tile in &mut tiles {
            tile.sort_by_key(|&g| (std::cmp::Reverse(gcells.cells_of(g).len()), g));
        }
        Self { tiles }
    }

    /// Number of coarse tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// `true` when there are no tiles (only for an empty Gcell grid).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Gcell indices of tile `t`, in tile-local subepisode order.
    pub fn gcells(&self, t: usize) -> &[usize] {
        &self.tiles[t]
    }

    /// The deterministic phase-2 merge order: tiles ascending, Gcells in
    /// tile-local subepisode order within each tile. Depends only on the
    /// Gcell grid, never on worker count or timing.
    pub fn merge_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.tiles.iter().flat_map(|t| t.iter().copied())
    }
}

/// Per-worker deques of tile indices with lock-based stealing.
///
/// Each worker owns one deque, seeded round-robin. A worker pops from the
/// front of its own deque; when empty it steals from the *back* of the
/// first non-empty sibling deque (scanning round-robin from its right
/// neighbour), so steals grab the work the owner would reach last.
#[derive(Debug)]
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl StealQueues {
    /// Distributes tiles `0..num_tiles` round-robin over `workers` deques.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn seed(num_tiles: usize, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for t in 0..num_tiles {
            queues[t % workers].push_back(t);
        }
        Self {
            queues: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Next tile for worker `w`: own front, else steal a sibling's back.
    /// `None` once every deque is drained (nothing is ever re-queued).
    pub fn next(&self, w: usize) -> Option<usize> {
        let pop = |q: &Mutex<VecDeque<usize>>, back: bool| {
            let mut q = q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if back {
                q.pop_back()
            } else {
                q.pop_front()
            }
        };
        if let Some(t) = pop(&self.queues[w], false) {
            return Some(t);
        }
        for off in 1..self.queues.len() {
            let victim = (w + off) % self.queues.len();
            if let Some(t) = pop(&self.queues[victim], true) {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Number of successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn grid(nx: usize, ny: usize) -> GcellGrid {
        let mut b = DesignBuilder::new("sched", Technology::contest(), 100, 40);
        for i in 0..120usize {
            let x = (i as i64 * 997) % 19_000;
            let y = (i as i64 * 7_919) % 79_000;
            b.add_cell(format!("u{i}"), 1, 1, Point::new(x, y));
        }
        GcellGrid::new(&b.build(), nx, ny)
    }

    #[test]
    fn tiles_partition_the_gcells() {
        for (nx, ny) in [(1, 1), (2, 2), (3, 3), (5, 4), (5, 5)] {
            let g = grid(nx, ny);
            let sched = TileSchedule::new(&g);
            let mut seen: Vec<usize> = sched.merge_order().collect();
            assert_eq!(seen.len(), g.len(), "{nx}x{ny}");
            seen.sort_unstable();
            assert_eq!(seen, (0..g.len()).collect::<Vec<_>>(), "{nx}x{ny}");
            // No tile exceeds TILE^2 gcells.
            for t in 0..sched.len() {
                assert!(sched.gcells(t).len() <= TileSchedule::TILE * TileSchedule::TILE);
            }
        }
    }

    #[test]
    fn tile_local_order_is_descending_count() {
        let g = grid(4, 4);
        let sched = TileSchedule::new(&g);
        for t in 0..sched.len() {
            let counts: Vec<usize> = sched
                .gcells(t)
                .iter()
                .map(|&gc| g.cells_of(gc).len())
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] >= w[1]),
                "tile {t}: {counts:?}"
            );
        }
    }

    #[test]
    fn steal_queues_drain_every_tile_exactly_once() {
        for workers in [1usize, 2, 3, 5] {
            let q = StealQueues::seed(11, workers);
            let mut got = Vec::new();
            // Worker 0 drains everything: 11 - ceil(11/workers) steals.
            while let Some(t) = q.next(0) {
                got.push(t);
            }
            got.sort_unstable();
            assert_eq!(got, (0..11).collect::<Vec<_>>(), "workers={workers}");
            let own = 11usize.div_ceil(workers);
            assert_eq!(q.steals(), (11 - own) as u64, "workers={workers}");
            assert_eq!(q.next(0), None, "drained queues stay empty");
        }
    }
}
