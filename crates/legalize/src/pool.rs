//! A persistent worker pool for repeated parallel legalization calls.
//!
//! `crossbeam::thread::scope` spawns and joins OS threads on every call,
//! which dwarfs the work of a single `run_gcells_parallel` invocation when
//! the bench loop or the trainer's subepisodes call it thousands of times.
//! [`WorkerPool`] keeps detached daemon threads parked on a condvar and
//! hands them lifetime-erased jobs; [`WorkerPool::scope`] provides the same
//! borrow-the-stack ergonomics as a scoped spawn by blocking until every
//! job spawned inside it has finished (rayon-style), so jobs may freely
//! borrow from the caller's stack frame.
//!
//! Workers are spawned lazily and never torn down: an idle pool costs one
//! parked thread per worker and zero CPU. Panics inside jobs are caught,
//! carried back, and re-raised on the scope caller's thread once all
//! outstanding jobs have drained, so a panicking job can never unwind past
//! borrowed state while siblings still run.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Locks `m`, recovering the data from a poisoned mutex instead of
/// propagating the poison.
///
/// Every value behind the pool's mutexes (a job queue, a pending counter, a
/// panic payload slot) is updated in a single statement and can never be
/// observed torn, so a panic that poisons one of them leaves the data
/// valid. Propagating the poison instead would wedge the *process-global*
/// pool for every later caller — one panicking job must never take the
/// whole pool down (see `panicked_job_does_not_wedge_global_pool`).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state: the job queue and its wakeup.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

/// Per-scope completion state: outstanding job count and the first panic.
struct ScopeState {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn inc(&self) {
        *lock_ignore_poison(&self.pending) += 1;
    }

    fn dec_and_notify(&self) {
        let mut p = lock_ignore_poison(&self.pending);
        *p -= 1;
        if *p == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut p = lock_ignore_poison(&self.pending);
        while *p > 0 {
            p = self
                .all_done
                .wait(p)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// A persistent pool of detached worker threads executing submitted jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Worker threads spawned so far (only ever grows).
    spawned: AtomicUsize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are added by
    /// [`ensure_workers`](Self::ensure_workers).
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                job_ready: Condvar::new(),
            }),
            spawned: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Grows the pool to at least `n` worker threads (never shrinks).
    /// Threads are detached daemons that park on the queue when idle.
    pub fn ensure_workers(&self, n: usize) {
        loop {
            let have = self.spawned.load(Ordering::Relaxed);
            if have >= n {
                return;
            }
            if self
                .spawned
                .compare_exchange(have, have + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("rlleg-pool-{have}"))
                .spawn(move || worker_main(&shared))
                .expect("spawning pool worker");
        }
    }

    /// Runs `f` with a [`Scope`] whose spawned jobs may borrow from the
    /// caller's stack; returns only after every spawned job finished.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of `f` or of any spawned job (after all
    /// jobs drained, so borrows never dangle).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        // Catch a panicking `f` too: the wait below must run before any
        // unwinding leaves this frame, or jobs could outlive their borrows.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        state.wait_all();
        match result {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                let job_panic = lock_ignore_poison(&state.panic).take();
                if let Some(p) = job_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    /// Enqueues an already-erased job and wakes one worker.
    fn push(&self, job: Job) {
        lock_ignore_poison(&self.shared.queue).push_back(job);
        self.shared.job_ready.notify_one();
    }
}

/// Worker main loop: pop a job or park until one arrives.
fn worker_main(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock_ignore_poison(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared
                    .job_ready
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        job();
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`]; jobs
/// spawned through it may borrow anything living at least as long as the
/// scope call (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Submits `job` to the pool. It may run on any worker thread, at any
    /// time before the enclosing [`WorkerPool::scope`] call returns.
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.inc();
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: `WorkerPool::scope` blocks until `state.pending` drains
        // back to zero before returning (even when its closure panics), so
        // the job — and everything it borrows with lifetime 'env — is
        // guaranteed to have finished running before 'env can end. The
        // erasure only widens the lifetime the queue stores, never the
        // region the job actually runs in.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        self.pool.push(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            if let Err(p) = result {
                *lock_ignore_poison(&state.panic) = Some(p);
            }
            state.dec_and_notify();
        }));
    }
}

/// The process-wide pool used by
/// [`Legalizer::run_gcells_parallel`](crate::Legalizer::run_gcells_parallel);
/// shared so repeated calls (bench iterations, trainer subepisodes) reuse
/// the same threads.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

/// The global pool, grown to at least `n` workers (minimum one).
///
/// One-liner entry point for callers that scope jobs immediately — the
/// asynchronous trainer parks its agents here so repeated `train()` calls
/// (benches, the serve loop) reuse the same threads instead of spawning
/// per call.
pub fn with_workers(n: usize) -> &'static WorkerPool {
    let pool = global();
    pool.ensure_workers(n.max(1));
    pool
}

/// Resolves a `RLLEG_THREADS`-style override string: a positive integer
/// wins, everything else (absent, empty, zero, garbage) falls back to the
/// machine's available parallelism. Factored out of [`default_threads`] so
/// the parsing is testable without mutating process environment.
pub fn threads_override(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// The worker-thread count every "0 = default" knob in the workspace
/// resolves to: the `RLLEG_THREADS` environment variable when set to a
/// positive integer, otherwise the machine's available parallelism.
/// Results are bit-identical for any thread count — this only tunes
/// latency versus interference on shared hosts.
pub fn default_threads() -> usize {
    threads_override(std::env::var("RLLEG_THREADS").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_borrow_scope_locals() {
        let pool = WorkerPool::new();
        pool.ensure_workers(3);
        let values: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in values.chunks(7) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn scopes_reuse_threads() {
        let pool = WorkerPool::new();
        pool.ensure_workers(2);
        assert_eq!(pool.workers(), 2);
        for round in 0..50u64 {
            let hit = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..4 {
                    let hit = &hit;
                    s.spawn(move || {
                        hit.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hit.into_inner(), 4, "round {round}");
        }
        assert_eq!(pool.workers(), 2, "no per-scope spawning");
        pool.ensure_workers(1);
        assert_eq!(pool.workers(), 2, "never shrinks");
    }

    #[test]
    fn empty_scope_returns_value() {
        let pool = WorkerPool::new();
        assert_eq!(pool.scope(|_| 42), 42);
    }

    #[test]
    fn job_panic_propagates_after_drain() {
        let pool = WorkerPool::new();
        pool.ensure_workers(2);
        let finished = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must cross the scope");
        assert_eq!(finished.load(Ordering::Relaxed), 7, "siblings all ran");
        // The pool survives a panicked scope.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.into_inner(), 1);
    }

    #[test]
    fn panicked_job_does_not_wedge_global_pool() {
        // A panicking job poisons the scope mutexes it touches; the pool
        // must recover the data instead of propagating the poison, or the
        // *process-global* pool would return `Err` to every later caller.
        let pool = global();
        pool.ensure_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("poison attempt"));
            });
        }));
        assert!(result.is_err(), "job panic must surface to the caller");
        // The same global pool keeps serving scopes afterwards.
        for _ in 0..3 {
            let ok = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..4 {
                    let ok = &ok;
                    s.spawn(move || {
                        ok.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(ok.into_inner(), 4, "global pool wedged after panic");
        }
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
    }

    #[test]
    fn threads_override_parses_positive_integers_only() {
        let fallback = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(threads_override(Some("3")), 3);
        assert_eq!(threads_override(Some(" 8 ")), 8, "whitespace is trimmed");
        assert_eq!(threads_override(None), fallback, "unset falls back");
        assert_eq!(threads_override(Some("")), fallback, "empty falls back");
        assert_eq!(threads_override(Some("0")), fallback, "zero falls back");
        assert_eq!(threads_override(Some("-2")), fallback);
        assert_eq!(threads_override(Some("lots")), fallback);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
