//! The 13 per-cell features of Table I, with incremental updates.
//!
//! | # | Feature | Meaning |
//! |---|---------|---------|
//! | 0 | `X`     | x-coordinate of the cell |
//! | 1 | `Y`     | y-coordinate of the cell |
//! | 2 | `W`     | cell width |
//! | 3 | `H`     | cell height |
//! | 4 | `N`     | number of nets connected to the cell |
//! | 5 | `OV_c`  | number of cells overlapping the cell |
//! | 6 | `OD_c`  | avg. distance of the 2 nearest obstacles/boundaries |
//! | 7 | `CA_B`  | total movable-cell area in the cell's bin |
//! | 8 | `A_B`   | placeable area of the bin (minus macros) |
//! | 9 | `OV_B`  | number of overlapped cells in the bin |
//! | 10| `DE_B`  | bin density error `(CA_B − CA_avg)²` (Eq. 1) |
//! | 11| `NC_G`  | number of movable cells in the cell's Gcell |
//! | 12| `NLC_G` | number of already-legalized cells in that Gcell |
//!
//! The paper notes feature maintenance dominates runtime ("about 80 % of
//! the time spent on the feature extraction phase"); [`FeatureSpace`]
//! therefore updates everything incrementally when a cell moves instead of
//! recomputing the design.

use rlleg_design::{CellId, Design};
use rlleg_geom::{rtree::RTree, Point, Rect};

use crate::gcell::{BinGrid, GcellGrid};

/// Number of features per cell (the paper's `F`).
pub const NUM_FEATURES: usize = 13;

/// Incrementally-maintained feature state for one design.
#[derive(Debug, Clone)]
pub struct FeatureSpace {
    bins: BinGrid,
    /// Area unit: one pixel (site width × row height) so squared terms stay
    /// in comfortable `f32` range.
    pixel_area: f64,
    // Static per cell. Width/height are SoA columns so features 2–3 of a
    // state matrix stream contiguously instead of striding over `Cell`s.
    net_count: Vec<f32>,
    width_dbu: Vec<f32>,
    height_dbu: Vec<f32>,
    gcell_of_cell: Vec<usize>,
    // Static per design.
    obstacles: RTree<u32>,
    gcell_count: Vec<i32>,
    avg_bin_area: f64,
    bin_placeable: Vec<f64>,
    // Dynamic.
    movable_tree: RTree<u32>,
    overlap_count: Vec<i32>,
    bin_of_cell: Vec<usize>,
    bin_cell_area: Vec<f64>,
    bin_overlap_cells: Vec<i32>,
    gcell_legalized: Vec<i32>,
}

impl FeatureSpace {
    /// Builds the feature state for `design` at its current positions.
    ///
    /// `gcells` defines the Gcell features; bins target ~20 cells each
    /// (footnote 1 of the paper).
    pub fn new(design: &Design, gcells: &GcellGrid) -> Self {
        let bins = BinGrid::new(design, 20);
        let rh = design.tech.row_height;
        let pixel_area = (design.tech.site_width * rh) as f64;
        let n = design.num_cells();

        let net_count: Vec<f32> = design
            .cell_ids()
            .map(|id| design.nets_of(id).len() as f32)
            .collect();
        let width_dbu: Vec<f32> = design.cells.iter().map(|c| c.width as f32).collect();
        let height_dbu: Vec<f32> = design.cells.iter().map(|c| c.height(rh) as f32).collect();

        let mut gcell_of_cell = vec![usize::MAX; n];
        let mut gcell_count = vec![0i32; gcells.len()];
        for (g, count) in gcell_count.iter_mut().enumerate() {
            for &id in gcells.cells_of(g) {
                gcell_of_cell[id.index()] = g;
            }
            *count = gcells.cells_of(g).len() as i32;
        }

        let obstacles = RTree::bulk_load(
            design
                .fixed_ids()
                .map(|id| (design.cell(id).rect(rh), id.0))
                .collect(),
        );

        // Placeable area per bin: bin area minus macro overlap.
        let mut bin_placeable = Vec::with_capacity(bins.len());
        for b in 0..bins.len() {
            let bb = bins.bounds(b);
            let blocked: i64 = obstacles.query(&bb).map(|(r, _)| r.overlap_area(&bb)).sum();
            bin_placeable.push(((bb.area() - blocked).max(0)) as f64 / pixel_area);
        }

        let movable_tree = RTree::bulk_load(
            design
                .movable_ids()
                .map(|id| (design.cell(id).rect(rh), id.0))
                .collect(),
        );

        let mut bin_of_cell = vec![usize::MAX; n];
        let mut bin_cell_area = vec![0.0f64; bins.len()];
        let mut overlap_count = vec![0i32; n];
        for id in design.movable_ids() {
            let c = design.cell(id);
            let b = bins.bin_of(cell_center(c.pos, c.rect(rh)));
            bin_of_cell[id.index()] = b;
            bin_cell_area[b] += c.area(rh) as f64 / pixel_area;
            let r = c.rect(rh);
            let movable_overlaps = movable_tree.query(&r).filter(|(_, &v)| v != id.0).count();
            let fixed_overlaps = obstacles.count_overlapping(&r);
            overlap_count[id.index()] = (movable_overlaps + fixed_overlaps) as i32;
        }
        let mut bin_overlap_cells = vec![0i32; bins.len()];
        for id in design.movable_ids() {
            if overlap_count[id.index()] > 0 {
                bin_overlap_cells[bin_of_cell[id.index()]] += 1;
            }
        }
        let total_area: f64 = bin_cell_area.iter().sum();
        let avg_bin_area = total_area / bins.len() as f64;

        Self {
            bins,
            pixel_area,
            net_count,
            width_dbu,
            height_dbu,
            gcell_of_cell,
            obstacles,
            gcell_count,
            avg_bin_area,
            bin_placeable,
            movable_tree,
            overlap_count,
            bin_of_cell,
            bin_cell_area,
            bin_overlap_cells,
            gcell_legalized: vec![0; gcells.len()],
        }
    }

    /// The bin grid in use.
    pub fn bins(&self) -> &BinGrid {
        &self.bins
    }

    /// Current overlap count of `cell` (feature 5).
    pub fn overlap_count(&self, cell: CellId) -> i32 {
        self.overlap_count[cell.index()]
    }

    /// Number of legalized cells recorded for Gcell `g` (feature 12).
    pub fn legalized_in_gcell(&self, g: usize) -> i32 {
        self.gcell_legalized[g]
    }

    /// The 13 features of `cell` at the design's current state.
    pub fn features_of(&self, design: &Design, cell: CellId) -> [f32; NUM_FEATURES] {
        let rh = design.tech.row_height;
        let c = design.cell(cell);
        let i = cell.index();
        let b = self.bin_of_cell[i];
        let g = self.gcell_of_cell[i];
        let ca = self.bin_cell_area[b];
        let de = (ca - self.avg_bin_area) * (ca - self.avg_bin_area);
        [
            c.pos.x as f32,
            c.pos.y as f32,
            self.width_dbu[i],
            self.height_dbu[i],
            self.net_count[i],
            self.overlap_count[i] as f32,
            self.obstacle_distance(design, c.rect(rh)),
            ca as f32,
            self.bin_placeable[b] as f32,
            self.bin_overlap_cells[b] as f32,
            de as f32,
            self.gcell_count[g] as f32,
            self.gcell_legalized[g] as f32,
        ]
    }

    /// Row-major `cells.len() × 13` state matrix (unnormalized; the RL
    /// framework applies feature-wise L2 normalization).
    pub fn state(&self, design: &Design, cells: &[CellId]) -> Vec<f32> {
        let mut out = Vec::new();
        self.state_into(design, cells, &mut out);
        out
    }

    /// [`state`](Self::state) written into `out`, reusing its allocation.
    ///
    /// The trainer recomputes same-shaped states every step of a
    /// subepisode; routing those through one scratch buffer removes a
    /// `cells.len() × 13` allocation per step.
    pub fn state_into(&self, design: &Design, cells: &[CellId], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(cells.len() * NUM_FEATURES);
        for &c in cells {
            out.extend_from_slice(&self.features_of(design, c));
        }
    }

    /// Average Manhattan distance of the two nearest obstacles or design
    /// boundaries from the cell (feature 6, `OD`).
    fn obstacle_distance(&self, design: &Design, rect: Rect) -> f32 {
        if !telemetry::disabled() {
            telemetry::counter("legalize.features.rtree_queries").inc();
        }
        let centre = rect.center();
        let mut dists: Vec<i64> = self
            .obstacles
            .nearest(centre, 2)
            .map(|(_, _, d)| d)
            .collect();
        dists.push(centre.x - design.core.lo.x);
        dists.push(design.core.hi.x - centre.x);
        dists.push(centre.y - design.core.lo.y);
        dists.push(design.core.hi.y - centre.y);
        dists.sort_unstable();
        (dists[0] + dists[1]) as f32 / 2.0
    }

    /// Updates all dynamic features after `cell` moved from `old_pos` to
    /// its current `design` position. Call *after* mutating the design.
    pub fn on_cell_moved(&mut self, design: &Design, cell: CellId, old_pos: Point) {
        if !telemetry::disabled() {
            // Old-footprint query, new-footprint query, obstacle overlap count.
            telemetry::counter("legalize.features.rtree_queries").add(3);
        }
        let rh = design.tech.row_height;
        let c = design.cell(cell);
        if c.pos == old_pos {
            return;
        }
        let i = cell.index();
        let old_rect = c.rect_at(old_pos, rh);
        let new_rect = c.rect(rh);

        // 1. Retract overlap contributions at the old position.
        let partners_old: Vec<u32> = self
            .movable_tree
            .query(&old_rect)
            .filter(|(_, &v)| v != cell.0)
            .map(|(_, &v)| v)
            .collect();
        for p in partners_old {
            self.add_overlap(CellId(p), -1);
        }
        let removed = self.movable_tree.remove_if(&old_rect, |&v| v == cell.0);
        debug_assert!(removed.is_some(), "cell {cell} missing from movable tree");

        // 2. Move the cell between bins.
        let old_bin = self.bin_of_cell[i];
        let new_bin = self.bins.bin_of(cell_center(c.pos, new_rect));
        let area = c.area(rh) as f64 / self.pixel_area;
        if self.overlap_count[i] > 0 {
            self.bin_overlap_cells[old_bin] -= 1;
        }
        self.bin_cell_area[old_bin] -= area;
        self.bin_cell_area[new_bin] += area;
        self.bin_of_cell[i] = new_bin;

        // 3. Add overlap contributions at the new position.
        let partners_new: Vec<u32> = self
            .movable_tree
            .query(&new_rect)
            .filter(|(_, &v)| v != cell.0)
            .map(|(_, &v)| v)
            .collect();
        for &p in &partners_new {
            self.add_overlap(CellId(p), 1);
        }
        let own = partners_new.len() as i32 + self.obstacles.count_overlapping(&new_rect) as i32;
        self.overlap_count[i] = own;
        if own > 0 {
            self.bin_overlap_cells[new_bin] += 1;
        }
        self.movable_tree.insert(new_rect, cell.0);
    }

    /// Records that `cell` (which just moved from `old_pos`) is now
    /// legalized: updates movement features and the Gcell legalized count.
    pub fn on_cell_legalized(&mut self, design: &Design, cell: CellId, old_pos: Point) {
        self.on_cell_moved(design, cell, old_pos);
        self.gcell_legalized[self.gcell_of_cell[cell.index()]] += 1;
    }

    fn add_overlap(&mut self, cell: CellId, delta: i32) {
        let i = cell.index();
        let old = self.overlap_count[i];
        let new = old + delta;
        debug_assert!(new >= 0, "negative overlap count for {cell}");
        self.overlap_count[i] = new;
        let b = self.bin_of_cell[i];
        if old <= 0 && new > 0 {
            self.bin_overlap_cells[b] += 1;
        } else if old > 0 && new <= 0 {
            self.bin_overlap_cells[b] -= 1;
        }
    }
}

/// Bin membership is decided by the cell centre.
fn cell_center(_pos: Point, rect: Rect) -> Point {
    rect.center()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcell::GcellGrid;
    use rlleg_design::{DesignBuilder, Technology};

    fn design() -> Design {
        let mut b = DesignBuilder::new("f", Technology::contest(), 50, 20);
        // Two overlapping cells and one clean one.
        let a = b.add_cell("a", 2, 1, Point::new(1_000, 0));
        let c = b.add_cell("c", 2, 1, Point::new(1_100, 0));
        b.add_cell("d", 1, 1, Point::new(8_000, 30_000));
        b.add_fixed_cell("m", 4, 4, Point::new(4_000, 10_000));
        b.add_net("n0", vec![(a, 0, 0), (c, 0, 0)]);
        b.add_net("n1", vec![(a, 0, 0)]);
        b.build()
    }

    fn fresh(d: &Design) -> FeatureSpace {
        FeatureSpace::new(d, &GcellGrid::new(d, 2, 2))
    }

    #[test]
    fn static_features() {
        let d = design();
        let fs = fresh(&d);
        let fa = fs.features_of(&d, CellId(0));
        assert_eq!(fa[0], 1_000.0);
        assert_eq!(fa[1], 0.0);
        assert_eq!(fa[2], 400.0);
        assert_eq!(fa[3], 2_000.0);
        assert_eq!(fa[4], 2.0, "two nets on cell a");
        let fd = fs.features_of(&d, CellId(2));
        assert_eq!(fd[4], 0.0, "no nets on cell d");
    }

    #[test]
    fn overlap_counts() {
        let d = design();
        let fs = fresh(&d);
        assert_eq!(fs.overlap_count(CellId(0)), 1);
        assert_eq!(fs.overlap_count(CellId(1)), 1);
        assert_eq!(fs.overlap_count(CellId(2)), 0);
    }

    #[test]
    fn overlap_with_macro_counts() {
        let mut b = DesignBuilder::new("f2", Technology::contest(), 50, 20);
        b.add_cell("a", 2, 1, Point::new(4_100, 10_100));
        b.add_fixed_cell("m", 4, 4, Point::new(4_000, 10_000));
        let d = b.build();
        let fs = fresh(&d);
        assert_eq!(fs.overlap_count(CellId(0)), 1, "overlaps the macro");
    }

    #[test]
    fn incremental_updates_match_fresh_rebuild() {
        let mut d = design();
        let g = GcellGrid::new(&d, 2, 2);
        let mut fs = FeatureSpace::new(&d, &g);
        // Move cell c away from the overlap, far into another bin.
        let old = d.cell(CellId(1)).pos;
        d.cell_mut(CellId(1)).pos = Point::new(8_000, 36_000);
        fs.on_cell_moved(&d, CellId(1), old);
        let rebuilt = FeatureSpace::new(&d, &g);
        for id in d.movable_ids() {
            let a = fs.features_of(&d, id);
            let b = rebuilt.features_of(&d, id);
            for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3 * (1.0 + y.abs()),
                    "cell {id} feature {k}: incremental {x} vs fresh {y}"
                );
            }
        }
    }

    #[test]
    fn many_moves_stay_consistent() {
        let mut b = DesignBuilder::new("mm", Technology::contest(), 60, 30);
        for i in 0..40 {
            let x = (i as i64 * 613) % 10_000;
            let y = (i as i64 * 3_571) % 50_000;
            b.add_cell(
                format!("u{i}"),
                1 + i as i64 % 3,
                1 + (i as u8 % 2),
                Point::new(x, y),
            );
        }
        let mut d = b.build();
        let g = GcellGrid::new(&d, 2, 2);
        let mut fs = FeatureSpace::new(&d, &g);
        for i in 0..40 {
            let id = CellId(i as u32);
            let old = d.cell(id).pos;
            let nx = (i as i64 * 1_009) % 9_000;
            let ny = (i as i64 * 7_013) % 48_000;
            d.cell_mut(id).pos = Point::new(nx, ny);
            fs.on_cell_moved(&d, id, old);
        }
        let rebuilt = FeatureSpace::new(&d, &g);
        for id in d.movable_ids() {
            let a = fs.features_of(&d, id);
            let b2 = rebuilt.features_of(&d, id);
            for (k, (x, y)) in a.iter().zip(b2.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3 * (1.0 + y.abs()),
                    "cell {id} feature {k}: incremental {x} vs fresh {y}"
                );
            }
        }
    }

    #[test]
    fn legalized_counter() {
        let mut d = design();
        let g = GcellGrid::new(&d, 1, 1);
        let mut fs = FeatureSpace::new(&d, &g);
        assert_eq!(fs.legalized_in_gcell(0), 0);
        let old = d.cell(CellId(0)).pos;
        d.cell_mut(CellId(0)).pos = Point::new(1_000, 2_000);
        d.cell_mut(CellId(0)).legalized = true;
        fs.on_cell_legalized(&d, CellId(0), old);
        assert_eq!(fs.legalized_in_gcell(0), 1);
        let f = fs.features_of(&d, CellId(1));
        assert_eq!(f[12], 1.0, "NLC visible to other cells in the gcell");
    }

    #[test]
    fn obstacle_distance_uses_two_nearest() {
        let d = design();
        let fs = fresh(&d);
        // Cell a at (1000,0): boundary distances from centre (1200, 1000):
        // left 1200, right 8800, bottom 1000, top 39000; macro at
        // (4000..4800, 10000..18000) is 2800+9000=11800 away.
        // Two nearest: 1000 (bottom), 1200 (left) => avg 1100.
        let f = fs.features_of(&d, CellId(0));
        assert_eq!(f[6], 1_100.0);
    }

    #[test]
    fn state_matrix_shape() {
        let d = design();
        let fs = fresh(&d);
        let cells: Vec<CellId> = d.movable_ids().collect();
        let s = fs.state(&d, &cells);
        assert_eq!(s.len(), cells.len() * NUM_FEATURES);
    }
}
