//! Property tests for the word-level bitset grid against the per-pixel
//! reference oracle, plus the parallel-vs-sequential determinism guarantee.
//!
//! The bitset fast paths (`check_place`, `window_free`, the span-walking
//! `find_position`) must be observationally identical to the pre-bitmap
//! per-pixel implementations (`check_place_reference`,
//! `find_position_reference`) on arbitrary place/remove/check sequences over
//! designs with mixed-height cells, fences, macros, and edge spacing.

use std::collections::HashMap;

use proptest::prelude::*;
use rlleg_benchgen::{find_spec, generate};
use rlleg_design::{
    legality, metrics::Qor, CellId, Design, DesignBuilder, EdgeType, RailParity, Technology,
};
use rlleg_geom::{Point, Rect};
use rlleg_legalize::{
    find_position, find_position_reference, GcellGrid, GridPos, GridWindow, Legalizer, Ordering,
    PixelGrid, SearchConfig,
};

/// A core whose site count is forced off the 64-bit word boundary, with a
/// fixed blockage hugging the right edge so Gcell windows clipped at the
/// die boundary meet occupied words.
fn build_ragged(sites: i64, rows: i64, cells: &[CellSpec]) -> Design {
    let mut b = DesignBuilder::new("ragged", Technology::contest(), sites, rows);
    b.add_fixed_cell("edge_macro", 3, 2, Point::new((sites - 3) * 200, 0));
    for (i, c) in cells.iter().enumerate() {
        let id = b.add_cell(
            format!("u{i}"),
            c.w,
            c.h.min(rows as u8),
            Point::new(c.x % (sites * 200), c.y % (rows * 2_000)),
        );
        b.set_edges(id, EdgeType(c.el), EdgeType(c.er));
        b.set_rail(
            id,
            if c.odd_rail {
                RailParity::Odd
            } else {
                RailParity::Even
            },
        );
    }
    b.build()
}

#[derive(Debug, Clone)]
struct CellSpec {
    w: i64,
    h: u8,
    x: i64,
    y: i64,
    el: u8,
    er: u8,
    odd_rail: bool,
}

fn arb_cell() -> impl Strategy<Value = CellSpec> {
    (
        1i64..5,
        1u8..=3,
        0i64..12_000,
        0i64..22_000,
        0u8..3,
        0u8..3,
        any::<bool>(),
    )
        .prop_map(|(w, h, x, y, el, er, odd_rail)| CellSpec {
            w,
            h,
            x,
            y,
            el,
            er,
            odd_rail,
        })
}

/// One step of a random grid workload: try to place cell `cell % n` at the
/// probe position when `place` is set, otherwise remove it if placed.
#[derive(Debug, Clone)]
struct Op {
    cell: u8,
    site: i64,
    row: i64,
    place: bool,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (any::<u8>(), -2i64..66, -2i64..14, any::<bool>()).prop_map(|(cell, site, row, place)| Op {
        cell,
        site,
        row,
        place,
    })
}

/// A 64-site × 12-row contest-tech core with a macro and a fence region,
/// exercising every `check_place` rule at once.
fn build(cells: &[CellSpec]) -> Design {
    let mut b = DesignBuilder::new("bitset-prop", Technology::contest(), 64, 12);
    b.add_fixed_cell("macro", 10, 3, Point::new(4_000, 8_000));
    let fence = b.add_region("fence", vec![Rect::new(8_400, 2_000, 11_000, 10_000)]);
    for (i, c) in cells.iter().enumerate() {
        let id = b.add_cell(format!("u{i}"), c.w, c.h, Point::new(c.x, c.y));
        b.set_edges(id, EdgeType(c.el), EdgeType(c.er));
        b.set_rail(
            id,
            if c.odd_rail {
                RailParity::Odd
            } else {
                RailParity::Even
            },
        );
        // Fence some cells so both in-fence and out-of-fence placement
        // rules are exercised.
        if i % 3 == 0 {
            b.assign_region(id, fence);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random place/remove/check sequences, every `check_place` answer
    /// (including the rejection variant) and every `window_free` answer
    /// must match the per-pixel reference.
    #[test]
    fn check_place_equals_reference_under_random_workload(
        cells in prop::collection::vec(arb_cell(), 4..14),
        ops in prop::collection::vec(arb_op(), 1..60),
    ) {
        let d = build(&cells);
        let mut g = PixelGrid::new(&d);
        let mut placed: HashMap<CellId, GridPos> = HashMap::new();
        let ids: Vec<CellId> = d.movable_ids().collect();
        for op in &ops {
            let cell = ids[op.cell as usize % ids.len()];
            let pos = GridPos { site: op.site, row: op.row };
            let c = d.cell(cell);
            let w_sites = c.width / d.tech.site_width;
            let h_rows = i64::from(c.height_rows);

            // The oracle check: bitset-accelerated vs reference, probed on
            // every op regardless of whether it commits.
            let fast = g.check_place(&d, cell, pos);
            let slow = g.check_place_reference(&d, cell, pos);
            prop_assert_eq!(fast, slow, "cell {:?} at {:?}", cell, pos);

            // Word-level window test vs per-pixel occupancy scan.
            let in_bounds = pos.site >= 0
                && pos.row >= 0
                && pos.site + w_sites <= g.sites_x()
                && pos.row + h_rows <= g.rows();
            let scan_free = in_bounds
                && (pos.row..pos.row + h_rows).all(|r| {
                    (pos.site..pos.site + w_sites).all(|s| g.is_free(s, r))
                });
            prop_assert_eq!(g.window_free(pos, w_sites, h_rows), scan_free);

            if op.place {
                if !placed.contains_key(&cell) && slow.is_ok() {
                    g.place(&d, cell, pos);
                    placed.insert(cell, pos);
                }
            } else if let Some(at) = placed.remove(&cell) {
                g.remove(&d, cell, at);
            }
        }
    }

    /// After a random prefix of placements, the span-walking search must
    /// return exactly the reference's answer (same position, same
    /// displacement, same tie-break) for every remaining cell under
    /// several configs, including a Gcell-style window.
    #[test]
    fn find_position_equals_reference(
        cells in prop::collection::vec(arb_cell(), 4..14),
        ops in prop::collection::vec(arb_op(), 1..40),
    ) {
        let d = build(&cells);
        let mut g = PixelGrid::new(&d);
        let mut placed: HashMap<CellId, GridPos> = HashMap::new();
        let ids: Vec<CellId> = d.movable_ids().collect();
        for op in &ops {
            let cell = ids[op.cell as usize % ids.len()];
            let pos = GridPos { site: op.site, row: op.row };
            if op.place {
                if !placed.contains_key(&cell) && g.check_place(&d, cell, pos).is_ok() {
                    g.place(&d, cell, pos);
                    placed.insert(cell, pos);
                }
            } else if let Some(at) = placed.remove(&cell) {
                g.remove(&d, cell, at);
            }
        }
        let configs = [
            SearchConfig::default(),
            SearchConfig { displacement_limit: Some(3_000), ..SearchConfig::default() },
            SearchConfig { max_radius: Some(9), ..SearchConfig::default() },
            SearchConfig {
                window: Some(GridWindow { lo_site: 2, lo_row: 1, hi_site: 40, hi_row: 9 }),
                ..SearchConfig::default()
            },
        ];
        for &cell in &ids {
            if placed.contains_key(&cell) {
                continue;
            }
            let from = d.cell(cell).pos;
            for cfg in configs {
                prop_assert_eq!(
                    find_position(&g, &d, cell, from, cfg),
                    find_position_reference(&g, &d, cell, from, cfg),
                    "cell {:?} cfg {:?}", cell, cfg
                );
            }
        }
    }

    /// A [`SubGrid`] snapshot must answer every window-restricted search
    /// exactly as the full grid does — the invariant the clone-free
    /// parallel solve stands on.
    #[test]
    fn subgrid_search_matches_full_grid(
        cells in prop::collection::vec(arb_cell(), 4..14),
        ops in prop::collection::vec(arb_op(), 1..40),
        lo_site in 0i64..50,
        lo_row in 0i64..9,
        w in 4i64..40,
        h in 2i64..8,
    ) {
        let d = build(&cells);
        let mut g = PixelGrid::new(&d);
        let mut placed: HashMap<CellId, GridPos> = HashMap::new();
        let ids: Vec<CellId> = d.movable_ids().collect();
        for op in &ops {
            let cell = ids[op.cell as usize % ids.len()];
            let pos = GridPos { site: op.site, row: op.row };
            if op.place {
                if !placed.contains_key(&cell) && g.check_place(&d, cell, pos).is_ok() {
                    g.place(&d, cell, pos);
                    placed.insert(cell, pos);
                }
            } else if let Some(at) = placed.remove(&cell) {
                g.remove(&d, cell, at);
            }
        }
        let win = GridWindow {
            lo_site,
            lo_row,
            hi_site: (lo_site + w).min(g.sites_x()),
            hi_row: (lo_row + h).min(g.rows()),
        };
        let sub = g.extract_window(&d, win);
        let cfg = SearchConfig { window: Some(win), ..SearchConfig::default() };
        for &cell in &ids {
            if placed.contains_key(&cell) {
                continue;
            }
            let from = d.cell(cell).pos;
            prop_assert_eq!(
                find_position(&sub, &d, cell, from, cfg),
                find_position(&g, &d, cell, from, cfg),
                "cell {:?} win {:?}", cell, win
            );
        }
    }

    /// Thread-count invariance on awkward geometry: cores whose site count
    /// is not a multiple of 64 (boundary words are partially padded) and
    /// Gcell grids whose windows clip at the die edges. Every thread count
    /// must reproduce the single-threaded result bit for bit.
    #[test]
    fn parallel_solve_bit_identical_across_thread_counts_on_ragged_cores(
        sites in 33i64..130,
        rows in 4i64..14,
        nx in 1usize..4,
        ny in 1usize..4,
        cells in prop::collection::vec(arb_cell(), 6..20),
        seed in 0u64..100,
    ) {
        let sites = if sites % 64 == 0 { sites + 1 } else { sites };
        let d0 = build_ragged(sites, rows, &cells);
        let gcells = GcellGrid::new(&d0, nx, ny);
        let ordering = Ordering::Random(seed);
        let run = |threads: usize| {
            let mut d = d0.clone();
            let mut lg = Legalizer::new(&d);
            let stats = lg.run_gcells_parallel(&mut d, &ordering, &gcells, threads);
            let placement: Vec<(Point, bool)> =
                d.cells.iter().map(|c| (c.pos, c.legalized)).collect();
            (stats.failed, placement)
        };
        let reference = run(1);
        for threads in [2usize, 4, 8] {
            let got = run(threads);
            prop_assert_eq!(&got.0, &reference.0, "threads {}: failures differ", threads);
            prop_assert_eq!(&got.1, &reference.1, "threads {}: placements differ", threads);
        }
    }
}

/// Parallel per-Gcell legalization must be bit-identical to the sequential
/// fallback: same placements, same failures, same QoR, for every seed.
#[test]
fn parallel_gcell_legalization_is_deterministic() {
    let spec = find_spec("des_perf_b_md1").expect("spec").scaled(0.004);
    for seed in [1u64, 7, 23] {
        let base = generate(&spec);
        let gcells = GcellGrid::new(&base, 3, 3);
        let ordering = Ordering::Random(seed);

        let run = |threads: usize| -> (Design, Vec<CellId>, Qor) {
            let mut d = base.clone();
            let mut lg = Legalizer::new(&d);
            let stats = lg.run_gcells_parallel(&mut d, &ordering, &gcells, threads);
            let qor = Qor::measure(&d);
            (d, stats.failed, qor)
        };

        let (d_seq, failed_seq, qor_seq) = run(1);
        let (d_par, failed_par, qor_par) = run(2);
        let (d_par4, failed_par4, qor_par4) = run(4);

        assert!(
            legality::is_legal(&d_seq),
            "seed {seed}: sequential illegal"
        );
        assert_eq!(failed_seq, failed_par, "seed {seed}: failure sets differ");
        assert_eq!(failed_seq, failed_par4, "seed {seed}: failure sets differ");
        assert_eq!(qor_seq, qor_par, "seed {seed}: QoR differs");
        assert_eq!(qor_seq, qor_par4, "seed {seed}: QoR differs");
        for (a, b) in d_seq.cells.iter().zip(d_par.cells.iter()) {
            assert_eq!(a.pos, b.pos, "seed {seed}: {} placed differently", a.name);
            assert_eq!(a.legalized, b.legalized, "seed {seed}: {}", a.name);
        }
        for (a, b) in d_seq.cells.iter().zip(d_par4.cells.iter()) {
            assert_eq!(a.pos, b.pos, "seed {seed}: {} placed differently", a.name);
        }
    }
}

/// The windowed parallel runner must still produce a legal placement when
/// driven by the size ordering used everywhere else.
#[test]
fn parallel_gcell_legalization_is_legal() {
    let spec = find_spec("pci_bridge32_b_md1").expect("spec").scaled(0.008);
    let mut d = generate(&spec);
    let gcells = GcellGrid::new(&d, 3, 3);
    let mut lg = Legalizer::new(&d);
    let stats = lg.run_gcells_parallel(&mut d, &Ordering::SizeDescending, &gcells, 2);
    assert!(stats.is_complete(), "failed: {}", stats.failed.len());
    assert!(legality::is_legal(&d));
}
