//! Integration tests: the pixel-wise legalizer on generated benchmarks.
//!
//! Every ordering must produce a fully legal placement (verified by the
//! independent design-rule checker) on designs with macros, fences, edge
//! types, and mixed heights.

use rlleg_benchgen::{find_spec, generate};
use rlleg_design::{legality, metrics::Qor};
use rlleg_legalize::{GcellGrid, Legalizer, Ordering};

fn legalize_and_check(name: &str, scale: f64, ordering: Ordering) -> Qor {
    let spec = find_spec(name).expect("spec exists").scaled(scale);
    let mut design = generate(&spec);
    let mut lg = Legalizer::new(&design);
    let stats = lg.run(&mut design, &ordering);
    assert!(
        stats.is_complete(),
        "{name}: {} cells failed to legalize",
        stats.failed.len()
    );
    let violations = legality::check(&design, true);
    assert!(
        violations.is_empty(),
        "{name}: {} violations, first: {}",
        violations.len(),
        violations[0]
    );
    Qor::measure(&design)
}

#[test]
fn opencores_size_ordered() {
    let q = legalize_and_check("jpeg_encoder", 0.01, Ordering::SizeDescending);
    assert!(q.avg_displacement > 0.0, "legalization must move something");
}

#[test]
fn opencores_random_ordered() {
    legalize_and_check("des3", 0.008, Ordering::Random(7));
}

#[test]
fn contest_with_fences_and_macros() {
    let q = legalize_and_check("des_perf_a_md1", 0.004, Ordering::SizeDescending);
    assert!(q.max_displacement > 0);
}

#[test]
fn contest_low_density_with_macros() {
    legalize_and_check("pci_bridge32_b_md1", 0.008, Ordering::SizeDescending);
}

#[test]
fn high_density_design() {
    // des_perf_1 is the 0.91-density design the baseline fails on at full
    // scale; at small scale it must still legalize completely.
    legalize_and_check("des_perf_1", 0.004, Ordering::SizeDescending);
}

#[test]
fn x_ordered_on_contest() {
    legalize_and_check("fft_2_md2", 0.01, Ordering::XAscending);
}

#[test]
fn gcell_partitioned_run_is_legal() {
    let spec = find_spec("des_perf_b_md1").expect("spec").scaled(0.004);
    let mut design = generate(&spec);
    let gcells = GcellGrid::new(&design, 3, 3);
    let mut lg = Legalizer::new(&design);
    let stats = lg.run_gcells(&mut design, &Ordering::SizeDescending, &gcells);
    assert!(stats.is_complete(), "failed: {}", stats.failed.len());
    assert!(legality::is_legal(&design));
}

#[test]
fn heuristics_improve_random_order() {
    let spec = find_spec("eth_top").expect("spec").scaled(0.008);
    let mut design = generate(&spec);
    let mut lg = Legalizer::new(&design);
    let stats = lg.run(&mut design, &Ordering::Random(3));
    assert!(stats.is_complete());
    let before = Qor::measure(&design);
    lg.swap_pass(&mut design);
    lg.rearrange_pass(&mut design);
    let after = Qor::measure(&design);
    assert!(after.total_displacement <= before.total_displacement);
    assert!(legality::is_legal(&design));
}

#[test]
fn order_changes_qor_on_generated_designs() {
    let spec = find_spec("wb_conmax_top").expect("spec").scaled(0.02);
    let mut disps = Vec::new();
    for seed in 0..4 {
        let mut design = generate(&spec);
        let mut lg = Legalizer::new(&design);
        let stats = lg.run(&mut design, &Ordering::Random(seed));
        assert!(stats.is_complete());
        disps.push(Qor::measure(&design).total_displacement);
    }
    assert!(
        disps.iter().any(|&d| d != disps[0]),
        "QoR should vary with order: {disps:?}"
    );
}
