//! The reward function of Eq. 2.
//!
//! ```text
//! r(s,a) = k1/disp + k2/Δhpwl   if disp > k1
//!        = 1       + k2/Δhpwl   if disp ≤ k1
//!        = −5                    on legalization failure
//! ```
//!
//! `k1` is the threshold of inevitable displacement — one placement site
//! (footnote 2: 200 nm contest / 190 nm Nangate). `k2` normalizes the ΔHPWL
//! term into `[0, 1]`; a zero (or improving) ΔHPWL scores the full 1.

use serde::{Deserialize, Serialize};

use rlleg_design::Design;
use rlleg_geom::Dbu;

/// Reward the environment returns when the pixel search finds no position.
pub const FAIL_REWARD: f32 = -5.0;

/// Per-design reward normalization constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardParams {
    /// Displacement threshold (one site width).
    pub k1: Dbu,
    /// ΔHPWL normalizer (one site width, making the term ≤ 1 for any
    /// degradation of at least one site).
    pub k2: f64,
}

impl RewardParams {
    /// Derives the constants from the design's technology, as footnote 2
    /// prescribes.
    pub fn for_design(design: &Design) -> Self {
        Self {
            k1: design.tech.site_width,
            k2: design.tech.site_width as f64,
        }
    }

    /// Reward for a successful placement with displacement `disp` and HPWL
    /// change `dhpwl` (positive = degradation).
    pub fn step_reward(&self, disp: Dbu, dhpwl: Dbu) -> f32 {
        let disp_term = if disp <= self.k1 {
            1.0
        } else {
            self.k1 as f64 / disp as f64
        };
        let hpwl_term = if (dhpwl as f64) <= self.k2 {
            1.0
        } else {
            self.k2 / dhpwl as f64
        };
        (disp_term + hpwl_term) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn params() -> RewardParams {
        let mut b = DesignBuilder::new("r", Technology::contest(), 10, 4);
        b.add_cell("a", 1, 1, Point::ORIGIN);
        RewardParams::for_design(&b.build())
    }

    #[test]
    fn derives_site_width() {
        let p = params();
        assert_eq!(p.k1, 200);
        assert_eq!(p.k2, 200.0);
    }

    #[test]
    fn perfect_step_scores_two() {
        let p = params();
        assert_eq!(p.step_reward(0, 0), 2.0);
        assert_eq!(
            p.step_reward(200, -500),
            2.0,
            "within threshold, improving hpwl"
        );
    }

    #[test]
    fn reward_decays_with_displacement() {
        let p = params();
        let near = p.step_reward(400, 0);
        let far = p.step_reward(4_000, 0);
        assert!(near > far);
        assert!((near - (0.5 + 1.0)).abs() < 1e-6);
        assert!((far - (0.05 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn reward_decays_with_hpwl_degradation() {
        let p = params();
        let small = p.step_reward(0, 400);
        let large = p.step_reward(0, 20_000);
        assert!(small > large);
        assert!((small - (1.0 + 0.5)).abs() < 1e-6);
        assert!((large - (1.0 + 0.01)).abs() < 1e-6);
    }

    #[test]
    fn bounds() {
        let p = params();
        // Any successful step is in (0, 2].
        for (d, h) in [(0, 0), (1, 1), (10_000, 10_000), (999_999, 999_999)] {
            let r = p.step_reward(d, h);
            assert!(r > 0.0 && r <= 2.0, "r({d},{h}) = {r}");
        }
        assert!(FAIL_REWARD.is_sign_negative());
    }
}
