//! The cell-wise policy/value network of Fig. 4.
//!
//! Thirteen features of each movable cell pass through a shared trunk of
//! two FC(·,H)+ReLU pairs applied *per cell* (same parameters for every
//! cell, so any number of cells is supported). The policy head maps each
//! cell embedding to one logit; SoftMax over cells yields the priority
//! vector. The value head maps each embedding to one scalar and averages
//! over cells to estimate the expected reward.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rlleg_legalize::NUM_FEATURES;
use rlleg_nn::{ops, Matrix, Mlp};

/// Output of a training forward pass.
#[derive(Debug, Clone)]
pub struct Forward {
    /// One logit per cell (pre-softmax priority).
    pub logits: Vec<f32>,
    /// State-value estimate (mean of per-cell values).
    pub value: f32,
}

/// The cell-wise actor-critic network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellWiseNet {
    trunk: Mlp,
    policy_head: Mlp,
    value_head: Mlp,
    /// Cached trunk output of the last training forward (for backward).
    #[serde(skip)]
    cached_rows: usize,
}

impl CellWiseNet {
    /// Creates a network with the given hidden width.
    pub fn new(hidden_dim: usize, rng: &mut impl Rng) -> Self {
        Self {
            trunk: Mlp::new(&[NUM_FEATURES, hidden_dim, hidden_dim], rng),
            policy_head: Mlp::new(&[hidden_dim, 1], rng),
            value_head: Mlp::new(&[hidden_dim, 1], rng),
            cached_rows: 0,
        }
    }

    /// Training forward pass over an `N × 13` state; caches activations.
    ///
    /// # Panics
    ///
    /// Panics when the state has zero rows or the wrong column count.
    pub fn forward(&mut self, state: &Matrix) -> Forward {
        assert!(state.rows() > 0, "empty state");
        assert_eq!(state.cols(), NUM_FEATURES, "state must have 13 features");
        let emb = self.trunk.forward(state);
        let logits_m = self.policy_head.forward(&emb);
        let values_m = self.value_head.forward(&emb);
        self.cached_rows = state.rows();
        let logits = logits_m.as_slice().to_vec();
        let value = values_m.as_slice().iter().sum::<f32>() / state.rows() as f32;
        Forward { logits, value }
    }

    /// Inference forward pass (no caching, usable through `&self`).
    pub fn forward_inference(&self, state: &Matrix) -> Forward {
        let emb = self.trunk.forward_inference(state);
        let logits = self.policy_head.forward_inference(&emb).as_slice().to_vec();
        let vals = self.value_head.forward_inference(&emb);
        let value = vals.as_slice().iter().sum::<f32>() / state.rows() as f32;
        Forward { logits, value }
    }

    /// Policy-only inference: trunk + policy head over all `N` candidate
    /// cells in one matrix–matrix forward, skipping the value head.
    ///
    /// Action selection only needs the logits, so the per-step network cost
    /// at inference time drops to two trunk matmuls plus one `N × H → N`
    /// policy matmul.
    pub fn forward_policy(&self, state: &Matrix) -> Vec<f32> {
        let emb = self.trunk.forward_inference(state);
        self.policy_head.forward_inference(&emb).as_slice().to_vec()
    }

    /// Stacks `states` into one `(Σ rowsᵢ) × 13` matrix after validating
    /// each state's shape.
    fn stack_states(states: &[&Matrix]) -> Matrix {
        for s in states {
            assert!(s.rows() > 0, "empty state");
            assert_eq!(s.cols(), NUM_FEATURES, "state must have 13 features");
        }
        Matrix::stack(states)
    }

    /// Batched value estimates: stacks every state into one
    /// `(Σ rowsᵢ) × 13` matrix, runs a single trunk + value-head forward,
    /// and returns the per-state means — one `V(sᵢ)` per input.
    ///
    /// Replaces `states.len()` separate small-matrix forwards with one
    /// matrix–matrix pass; the advantage loop in training is the main
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics when any state is empty or has the wrong column count.
    pub fn values_batch(&self, states: &[&Matrix]) -> Vec<f32> {
        if states.is_empty() {
            return Vec::new();
        }
        let stacked = Self::stack_states(states);
        let emb = self.trunk.forward_inference(&stacked);
        let vals = self.value_head.forward_inference(&emb);
        let flat = vals.as_slice();
        let mut out = Vec::with_capacity(states.len());
        let mut off = 0usize;
        for s in states {
            let n = s.rows();
            out.push(flat[off..off + n].iter().sum::<f32>() / n as f32);
            off += n;
        }
        out
    }

    /// Batched policy logits: one trunk + policy-head forward over all
    /// candidate cells of all `states` at once, split back into one logit
    /// vector per state.
    ///
    /// This is the action-selection analogue of
    /// [`values_batch`](Self::values_batch): the asynchronous trainer
    /// gathers the per-Gcell states of one macro-step and evaluates them
    /// in a single blocked-GEMM pass. The per-cell network is applied
    /// row-wise, and the register-tiled kernel is bit-identical to the
    /// naive per-state path, so each returned vector equals the
    /// corresponding [`forward_policy`](Self::forward_policy) call bit
    /// for bit (proptested in `tests/batch_prop.rs`).
    ///
    /// # Panics
    ///
    /// Panics when any state is empty or has the wrong column count.
    pub fn forward_policy_batch(&self, states: &[&Matrix]) -> Vec<Vec<f32>> {
        if states.is_empty() {
            return Vec::new();
        }
        let stacked = Self::stack_states(states);
        let emb = self.trunk.forward_inference(&stacked);
        let logits = self.policy_head.forward_inference(&emb);
        let flat = logits.as_slice();
        let mut out = Vec::with_capacity(states.len());
        let mut off = 0usize;
        for s in states {
            let n = s.rows();
            out.push(flat[off..off + n].to_vec());
            off += n;
        }
        out
    }

    /// Backward pass: accumulates gradients for `∂L/∂logitsᵢ = d_logits[i]`
    /// and `∂L/∂V = d_value`.
    ///
    /// # Panics
    ///
    /// Panics if `d_logits` does not match the last forward's cell count.
    pub fn backward(&mut self, d_logits: &[f32], d_value: f32) {
        let n = self.cached_rows;
        assert_eq!(
            d_logits.len(),
            n,
            "gradient size mismatch with last forward"
        );
        let g_policy = Matrix::from_vec(n, 1, d_logits.to_vec());
        // V = (1/N) Σ v_i  =>  ∂L/∂v_i = d_value / N.
        let g_value = Matrix::from_vec(n, 1, vec![d_value / n as f32; n]);
        let d_emb_p = self.policy_head.backward(&g_policy);
        let d_emb_v = self.value_head.backward(&g_value);
        let mut d_emb = d_emb_p;
        for (a, b) in d_emb.as_mut_slice().iter_mut().zip(d_emb_v.as_slice()) {
            *a += b;
        }
        let _ = self.trunk.backward(&d_emb);
    }

    /// Clears accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.trunk.zero_grads();
        self.policy_head.zero_grads();
        self.value_head.zero_grads();
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.trunk.num_params() + self.policy_head.num_params() + self.value_head.num_params()
    }

    /// All parameters as one flat vector (trunk, policy head, value head).
    pub fn params_flat(&mut self) -> Vec<f32> {
        let mut v = self.trunk.params_flat();
        v.extend(self.policy_head.params_flat());
        v.extend(self.value_head.params_flat());
        v
    }

    /// All gradients as one flat vector (same order as
    /// [`params_flat`](Self::params_flat)).
    pub fn grads_flat(&mut self) -> Vec<f32> {
        let mut v = self.trunk.grads_flat();
        v.extend(self.policy_head.grads_flat());
        v.extend(self.value_head.grads_flat());
        v
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch.
    pub fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_params(),
            "flat parameter size mismatch"
        );
        let a = self.trunk.num_params();
        let b = a + self.policy_head.num_params();
        self.trunk.set_params_flat(&flat[..a]);
        self.policy_head.set_params_flat(&flat[a..b]);
        self.value_head.set_params_flat(&flat[b..]);
    }

    /// Adds `delta` to the value head's output bias, shifting `V(s)`
    /// uniformly across states.
    ///
    /// Used to centre the critic on the observed return scale after
    /// behaviour-cloning warm-up: with smooth-L1 value loss and Adam, the
    /// critic would otherwise need tens of thousands of updates to climb
    /// from 0 to a typical subepisode return, leaving advantages uniformly
    /// positive for most of a short training run.
    pub fn shift_value_bias(&mut self, delta: f32) {
        let mut p = self.value_head.params_flat();
        let last = p.len() - 1;
        p[last] += delta;
        self.value_head.set_params_flat(&p);
    }

    /// The priority distribution over cells for a state (softmax of the
    /// logits).
    pub fn priorities(&self, state: &Matrix) -> Vec<f32> {
        ops::softmax(&self.forward_inference(state).logits)
    }

    /// Serializes the model to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` serialization error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a model from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` deserialization error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    fn state(n: usize) -> Matrix {
        let data: Vec<f32> = (0..n * NUM_FEATURES)
            .map(|i| ((i % 17) as f32) / 17.0)
            .collect();
        Matrix::from_vec(n, NUM_FEATURES, data)
    }

    #[test]
    fn shapes_follow_cell_count() {
        let mut net = CellWiseNet::new(16, &mut rng());
        for n in [1, 3, 20] {
            let f = net.forward(&state(n));
            assert_eq!(f.logits.len(), n);
            assert!(f.value.is_finite());
        }
    }

    #[test]
    fn cell_wise_sharing_is_permutation_equivariant() {
        let net = CellWiseNet::new(16, &mut rng());
        let s = state(5);
        let f = net.forward_inference(&s);
        // Swap rows 1 and 3.
        let mut rows: Vec<Vec<f32>> = (0..5).map(|r| s.row(r).to_vec()).collect();
        rows.swap(1, 3);
        let flat: Vec<f32> = rows.into_iter().flatten().collect();
        let s2 = Matrix::from_vec(5, NUM_FEATURES, flat);
        let f2 = net.forward_inference(&s2);
        assert!((f.logits[1] - f2.logits[3]).abs() < 1e-6);
        assert!((f.logits[3] - f2.logits[1]).abs() < 1e-6);
        assert!(
            (f.value - f2.value).abs() < 1e-6,
            "value is permutation invariant"
        );
    }

    #[test]
    fn gradcheck_policy_logit() {
        let mut net = CellWiseNet::new(8, &mut rng());
        let s = state(4);
        // Loss = logits[2] (pick via d_logits one-hot), check a trunk param.
        let _ = net.forward(&s);
        net.backward(&[0.0, 0.0, 1.0, 0.0], 0.0);
        let g = net.grads_flat();
        let mut p = net.params_flat();
        let idx = 7;
        let eps = 1e-2f32;
        let loss = |n: &CellWiseNet| n.forward_inference(&s).logits[2];
        let orig = p[idx];
        p[idx] = orig + eps;
        net.set_params_flat(&p);
        let hi = loss(&net);
        p[idx] = orig - eps;
        net.set_params_flat(&p);
        let lo = loss(&net);
        let num = (hi - lo) / (2.0 * eps);
        assert!(
            (num - g[idx]).abs() < 0.05 + 0.05 * num.abs(),
            "{num} vs {}",
            g[idx]
        );
    }

    #[test]
    fn gradcheck_value() {
        let mut net = CellWiseNet::new(8, &mut rng());
        let s = state(3);
        let _ = net.forward(&s);
        net.backward(&[0.0; 3], 1.0);
        let g = net.grads_flat();
        let mut p = net.params_flat();
        let idx = g.len() - 1; // value-head bias
        let eps = 1e-2f32;
        let loss = |n: &CellWiseNet| n.forward_inference(&s).value;
        let orig = p[idx];
        p[idx] = orig + eps;
        net.set_params_flat(&p);
        let hi = loss(&net);
        p[idx] = orig - eps;
        net.set_params_flat(&p);
        let lo = loss(&net);
        let num = (hi - lo) / (2.0 * eps);
        assert!((num - g[idx]).abs() < 0.02, "{num} vs {}", g[idx]);
    }

    #[test]
    fn forward_policy_matches_full_forward() {
        let net = CellWiseNet::new(16, &mut rng());
        let s = state(6);
        let full = net.forward_inference(&s);
        assert_eq!(net.forward_policy(&s), full.logits);
    }

    #[test]
    fn values_batch_matches_per_state_forwards() {
        let net = CellWiseNet::new(16, &mut rng());
        let states = [state(1), state(4), state(9)];
        let refs: Vec<&Matrix> = states.iter().collect();
        let batched = net.values_batch(&refs);
        assert_eq!(batched.len(), 3);
        for (s, &v) in states.iter().zip(&batched) {
            assert_eq!(net.forward_inference(s).value, v);
        }
        assert!(net.values_batch(&[]).is_empty());
    }

    #[test]
    fn forward_policy_batch_matches_per_state_forwards() {
        let net = CellWiseNet::new(16, &mut rng());
        // Small states individually (naive kernel) but a large stack
        // (blocked kernel): the bit-identity of the two kernels is what
        // makes the batched logits exact.
        let states = [state(1), state(4), state(9), state(13)];
        let refs: Vec<&Matrix> = states.iter().collect();
        let batched = net.forward_policy_batch(&refs);
        assert_eq!(batched.len(), 4);
        for (s, logits) in states.iter().zip(&batched) {
            assert_eq!(&net.forward_policy(s), logits);
        }
        assert!(net.forward_policy_batch(&[]).is_empty());
    }

    #[test]
    fn priorities_are_a_distribution() {
        let net = CellWiseNet::new(16, &mut rng());
        let p = net.priorities(&state(7));
        assert_eq!(p.len(), 7);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn json_round_trip() {
        let mut net = CellWiseNet::new(8, &mut rng());
        let json = net.to_json().expect("serialize");
        let net2 = CellWiseNet::from_json(&json).expect("deserialize");
        let s = state(4);
        let a = net.forward(&s);
        let b = net2.forward_inference(&s);
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn params_flat_round_trip() {
        let mut a = CellWiseNet::new(8, &mut rng());
        let mut b = CellWiseNet::new(8, &mut rng());
        b.set_params_flat(&a.params_flat());
        let s = state(2);
        assert_eq!(
            a.forward_inference(&s).logits,
            b.forward_inference(&s).logits
        );
    }
}
