//! Crash-safe, corruption-detecting training checkpoints.
//!
//! A3C training state used to exist only in memory: a crash lost the run,
//! and a torn write on save would be accepted silently on the next load.
//! This module gives the [`Trainer`](crate::Trainer) a durable format with
//! explicit failure semantics:
//!
//! - **Framing** — a fixed header (magic, format version, payload length,
//!   CRC-32 of the payload) in front of a JSON payload. Truncation, bit
//!   flips, and version skew are *detected* at load, never guessed around.
//! - **Bit-exactness** — every `f32`/`f64` that must survive a round-trip
//!   exactly (network parameters, Adam moments, best-cost tracking) is
//!   stored as its IEEE-754 bit pattern in integers, so resuming from a
//!   checkpoint is bit-identical to never having stopped.
//! - **Atomicity** — files are written with
//!   [`rlleg_design::fsio::write_atomic`] (tmp + fsync + rename), so a
//!   crash mid-save leaves the previous generation intact.
//! - **Rotation + fallback** — [`CheckpointStore`] keeps the newest N
//!   generations; [`CheckpointStore::load_latest`] walks them newest-first
//!   and falls back past corrupted or skewed files to the newest valid
//!   one, reporting what it skipped via telemetry.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::config::RlConfig;
use crate::train::TrainSample;
use rlleg_nn::optim::AdamRaw;

/// File magic: "RLCK" (RL-Legalizer ChecKpoint).
pub const MAGIC: [u8; 4] = *b"RLCK";

/// Current checkpoint format version. Bump on any payload layout change;
/// older/newer files are rejected with [`CheckpointError::VersionSkew`].
pub const FORMAT_VERSION: u32 = 1;

/// Header layout: magic (4) + version (4) + payload length (8) + CRC (4).
const HEADER_LEN: usize = 20;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Everything needed to resume training bit-identically: configuration,
/// progress counters, parameters and optimizer state (as bit patterns),
/// per-agent RNG states, the best-model tracker, and the learning curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerState {
    /// Training configuration the run was started with.
    pub cfg: RlConfig,
    /// Episodes completed so far (the next episode index).
    pub episode: usize,
    /// Total environment steps taken so far.
    pub steps: u64,
    /// Global network parameters as `f32` bit patterns.
    pub params_bits: Vec<u32>,
    /// Shared Adam optimizer state (bit-exact, see [`AdamRaw`]).
    pub adam: AdamRaw,
    /// Per-agent RNG states, flattened (4 words per agent).
    pub rng_words: Vec<u64>,
    /// Best episode cost seen, as an `f64` bit pattern (starts at `+inf`,
    /// which JSON floats cannot represent — bits can).
    pub best_cost_bits: u64,
    /// Parameter snapshot of the best episode, as `f32` bit patterns.
    pub best_params_bits: Vec<u32>,
    /// Learning-curve samples recorded so far.
    pub history: Vec<TrainSample>,
}

/// Why a checkpoint file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Shorter than the header, or shorter than the header-declared
    /// payload length.
    Truncated {
        /// Bytes expected (header + declared payload).
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The magic bytes do not match — not a checkpoint file.
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    VersionSkew {
        /// Version found in the file.
        found: u32,
    },
    /// The payload does not hash to the header CRC (bit flip / partial
    /// overwrite).
    CrcMismatch {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the payload.
        found: u32,
    },
    /// The payload passed the CRC but failed to parse or deserialize
    /// (a bug or a hand-edited file — the CRC makes accidents unlikely).
    Payload(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated { expected, found } => {
                write!(f, "truncated checkpoint: expected {expected} bytes, found {found}")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::VersionSkew { found } => write!(
                f,
                "checkpoint format version {found} (this build reads {FORMAT_VERSION})"
            ),
            CheckpointError::CrcMismatch { expected, found } => write!(
                f,
                "checkpoint CRC mismatch: header says {expected:#010x}, payload hashes to {found:#010x}"
            ),
            CheckpointError::Payload(e) => write!(f, "checkpoint payload invalid: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes `state` into the framed on-disk format.
pub fn encode(state: &TrainerState) -> Vec<u8> {
    let payload = serde_json::to_string(state)
        .expect("TrainerState serialization is infallible")
        .into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses and validates a framed checkpoint.
///
/// # Errors
///
/// Returns the specific [`CheckpointError`] describing how the file is
/// damaged or incompatible; callers fall back to an older generation.
pub fn decode(bytes: &[u8]) -> Result<TrainerState, CheckpointError> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            expected: HEADER_LEN,
            found: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CheckpointError::VersionSkew { found: version });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let expected_total = HEADER_LEN.saturating_add(payload_len);
    if bytes.len() < expected_total {
        return Err(CheckpointError::Truncated {
            expected: expected_total,
            found: bytes.len(),
        });
    }
    let declared_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let payload = &bytes[HEADER_LEN..expected_total];
    let actual_crc = crc32(payload);
    if actual_crc != declared_crc {
        return Err(CheckpointError::CrcMismatch {
            expected: declared_crc,
            found: actual_crc,
        });
    }
    let text = std::str::from_utf8(payload).map_err(|e| CheckpointError::Payload(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| CheckpointError::Payload(e.to_string()))
}

/// A directory of rotating checkpoint generations (`ckpt-NNNNNN.rlc`).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store at `dir` keeping the newest
    /// `keep` generations (minimum 1).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            keep: keep.max(1),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Existing generations, sorted oldest-first.
    pub fn generations(&self) -> Vec<(u64, PathBuf)> {
        let mut gens: Vec<(u64, PathBuf)> = match std::fs::read_dir(&self.dir) {
            Ok(rd) => rd
                .filter_map(Result::ok)
                .filter_map(|e| {
                    let name = e.file_name().into_string().ok()?;
                    let seq: u64 = name
                        .strip_prefix("ckpt-")?
                        .strip_suffix(".rlc")?
                        .parse()
                        .ok()?;
                    Some((seq, e.path()))
                })
                .collect(),
            Err(_) => Vec::new(),
        };
        gens.sort_unstable_by_key(|&(seq, _)| seq);
        gens
    }

    /// Writes `state` as the next generation (atomically) and prunes
    /// generations beyond the keep limit.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the atomic write; pruning failures are
    /// tolerated (stale generations are garbage, not corruption).
    pub fn save(&self, state: &TrainerState) -> io::Result<PathBuf> {
        let gens = self.generations();
        let seq = gens.last().map_or(1, |&(s, _)| s + 1);
        let path = self.dir.join(format!("ckpt-{seq:06}.rlc"));
        rlleg_design::fsio::write_atomic(&path, &encode(state))?;
        if !telemetry::disabled() {
            telemetry::counter("ckpt.saved").inc();
        }
        // Prune oldest generations beyond the keep limit (the one just
        // written counts).
        let total = gens.len() + 1;
        for (_, old) in gens.into_iter().take(total.saturating_sub(self.keep)) {
            let _ = std::fs::remove_file(old);
        }
        Ok(path)
    }

    /// Loads the newest generation that decodes cleanly, falling back past
    /// corrupted/truncated/version-skewed files. Returns `None` when no
    /// valid generation exists. Skipped files are counted under
    /// `ckpt.corrupt_skipped`; a successful fallback past at least one bad
    /// file bumps `ckpt.recovered_fallback`.
    pub fn load_latest(&self) -> Option<(u64, TrainerState)> {
        let mut skipped = 0u64;
        let mut found = None;
        for (seq, path) in self.generations().into_iter().rev() {
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    skipped += 1;
                    continue;
                }
            };
            match decode(&bytes) {
                Ok(state) => {
                    found = Some((seq, state));
                    break;
                }
                Err(e) => {
                    skipped += 1;
                    if !telemetry::disabled() {
                        telemetry::counter("ckpt.corrupt_skipped").inc();
                    }
                    // The message names the file so an operator can delete
                    // or inspect it; recovery continues regardless.
                    let _ = e;
                }
            }
        }
        if !telemetry::disabled() && skipped > 0 && found.is_some() {
            telemetry::counter("ckpt.recovered_fallback").inc();
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str, keep: usize) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!(
            "rlleg-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir, keep).expect("store")
    }

    fn sample_state(seed: u32) -> TrainerState {
        TrainerState {
            cfg: RlConfig::default(),
            episode: seed as usize,
            steps: u64::from(seed) * 37,
            params_bits: (0..16)
                .map(|i| (0.1 * (i + seed) as f32).to_bits())
                .collect(),
            adam: rlleg_nn::optim::Adam::new(16, 3e-4).to_raw(),
            rng_words: (0..8).map(|i| u64::from(seed) << 32 | i).collect(),
            best_cost_bits: f64::INFINITY.to_bits(),
            best_params_bits: vec![1.5f32.to_bits(); 16],
            history: Vec::new(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip_is_exact() {
        let state = sample_state(3);
        let back = decode(&encode(&state)).expect("round trip");
        assert_eq!(back, state);
        assert_eq!(back.best_cost_bits, f64::INFINITY.to_bits());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_state(1));
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 4, bytes.len() - 1] {
            assert!(
                matches!(
                    decode(&bytes[..cut]),
                    Err(CheckpointError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bit_flip_in_body_is_detected() {
        let mut bytes = encode(&sample_state(2));
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode(&bytes),
            Err(CheckpointError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn version_skew_and_bad_magic_are_detected() {
        let mut bytes = encode(&sample_state(2));
        bytes[4] = 99;
        assert_eq!(
            decode(&bytes),
            Err(CheckpointError::VersionSkew { found: 99 })
        );
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn store_rotates_and_recovers_past_corruption() {
        let store = temp_store("rotate", 2);
        assert!(store.load_latest().is_none(), "empty store");
        store.save(&sample_state(1)).expect("gen 1");
        store.save(&sample_state(2)).expect("gen 2");
        store.save(&sample_state(3)).expect("gen 3");
        let gens = store.generations();
        assert_eq!(
            gens.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![2, 3],
            "keep=2 prunes the oldest"
        );
        // Corrupt the newest generation: load must fall back to gen 2.
        let newest = &gens.last().expect("gen 3").1;
        let mut bytes = std::fs::read(newest).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(newest, &bytes).expect("corrupt");
        let (seq, state) = store.load_latest().expect("fallback");
        assert_eq!(seq, 2);
        assert_eq!(state.episode, 2);
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
