//! The legalizer MDP environment (Sec. III-A).
//!
//! States are `N × 13` feature matrices of the not-yet-legalized cells of
//! the current Gcell subepisode (feature-wise L2-normalized); actions pick
//! the next cell to legalize; rewards follow Eq. 2. One episode legalizes
//! the whole design, Gcell by Gcell.

use rlleg_design::{metrics, CellId, Design};
use rlleg_geom::Dbu;
use rlleg_legalize::{
    FeatureSpace, GcellGrid, Legalizer, Ordering, PlaceCellError, TetrisLegalizer, NUM_FEATURES,
};

use crate::config::Backend;
use rlleg_nn::{ops, Matrix};

use crate::reward::{RewardParams, FAIL_REWARD};

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The cell was legalized.
    Placed {
        /// Eq. 2 reward.
        reward: f32,
        /// Physical displacement in dbu.
        displacement: Dbu,
    },
    /// The pixel search failed; the subepisode must terminate (penalty
    /// reward).
    Failed {
        /// The failure penalty (−5).
        reward: f32,
    },
}

impl StepOutcome {
    /// The reward of this outcome.
    pub fn reward(&self) -> f32 {
        match self {
            StepOutcome::Placed { reward, .. } | StepOutcome::Failed { reward } => *reward,
        }
    }

    /// `true` when the step failed.
    pub fn is_failure(&self) -> bool {
        matches!(self, StepOutcome::Failed { .. })
    }
}

/// A sequential legalizer behind the environment, selected by
/// [`Backend`].
#[derive(Debug)]
enum BackendImpl {
    // Boxed: the diamond legalizer carries the SoA hot-cell snapshot and
    // dwarfs the Tetris variant.
    Diamond(Box<Legalizer>),
    Tetris(TetrisLegalizer),
}

impl BackendImpl {
    fn new(kind: Backend, design: &Design) -> Self {
        match kind {
            Backend::Diamond => BackendImpl::Diamond(Box::new(Legalizer::new(design))),
            Backend::Tetris => BackendImpl::Tetris(TetrisLegalizer::new(design)),
        }
    }

    fn kind(&self) -> Backend {
        match self {
            BackendImpl::Diamond(_) => Backend::Diamond,
            BackendImpl::Tetris(_) => Backend::Tetris,
        }
    }

    fn legalize_cell(
        &mut self,
        design: &mut Design,
        cell: rlleg_design::CellId,
    ) -> Result<Dbu, PlaceCellError> {
        match self {
            BackendImpl::Diamond(lg) => lg.legalize_cell(design, cell),
            BackendImpl::Tetris(lg) => lg.legalize_cell(design, cell),
        }
    }
}

/// The legalization environment: a design plus the machinery to legalize
/// one chosen cell at a time and expose the Table-I features.
#[derive(Debug)]
pub struct LegalizeEnv {
    design: Design,
    legalizer: BackendImpl,
    features: FeatureSpace,
    gcells: GcellGrid,
    reward: RewardParams,
    hpwl_at_gp: Dbu,
}

impl LegalizeEnv {
    /// Wraps `design` with the paper's automatic Gcell grid and the
    /// diamond-search backend.
    pub fn new(design: Design) -> Self {
        let gcells = GcellGrid::auto(&design);
        Self::with_options(design, gcells, Backend::Diamond)
    }

    /// Wraps `design` with an explicit Gcell grid (diamond backend).
    pub fn with_gcells(design: Design, gcells: GcellGrid) -> Self {
        Self::with_options(design, gcells, Backend::Diamond)
    }

    /// Wraps `design` with an explicit Gcell grid and legalizer backend.
    pub fn with_options(design: Design, gcells: GcellGrid, backend: Backend) -> Self {
        let reward = RewardParams::for_design(&design);
        let hpwl_at_gp = metrics::total_hpwl(&design);
        let legalizer = BackendImpl::new(backend, &design);
        let features = FeatureSpace::new(&design, &gcells);
        Self {
            design,
            legalizer,
            features,
            gcells,
            reward,
            hpwl_at_gp,
        }
    }

    /// The backend in use.
    pub fn backend(&self) -> Backend {
        self.legalizer.kind()
    }

    /// The wrapped design (current positions).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Consumes the environment, returning the design in its current state.
    pub fn into_design(self) -> Design {
        self.design
    }

    /// The Gcell grid driving subepisodes.
    pub fn gcells(&self) -> &GcellGrid {
        &self.gcells
    }

    /// HPWL measured at the global-placement input.
    pub fn hpwl_at_gp(&self) -> Dbu {
        self.hpwl_at_gp
    }

    /// Restores the global placement and rebuilds internal state (start of
    /// a new episode).
    pub fn reset(&mut self) {
        self.design.reset_to_global_placement();
        self.legalizer = BackendImpl::new(self.legalizer.kind(), &self.design);
        self.features = FeatureSpace::new(&self.design, &self.gcells);
    }

    /// Subepisode (Gcell) indices in training order: descending cell count.
    pub fn subepisode_order(&self) -> Vec<usize> {
        self.gcells.subepisode_order()
    }

    /// The not-yet-legalized movable cells of Gcell `g`, in a fixed
    /// size-descending order (initial subepisode work list).
    pub fn remaining_in(&self, g: usize) -> Vec<CellId> {
        let pending: Vec<CellId> = self
            .gcells
            .cells_of(g)
            .iter()
            .copied()
            .filter(|&id| !self.design.cell(id).legalized)
            .collect();
        Ordering::SizeDescending.order(&self.design, Some(&pending))
    }

    /// The normalized `cells.len() × 13` state matrix (feature-wise L2
    /// normalization, Sec. III-D).
    ///
    /// # Panics
    ///
    /// Panics when `cells` is empty.
    pub fn state(&self, cells: &[CellId]) -> Matrix {
        assert!(!cells.is_empty(), "state of zero cells");
        let mut raw = self.features.state(&self.design, cells);
        ops::l2_normalize_columns(&mut raw, NUM_FEATURES);
        Matrix::from_vec(cells.len(), NUM_FEATURES, raw)
    }

    /// [`state`](Self::state) written into `out` through the `scratch`
    /// feature buffer, reusing both allocations.
    ///
    /// Training loops call this for states that are consumed immediately
    /// (bootstrap-tail value estimates) rather than stored in a batch, so
    /// the per-step allocations drop out of the hot path.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is empty.
    pub fn state_into(&self, cells: &[CellId], scratch: &mut Vec<f32>, out: &mut Matrix) {
        assert!(!cells.is_empty(), "state of zero cells");
        self.features.state_into(&self.design, cells, scratch);
        ops::l2_normalize_columns(scratch, NUM_FEATURES);
        out.copy_from(cells.len(), NUM_FEATURES, scratch);
    }

    /// Legalizes `cell` (the agent's action) and returns the Eq.-2 reward.
    ///
    /// On failure the caller must terminate the subepisode, as the paper
    /// does ("the corresponding episode is terminated, followed by the next
    /// episode").
    pub fn step(&mut self, cell: CellId) -> StepOutcome {
        let old_pos = self.design.cell(cell).pos;
        let hpwl_before = metrics::hpwl_around(&self.design, cell);
        match self.legalizer.legalize_cell(&mut self.design, cell) {
            Ok(displacement) => {
                let hpwl_after = metrics::hpwl_around(&self.design, cell);
                self.features.on_cell_legalized(&self.design, cell, old_pos);
                let reward = self
                    .reward
                    .step_reward(displacement, hpwl_after - hpwl_before);
                StepOutcome::Placed {
                    reward,
                    displacement,
                }
            }
            Err(_) => StepOutcome::Failed {
                reward: FAIL_REWARD,
            },
        }
    }

    /// The scalar legalization cost of the current placement (used for
    /// learning curves; lower is better, failures dominate).
    pub fn legalization_cost(&self) -> f64 {
        metrics::legalization_cost(&self.design, self.hpwl_at_gp)
    }

    /// Current QoR measurement.
    pub fn qor(&self) -> metrics::Qor {
        metrics::Qor::measure(&self.design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn env() -> LegalizeEnv {
        let mut b = DesignBuilder::new("env", Technology::contest(), 30, 8);
        for i in 0..12i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 2,
                1,
                Point::new(i * 290, (i % 3) * 900),
            );
        }
        let a = rlleg_design::CellId(0);
        let c = rlleg_design::CellId(5);
        b.add_net("n", vec![(a, 0, 0), (c, 0, 0)]);
        LegalizeEnv::new(b.build())
    }

    #[test]
    fn subepisode_lists_shrink_as_cells_legalize() {
        let mut e = env();
        let order = e.subepisode_order();
        assert_eq!(order, vec![0], "small core => single gcell");
        let before = e.remaining_in(0);
        assert_eq!(before.len(), 12);
        let out = e.step(before[0]);
        assert!(!out.is_failure());
        assert_eq!(e.remaining_in(0).len(), 11);
    }

    #[test]
    fn state_shape_and_normalization() {
        let e = env();
        let cells = e.remaining_in(0);
        let s = e.state(&cells);
        assert_eq!(s.rows(), 12);
        assert_eq!(s.cols(), NUM_FEATURES);
        // Each nonzero column has unit L2 norm.
        for c in 0..NUM_FEATURES {
            let norm: f32 = (0..s.rows())
                .map(|r| s[(r, c)] * s[(r, c)])
                .sum::<f32>()
                .sqrt();
            assert!(norm < 1.0 + 1e-4, "column {c} norm {norm}");
        }
    }

    #[test]
    fn state_into_matches_state_and_reuses_buffers() {
        let mut e = env();
        let mut scratch = Vec::new();
        let mut out = rlleg_nn::Matrix::zeros(0, 0);
        for _ in 0..3 {
            let cells = e.remaining_in(0);
            let fresh = e.state(&cells);
            e.state_into(&cells, &mut scratch, &mut out);
            assert_eq!(out, fresh, "scratch path must be bit-identical");
            e.step(cells[0]);
        }
    }

    #[test]
    fn rewards_are_positive_on_success() {
        let mut e = env();
        for cell in e.remaining_in(0) {
            let out = e.step(cell);
            assert!(out.reward() > 0.0, "{out:?}");
        }
        assert!(e.qor().is_complete());
        assert!(e.legalization_cost() < 1_000.0, "no failure penalty");
    }

    #[test]
    fn reset_restores_everything() {
        let mut e = env();
        let cost0 = {
            for cell in e.remaining_in(0) {
                e.step(cell);
            }
            e.legalization_cost()
        };
        e.reset();
        assert_eq!(e.remaining_in(0).len(), 12);
        assert_eq!(e.qor().unplaced, 12);
        // Re-running the same actions yields the same cost (determinism).
        for cell in e.remaining_in(0) {
            e.step(cell);
        }
        assert!((e.legalization_cost() - cost0).abs() < 1e-9);
    }

    #[test]
    fn tetris_backend_steps_and_resets() {
        let mut b = DesignBuilder::new("tb", Technology::contest(), 30, 8);
        for i in 0..10i64 {
            b.add_cell(format!("u{i}"), 1 + i % 2, 1, Point::new(i * 300, 700));
        }
        let d = b.build();
        let gcells = rlleg_legalize::GcellGrid::auto(&d);
        let mut e = LegalizeEnv::with_options(d, gcells, Backend::Tetris);
        assert_eq!(e.backend(), Backend::Tetris);
        for cell in e.remaining_in(0) {
            assert!(!e.step(cell).is_failure());
        }
        assert!(e.qor().is_complete());
        assert!(rlleg_design::legality::is_legal(e.design()));
        e.reset();
        assert_eq!(e.backend(), Backend::Tetris, "backend survives reset");
        assert_eq!(e.qor().unplaced, 10);
    }

    #[test]
    fn failure_returns_penalty() {
        let mut b = DesignBuilder::new("tiny", Technology::contest(), 4, 2);
        b.add_cell("a", 1, 1, Point::new(0, 0));
        b.add_cell("b", 4, 2, Point::new(0, 0));
        b.add_fixed_cell("m", 4, 1, Point::new(0, 2_000)); // block top row
        let mut e = LegalizeEnv::new(b.build());
        // Cell b (4x2) can never fit: row 1 blocked.
        let out = e.step(rlleg_design::CellId(1));
        assert!(out.is_failure());
        assert_eq!(out.reward(), FAIL_REWARD);
        assert!(
            e.legalization_cost() > 1_000.0,
            "failure dominates the cost"
        );
    }
}
