//! **RL-Legalizer**: deep-RL cell-priority optimization for mixed-height
//! standard-cell legalization — a from-scratch Rust reproduction of
//! S.-Y. Lee et al., DATE 2023.
//!
//! Sequential legalizers fix the order in which cells are legalized (by
//! size, by x-coordinate, …), and that order strongly affects displacement
//! and wirelength. This crate learns the order instead: a cell-wise
//! policy/value network ([`CellWiseNet`], Fig. 4) reads 13 features per
//! movable cell, an A3C trainer ([`train`], Algorithm 1) optimizes it
//! against the Eq.-2 reward inside the legalizer MDP ([`LegalizeEnv`]), and
//! [`RlLegalizer`] applies the frozen network to new designs.
//!
//! The pixel-wise search legalizer itself, the Gcell/bin partitioning, and
//! the feature extraction live in [`rlleg_legalize`]; the neural network
//! stack lives in [`rlleg_nn`].
//!
//! # Quickstart
//!
//! ```
//! use rl_legalizer::{train, RlConfig, RlLegalizer};
//! use rlleg_design::{legality, DesignBuilder, Technology};
//! use rlleg_geom::Point;
//!
//! // A tiny overlapping placement.
//! let mut b = DesignBuilder::new("demo", Technology::contest(), 24, 6);
//! for i in 0..10i64 {
//!     b.add_cell(format!("u{i}"), 1 + i % 2, 1, Point::new(i * 150, 500));
//! }
//! let design = b.build();
//!
//! // Train briefly, then legalize with the learned priorities.
//! let cfg = RlConfig { episodes: 3, agents: 1, hidden_dim: 12, ..RlConfig::default() };
//! let result = train(std::slice::from_ref(&design), &cfg);
//! let mut test = design.clone();
//! let report = RlLegalizer::new(result.model).legalize(&mut test);
//! assert!(report.is_complete());
//! assert!(legality::is_legal(&test));
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod config;
mod env;
mod infer;
mod model;
mod reward;
mod store;
mod train;
mod trainer;

pub use checkpoint::{
    crc32, decode, encode, CheckpointError, CheckpointStore, TrainerState, FORMAT_VERSION,
};
pub use config::{Backend, ReturnMode, RlConfig, StateMode};
pub use env::{LegalizeEnv, StepOutcome};
pub use infer::{DegradeReason, InferenceBudget, InferenceReport, RlLegalizer, Selection};
pub use model::{CellWiseNet, Forward};
pub use reward::{RewardParams, FAIL_REWARD};
pub use store::ParamStore;
pub use train::{train, TrainResult, TrainSample};
pub use trainer::{RestoreError, Trainer};
