use serde::{Deserialize, Serialize};

/// How legalized cells are handled in the state (Sec. III-E-2 / Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StateMode {
    /// Remove legalized cells from the state at every step (the paper's
    /// proposed technique; converges faster).
    #[default]
    Reduced,
    /// Keep every cell in the state and mask legalized ones out of the
    /// action distribution (the conventional technique the paper compares
    /// against).
    Masked,
}

/// How the action-value target of Eq. 6 is computed.
///
/// The paper's Eq. 6 sums rewards over the `B`-step mini-batch window with
/// no bootstrap; at the training budgets of this reproduction that target
/// is too myopic to propagate late-subepisode penalties (failures, forced
/// long displacements) back to the early ordering decisions that caused
/// them, and the learned policy degenerates toward easy-cells-first. The
/// alternatives restore long-horizon credit; the ablation bench compares
/// all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReturnMode {
    /// Eq. 6 as written: discounted rewards within the batch, no bootstrap
    /// (paper-faithful default).
    #[default]
    BatchTruncated,
    /// Eq. 6 plus a `γ^k · V(s_{t+B})` bootstrap term (classic n-step A3C).
    BatchBootstrap,
    /// Full-subepisode discounted Monte-Carlo returns (updates still run
    /// in `B`-step chunks).
    MonteCarlo,
}

/// Which sequential legalization algorithm the environment drives.
///
/// The paper's results use the pixel-wise diamond search; the Tetris
/// backend demonstrates the claim that the framework "can be applied to
/// any sequential legalization algorithms".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Backend {
    /// Pixel-wise diamond search (Sec. II-B; the paper's legalizer).
    #[default]
    Diamond,
    /// Greedy row-packing (Tetris-style) legalizer.
    Tetris,
}

/// Hyperparameters of the RL-Legalizer framework.
///
/// Defaults are the paper's Bayesian-optimized values (Sec. III-E-3):
/// α = 3e-4, γ = 0.98, B = 25, β = 0.9, η = 0.002, hidden width 256,
/// gradient clip 0.1, four A3C agents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlConfig {
    /// Hidden width of the cell-wise trunk (two FC+ReLU pairs).
    pub hidden_dim: usize,
    /// Adam learning rate α.
    pub learning_rate: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Mini-batch size B (steps between updates).
    pub batch_size: usize,
    /// Value-loss coefficient β.
    pub value_coeff: f32,
    /// Entropy-loss coefficient η.
    pub entropy_coeff: f32,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// Number of asynchronous actor-critic agents.
    pub agents: usize,
    /// Training episodes per agent (the paper runs 1 000; most designs
    /// converge before 200 — Fig. 6).
    pub episodes: usize,
    /// State handling for legalized cells.
    pub state_mode: StateMode,
    /// How action-value targets Q(s,a) are computed (Eq. 6 and variants).
    pub return_mode: ReturnMode,
    /// Normalize advantages to zero mean / unit variance within each
    /// update batch. Not in the paper; reduces gradient variance enough to
    /// matter at laptop-scale training budgets (see the ablation bench).
    pub normalize_advantage: bool,
    /// Terminate a subepisode at the first legalization failure (paper
    /// behaviour). With `false`, the failed cell takes its −5 penalty and
    /// is skipped, and the subepisode continues — this densifies the
    /// failure signal and avoids the degenerate "never pick hard cells"
    /// policy on failure-prone designs (see the ablation bench).
    pub terminate_on_failure: bool,
    /// Multiplicative per-episode learning-rate decay (1.0 = constant, the
    /// paper's setting). Laptop-scale runs benefit from a mild decay: the
    /// policy-gradient noise floor otherwise keeps perturbing the policy
    /// long after the useful signal is exhausted.
    pub lr_decay: f32,
    /// Apply the policy gradient to the step that picked a failing cell.
    /// The paper's reward (Eq. 2) attaches the −5 penalty to that pick,
    /// which teaches the policy to defer hard cells even longer — failing
    /// later is still failing. With `false`, the −5 still flows into the
    /// *returns* of the preceding steps (they caused the congestion) but
    /// the failing pick itself gets no policy-gradient blame.
    pub blame_failed_pick: bool,
    /// Behaviour-cloning warm start: imitate the size-descending teacher
    /// for this many passes over the training designs before RL begins
    /// (0 = paper-faithful random initialization). On failure-prone
    /// designs the warm start keeps early exploration out of the
    /// legalization-failure regime, which the −5 penalty alone cannot do
    /// at small training budgets.
    pub pretrain_episodes: usize,
    /// Which sequential legalizer the environment drives.
    pub backend: Backend,
    /// RNG seed (each agent derives its own stream).
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 256,
            learning_rate: 3e-4,
            gamma: 0.98,
            batch_size: 25,
            value_coeff: 0.9,
            entropy_coeff: 0.002,
            grad_clip: 0.1,
            lr_decay: 1.0,
            agents: 4,
            episodes: 1_000,
            state_mode: StateMode::Reduced,
            return_mode: ReturnMode::BatchTruncated,
            normalize_advantage: false,
            terminate_on_failure: true,
            blame_failed_pick: true,
            pretrain_episodes: 0,
            backend: Backend::default(),
            seed: 0,
        }
    }
}

impl RlConfig {
    /// A configuration sized for tests and laptop-scale benches: narrow
    /// network, fewer agents/episodes, same algorithm.
    pub fn small() -> Self {
        Self {
            hidden_dim: 32,
            agents: 2,
            episodes: 30,
            ..Self::default()
        }
    }

    /// The configuration this reproduction's benches use for "Ours":
    /// paper hyperparameters plus the long-horizon fixes that laptop-scale
    /// budgets need (see EXPERIMENTS.md for the ablation evidence):
    /// Monte-Carlo returns, gamma = 0.999, no blame on failing picks,
    /// continue-past-failure subepisodes, and a short size-teacher warm
    /// start. The network is narrowed to 64 (the paper's Bayesian search
    /// range was 64-512; CPU training makes the small end the right
    /// choice).
    pub fn tuned() -> Self {
        Self {
            hidden_dim: 64,
            gamma: 0.999,
            return_mode: ReturnMode::MonteCarlo,
            lr_decay: 0.98,
            terminate_on_failure: false,
            blame_failed_pick: false,
            pretrain_episodes: 4,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RlConfig::default();
        assert_eq!(c.hidden_dim, 256);
        assert!((c.learning_rate - 3e-4).abs() < 1e-9);
        assert!((c.gamma - 0.98).abs() < 1e-9);
        assert_eq!(c.batch_size, 25);
        assert!((c.value_coeff - 0.9).abs() < 1e-9);
        assert!((c.entropy_coeff - 0.002).abs() < 1e-9);
        assert!((c.grad_clip - 0.1).abs() < 1e-9);
        assert_eq!(c.agents, 4);
        assert_eq!(c.state_mode, StateMode::Reduced);
        assert_eq!(c.return_mode, ReturnMode::BatchTruncated);
        assert!(!c.normalize_advantage);
        assert!(c.terminate_on_failure);
        assert!((c.lr_decay - 1.0).abs() < 1e-9);
        assert_eq!(c.pretrain_episodes, 0);
        assert!(c.blame_failed_pick);
        assert_eq!(c.backend, Backend::Diamond);
    }

    #[test]
    fn tuned_differs_where_documented() {
        let t = RlConfig::tuned();
        assert_eq!(t.return_mode, ReturnMode::MonteCarlo);
        assert!(!t.blame_failed_pick);
        assert!(!t.terminate_on_failure);
        assert!(t.pretrain_episodes > 0);
        // Paper values that stay untouched.
        assert_eq!(t.batch_size, 25);
        assert!((t.value_coeff - 0.9).abs() < 1e-9);
    }

    #[test]
    fn small_is_smaller() {
        let c = RlConfig::small();
        assert!(c.hidden_dim < 256);
        assert!(c.episodes < 1_000);
    }
}
