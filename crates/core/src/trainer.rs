//! A deterministic, checkpointable A3C training driver.
//!
//! [`train`](crate::train::train) runs its agents on OS threads, so the
//! interleaving of shared-network updates — and therefore the resulting
//! parameters — depends on the scheduler whenever `agents > 1`. That is
//! fine for throughput but fatal for crash recovery: a resumed run could
//! never be checked against an uninterrupted one. [`Trainer`] runs the
//! *same* per-agent episode logic (literally the same
//! `run_subepisode`/`update` code) in a deterministic round-robin — for
//! each episode, every agent in index order — which makes the whole
//! training trajectory a pure function of `(designs, cfg)` and lets
//! [`Trainer::state`] capture it completely: parameters, optimizer
//! moments, per-agent RNG states, counters, and the learning curve, all
//! bit-exact. Resuming from a [`TrainerState`] (persisted through
//! [`CheckpointStore`](crate::checkpoint::CheckpointStore)) is
//! bit-identical to never having stopped — proptested in
//! `tests/resume_prop.rs`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use parking_lot::Mutex;
use rlleg_design::Design;
use rlleg_nn::optim::Adam;

use crate::checkpoint::TrainerState;
use crate::config::RlConfig;
use crate::env::LegalizeEnv;
use crate::model::CellWiseNet;
use crate::train::{pretrain, run_subepisode, Shared, TrainResult, TrainSample};

/// Why a [`TrainerState`] could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The parameter vector length does not match the configured network.
    ParamCount {
        /// Parameters the configured network has.
        expected: usize,
        /// Parameters the state carries.
        found: usize,
    },
    /// The RNG state block is not 4 words per configured agent.
    RngWords {
        /// Words expected (`4 × agents`).
        expected: usize,
        /// Words the state carries.
        found: usize,
    },
    /// The state claims more episodes than the configuration allows.
    EpisodeOverflow {
        /// Configured episode budget.
        budget: usize,
        /// Episodes the state claims to have completed.
        found: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ParamCount { expected, found } => {
                write!(f, "checkpoint has {found} params, network needs {expected}")
            }
            RestoreError::RngWords { expected, found } => {
                write!(f, "checkpoint has {found} RNG words, expected {expected}")
            }
            RestoreError::EpisodeOverflow { budget, found } => {
                write!(f, "checkpoint at episode {found} exceeds budget {budget}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Deterministic round-robin A3C trainer with bit-exact checkpointing.
///
/// ```
/// use rl_legalizer::{RlConfig, Trainer};
/// use rlleg_design::{DesignBuilder, Technology};
/// use rlleg_geom::Point;
///
/// let mut b = DesignBuilder::new("demo", Technology::contest(), 24, 6);
/// for i in 0..8i64 {
///     b.add_cell(format!("u{i}"), 1 + i % 2, 1, Point::new(i * 300, 500));
/// }
/// let design = b.build();
/// let cfg = RlConfig { episodes: 2, agents: 1, hidden_dim: 8, ..RlConfig::default() };
/// let mut t = Trainer::new(std::slice::from_ref(&design), &cfg);
/// t.run_episode();
/// let state = t.state(); // checkpointable at any episode boundary
/// t.run_episode();
/// let resumed = Trainer::restore(std::slice::from_ref(&design), &state).unwrap();
/// assert_eq!(resumed.episode(), 1);
/// ```
pub struct Trainer {
    cfg: RlConfig,
    /// Network used as a structural template (parameters live in `shared`).
    template: CellWiseNet,
    shared: Shared,
    /// Per-agent policy-sampling RNG streams.
    rngs: Vec<ChaCha8Rng>,
    /// One environment per design, shared by the (sequential) agents and
    /// reset before every episode; rebuilt — not checkpointed — because
    /// `LegalizeEnv::reset` restores the full per-episode state.
    envs: Vec<LegalizeEnv>,
    episode: usize,
    steps: u64,
}

impl Trainer {
    /// Creates a trainer (including any configured behaviour-cloning warm
    /// start, exactly as [`train`](crate::train::train) would).
    ///
    /// # Panics
    ///
    /// Panics when `designs` is empty or `cfg.agents == 0`.
    pub fn new(designs: &[Design], cfg: &RlConfig) -> Self {
        assert!(!designs.is_empty(), "training needs at least one design");
        assert!(cfg.agents > 0, "need at least one agent");
        let mut init_rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut template = CellWiseNet::new(cfg.hidden_dim, &mut init_rng);
        if cfg.pretrain_episodes > 0 {
            pretrain(&mut template, designs, cfg);
        }
        let shared = Shared::fresh(template.params_flat(), cfg.learning_rate);
        let rngs = (0..cfg.agents)
            .map(|agent| ChaCha8Rng::seed_from_u64(cfg.seed ^ ((agent as u64 + 1) * 0x9E37)))
            .collect();
        Self {
            cfg: cfg.clone(),
            template,
            shared,
            rngs,
            envs: Self::build_envs(designs, cfg),
            episode: 0,
            steps: 0,
        }
    }

    fn build_envs(designs: &[Design], cfg: &RlConfig) -> Vec<LegalizeEnv> {
        designs
            .iter()
            .map(|d| {
                let gcells = rlleg_legalize::GcellGrid::auto(d);
                LegalizeEnv::with_options(d.clone(), gcells, cfg.backend)
            })
            .collect()
    }

    /// Episodes completed so far.
    pub fn episode(&self) -> usize {
        self.episode
    }

    /// Total environment steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// `true` once the configured episode budget is exhausted.
    pub fn done(&self) -> bool {
        self.episode >= self.cfg.episodes
    }

    /// Runs one episode for every agent (in agent-index order). Returns
    /// `false` without doing anything once the episode budget is spent.
    pub fn run_episode(&mut self) -> bool {
        if self.done() {
            return false;
        }
        let episode = self.episode;
        let lr = self.cfg.learning_rate * self.cfg.lr_decay.powi(episode as i32);
        for agent in 0..self.cfg.agents {
            let di = (agent + episode) % self.envs.len();
            // Fresh local copy of the current global parameters — the
            // deterministic analogue of the async agents' refresh-after-
            // update, and what keeps the checkpoint state minimal (locals
            // never need to be persisted). Kept around as the snapshot
            // `shared.best` records if this episode sets a new best cost.
            let mut local = self.template.clone();
            let ep_params = self.shared.store.snapshot();
            local.set_params_flat(&ep_params);
            self.envs[di].reset();
            let mut failures = 0usize;
            let mut steps = 0usize;
            for g in self.envs[di].subepisode_order() {
                let (f, s) = run_subepisode(
                    &mut self.envs[di],
                    g,
                    &mut local,
                    &self.shared,
                    &self.cfg,
                    lr,
                    &mut self.rngs[agent],
                );
                failures += f;
                steps += s;
            }
            self.steps += steps as u64;
            let cost = self.envs[di].legalization_cost();
            if !telemetry::disabled() {
                telemetry::counter("train.steps").add(steps as u64);
                telemetry::counter("train.episodes").inc();
                telemetry::histogram("train.episode_cost", telemetry::buckets::MAGNITUDE)
                    .record(cost);
            }
            let sample = TrainSample {
                agent,
                episode,
                design: self.envs[di].design().name.clone(),
                cost,
                failures,
                qor: self.envs[di].qor(),
            };
            self.shared.history.lock().push(sample);
            // Record the parameters the episode *started* from — the ones
            // that actually produced the recorded cost. (The old code
            // stored the post-update locals, a strictly newer version the
            // episode never ran with.)
            let mut best = self.shared.best.lock();
            if cost < best.0 {
                best.0 = cost;
                best.1 = ep_params;
            }
        }
        self.episode += 1;
        true
    }

    /// Runs up to `episodes` more episodes (stops early at the budget).
    /// Returns the number actually run.
    pub fn train_for(&mut self, episodes: usize) -> usize {
        let mut ran = 0;
        for _ in 0..episodes {
            if !self.run_episode() {
                break;
            }
            ran += 1;
        }
        ran
    }

    /// Captures the complete training state, bit-exactly. Valid at any
    /// episode boundary.
    pub fn state(&self) -> TrainerState {
        let params = self.shared.store.snapshot();
        let best = self.shared.best.lock();
        TrainerState {
            cfg: self.cfg.clone(),
            episode: self.episode,
            steps: self.steps,
            params_bits: params.iter().map(|x| x.to_bits()).collect(),
            adam: self.shared.opt.lock().to_raw(),
            rng_words: self.rngs.iter().flat_map(|r| r.state()).collect(),
            best_cost_bits: best.0.to_bits(),
            best_params_bits: best.1.iter().map(|x| x.to_bits()).collect(),
            history: self.shared.history.lock().clone(),
        }
    }

    /// Rebuilds a trainer from a captured state; continuing it is
    /// bit-identical to the run that produced the state.
    ///
    /// `designs` must be the same designs the original run used (they are
    /// not persisted in the state — environments are reconstructed).
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] when the state is inconsistent with the
    /// configuration it carries.
    pub fn restore(designs: &[Design], state: &TrainerState) -> Result<Self, RestoreError> {
        assert!(!designs.is_empty(), "training needs at least one design");
        let cfg = state.cfg.clone();
        assert!(cfg.agents > 0, "need at least one agent");
        // Structural template only: every parameter is overwritten below,
        // so the construction RNG draws don't matter (and pretrain must
        // NOT run again).
        let mut init_rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut template = CellWiseNet::new(cfg.hidden_dim, &mut init_rng);
        let n_params = template.num_params();
        if state.params_bits.len() != n_params {
            return Err(RestoreError::ParamCount {
                expected: n_params,
                found: state.params_bits.len(),
            });
        }
        let expected_words = 4 * cfg.agents;
        if state.rng_words.len() != expected_words {
            return Err(RestoreError::RngWords {
                expected: expected_words,
                found: state.rng_words.len(),
            });
        }
        if state.episode > cfg.episodes {
            return Err(RestoreError::EpisodeOverflow {
                budget: cfg.episodes,
                found: state.episode,
            });
        }
        let params: Vec<f32> = state
            .params_bits
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect();
        template.set_params_flat(&params);
        let best_params: Vec<f32> = state
            .best_params_bits
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect();
        let shared = Shared {
            store: crate::store::ParamStore::new(params),
            opt: Mutex::new(Adam::from_raw(&state.adam)),
            history: Mutex::new(state.history.clone()),
            best: Mutex::new((f64::from_bits(state.best_cost_bits), best_params)),
        };
        let rngs = state
            .rng_words
            .chunks_exact(4)
            .map(|w| ChaCha8Rng::from_state([w[0], w[1], w[2], w[3]]))
            .collect();
        if !telemetry::disabled() {
            telemetry::counter("ckpt.restored").inc();
        }
        Ok(Self {
            envs: Self::build_envs(designs, &cfg),
            cfg,
            template,
            shared,
            rngs,
            episode: state.episode,
            steps: state.steps,
        })
    }

    /// Finalizes training into the same [`TrainResult`] shape
    /// [`train`](crate::train::train) produces.
    pub fn finish(self) -> TrainResult {
        let params = self.shared.store.into_inner();
        let (_, best_params) = self.shared.best.into_inner();
        let mut model = self.template.clone();
        let mut best_model = self.template;
        model.set_params_flat(&params);
        best_model.set_params_flat(&best_params);
        let mut history = self.shared.history.into_inner();
        history.sort_by_key(|s| (s.episode, s.agent));
        TrainResult {
            model,
            best_model,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{decode, encode};
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn toy_design(seed: i64) -> Design {
        let mut b = DesignBuilder::new(format!("toy{seed}"), Technology::contest(), 24, 6);
        for i in 0..12i64 {
            let x = (i * 331 + seed * 97) % 4_000;
            let y = (i * 1_777) % 10_000;
            b.add_cell(
                format!("u{i}"),
                1 + i % 2,
                1 + (i % 3 == 0) as u8,
                Point::new(x, y),
            );
        }
        b.build()
    }

    fn tiny_cfg() -> RlConfig {
        RlConfig {
            hidden_dim: 10,
            agents: 2,
            episodes: 4,
            batch_size: 8,
            ..RlConfig::default()
        }
    }

    fn param_bits(result: &TrainResult) -> Vec<u32> {
        let mut m = result.model.clone();
        m.params_flat().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn trainer_is_deterministic() {
        let designs = [toy_design(0), toy_design(1)];
        let cfg = tiny_cfg();
        let mut a = Trainer::new(&designs, &cfg);
        let mut b = Trainer::new(&designs, &cfg);
        while a.run_episode() {}
        while b.run_episode() {}
        let ra = a.finish();
        let rb = b.finish();
        assert_eq!(param_bits(&ra), param_bits(&rb));
        assert_eq!(ra.history, rb.history);
        assert_eq!(ra.history.len(), 2 * 4);
    }

    #[test]
    fn resume_through_encoded_checkpoint_is_bit_identical() {
        let designs = [toy_design(2)];
        let cfg = RlConfig {
            agents: 2,
            episodes: 3,
            ..tiny_cfg()
        };
        // Uninterrupted run.
        let mut full = Trainer::new(&designs, &cfg);
        while full.run_episode() {}
        let r_full = full.finish();
        // Interrupted at episode 1, resumed through the framed format.
        let mut part = Trainer::new(&designs, &cfg);
        part.run_episode();
        let state = decode(&encode(&part.state())).expect("round trip");
        drop(part); // the "crash"
        let mut resumed = Trainer::restore(&designs, &state).expect("restore");
        while resumed.run_episode() {}
        let r_resumed = resumed.finish();
        assert_eq!(param_bits(&r_full), param_bits(&r_resumed));
        let costs = |r: &TrainResult| {
            r.history
                .iter()
                .map(|s| s.cost.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(costs(&r_full), costs(&r_resumed));
    }

    #[test]
    fn best_model_is_the_episode_start_snapshot_of_the_best_episode() {
        // The best-model snapshot must be the parameters the winning
        // episode *ran under* (its episode-start sync), not whatever the
        // agent's local net drifted to by episode end. With one agent the
        // episode-start parameters are exactly the globals at each
        // `run_episode` boundary, so we can capture them from `state()`.
        let designs = [toy_design(4)];
        let cfg = RlConfig {
            agents: 1,
            episodes: 4,
            ..tiny_cfg()
        };
        let mut t = Trainer::new(&designs, &cfg);
        let mut boundary_params: Vec<Vec<u32>> = Vec::new();
        while !t.done() {
            boundary_params.push(t.state().params_bits.clone());
            t.run_episode();
        }
        let state = t.state();
        let r = t.finish();
        let best_ep = r
            .history
            .iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .expect("history nonempty")
            .episode;
        assert_eq!(
            state.best_params_bits, boundary_params[best_ep],
            "best snapshot must be the start-of-episode-{best_ep} parameters"
        );
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let designs = [toy_design(3)];
        let cfg = RlConfig {
            agents: 1,
            episodes: 2,
            ..tiny_cfg()
        };
        let t = Trainer::new(&designs, &cfg);
        let good = t.state();

        let mut bad = good.clone();
        bad.params_bits.pop();
        assert!(matches!(
            Trainer::restore(&designs, &bad),
            Err(RestoreError::ParamCount { .. })
        ));

        let mut bad = good.clone();
        bad.rng_words.push(7);
        assert!(matches!(
            Trainer::restore(&designs, &bad),
            Err(RestoreError::RngWords { .. })
        ));

        let mut bad = good;
        bad.episode = 99;
        assert!(matches!(
            Trainer::restore(&designs, &bad),
            Err(RestoreError::EpisodeOverflow { .. })
        ));
    }
}
