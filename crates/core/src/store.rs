//! A versioned, double-buffered parameter store for asynchronous A3C.
//!
//! The original training loop funneled every parameter read *and* write
//! through one coarse `Mutex<(params, Adam)>`: an agent refreshing its
//! local network blocked every other agent's gradient application, so the
//! "asynchronous" agents of Algorithm 1 spent most of their wall clock
//! convoyed on the lock. [`ParamStore`] splits the two roles:
//!
//! - **Writers** (gradient applications) stay serialized — Adam's moment
//!   vectors are inherently sequential — but publish each new parameter
//!   vector into one of two atomic buffers and bump an epoch counter.
//! - **Readers** (agents syncing `θ' ← θ`, Algorithm 1 line 4) copy the
//!   *active* buffer without taking any lock, then validate the epoch.
//!   A reader only retries when at least two publishes completed during
//!   its copy (the double buffer absorbs one), so readers never block
//!   writers and writers never block readers.
//!
//! The protocol is a seqlock over a double buffer. `version` encodes
//! `2 × publishes + in_progress`; the active (stable) buffer is
//! `publishes & 1`. A writer marks the store odd *before* touching the
//! inactive buffer and even again after, so a reader that observed any of
//! the writer's stores is guaranteed — via the release fence before the
//! stores and the acquire fence after the reader's loads — to fail its
//! epoch validation and retry. Buffer words are `AtomicU32` f32 bits:
//! every access is atomic, so a torn read is impossible at the word level
//! and detected at the vector level by the epoch check. Snapshots are
//! therefore always bit-exact copies of some published parameter vector —
//! the property the `params` fuzz oracle hammers on.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Lock-free-to-read, serialized-to-write versioned parameter buffer.
///
/// See the module docs for the protocol. The store has a fixed length set
/// at construction; [`update`](Self::update) and
/// [`read_into`](Self::read_into) panic on length mismatch (parameter
/// vectors never change shape mid-training).
pub struct ParamStore {
    /// Writer-side canonical parameters, also serializing writers.
    master: Mutex<Vec<f32>>,
    /// The two published buffers (f32 bits). `bufs[publishes & 1]` is the
    /// stable one; the other is the writer's scratch.
    bufs: [Box<[AtomicU32]>; 2],
    /// `2 × publishes + (1 if a publish is copying)`.
    version: AtomicU64,
}

impl std::fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamStore")
            .field("len", &self.len())
            .field("version", &self.version())
            .finish()
    }
}

fn bits_buf(params: &[f32]) -> Box<[AtomicU32]> {
    params.iter().map(|x| AtomicU32::new(x.to_bits())).collect()
}

impl ParamStore {
    /// Creates a store holding `initial` as published version 0.
    pub fn new(initial: Vec<f32>) -> Self {
        let bufs = [bits_buf(&initial), bits_buf(&initial)];
        Self {
            master: Mutex::new(initial),
            bufs,
            version: AtomicU64::new(0),
        }
    }

    /// Number of parameters stored.
    pub fn len(&self) -> usize {
        self.bufs[0].len()
    }

    /// `true` when the parameter vector is empty.
    pub fn is_empty(&self) -> bool {
        self.bufs[0].is_empty()
    }

    /// Number of publishes so far (the epoch of the newest snapshot).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire) >> 1
    }

    /// Applies `f` to the parameters and publishes the result as a new
    /// version. Writers are serialized; concurrent readers keep reading
    /// the previous version without blocking.
    ///
    /// Returns the epoch of the published version.
    pub fn update(&self, f: impl FnOnce(&mut [f32])) -> u64 {
        let mut master = self.master.lock();
        f(&mut master);
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 0, "version must be even between publishes");
        let publishes = v >> 1;
        let scratch = &self.bufs[((publishes + 1) & 1) as usize];
        assert_eq!(master.len(), scratch.len(), "parameter length is fixed");
        // Mark the publish in progress *before* touching the scratch
        // buffer: a reader that sees any of the stores below is guaranteed
        // to see an epoch >= this one when it validates (release fence
        // here pairs with the acquire fence in `read_into`).
        self.version.store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (slot, &p) in scratch.iter().zip(master.iter()) {
            slot.store(p.to_bits(), Ordering::Relaxed);
        }
        // Flip the active buffer; readers syncing from here on get the new
        // parameters (release store pairs with their acquire load).
        self.version.store(v + 2, Ordering::Release);
        publishes + 1
    }

    /// Copies a consistent snapshot of the newest published parameters
    /// into `out` (resized to fit) and returns its epoch.
    ///
    /// Lock-free: retries only when two or more publishes completed during
    /// the copy, which bounds staleness by construction — the snapshot is
    /// never older than the newest version at the moment the copy started.
    pub fn read_into(&self, out: &mut Vec<f32>) -> u64 {
        let n = self.len();
        out.resize(n, 0.0);
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            let publishes = v1 >> 1;
            let stable = &self.bufs[(publishes & 1) as usize];
            for (dst, slot) in out.iter_mut().zip(stable.iter()) {
                *dst = f32::from_bits(slot.load(Ordering::Relaxed));
            }
            // The stable buffer of epoch `publishes` is next written by the
            // publish of epoch `publishes + 2`, which first sets the odd
            // version `(v1 | 1) + 2`. Anything below that means the buffer
            // was untouched during our copy.
            fence(Ordering::Acquire);
            let v2 = self.version.load(Ordering::Relaxed);
            if v2 < (v1 | 1) + 2 {
                return publishes;
            }
        }
    }

    /// A fresh snapshot of the newest published parameters.
    pub fn snapshot(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.read_into(&mut out);
        out
    }

    /// Consumes the store, returning the newest parameters without a copy.
    pub fn into_inner(self) -> Vec<f32> {
        self.master.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn initial_version_is_zero_and_readable() {
        let s = ParamStore::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.version(), 0);
        assert_eq!(s.len(), 3);
        let mut out = Vec::new();
        assert_eq!(s.read_into(&mut out), 0);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn updates_bump_the_epoch_and_publish_bit_exactly() {
        let s = ParamStore::new(vec![0.0; 4]);
        // Values chosen to be bit-pattern-sensitive (subnormals, -0.0).
        let payload = [f32::from_bits(1), -0.0, 1.5e-42, f32::MAX];
        let v = s.update(|p| p.copy_from_slice(&payload));
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
        let snap = s.snapshot();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&snap), bits(&payload));
        for k in 2..10 {
            assert_eq!(s.update(|p| p[0] += 1.0), k);
        }
        assert_eq!(s.snapshot()[0] as u64 + 1, 9);
    }

    #[test]
    fn concurrent_readers_never_see_torn_snapshots() {
        // Every publish writes one uniform stamp across the vector, so any
        // torn snapshot is detectable as two distinct values.
        let n = 257; // off word-boundary on purpose
        let s = ParamStore::new(vec![0.0; n]);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let s = &s;
            let stop = &stop;
            scope.spawn(move || {
                for stamp in 1..3_000u32 {
                    s.update(|p| p.fill(stamp as f32));
                }
                stop.store(true, Ordering::Release);
            });
            for _ in 0..3 {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let epoch = s.read_into(&mut out);
                        assert!(epoch >= last_epoch, "epoch went backwards");
                        last_epoch = epoch;
                        let first = out[0];
                        assert!(
                            out.iter().all(|&x| x.to_bits() == first.to_bits()),
                            "torn snapshot at epoch {epoch}: {first} vs mixed tail"
                        );
                        // The stamp and the epoch advance in lockstep.
                        assert_eq!(first as u64, epoch, "snapshot from a different epoch");
                    }
                });
            }
        });
        assert_eq!(s.version(), 2_999);
    }
}
