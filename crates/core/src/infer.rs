//! Inference with a trained model (Sec. III-E-4, "test" process).
//!
//! The paper trains once on 80 % of the benchmarks and applies the frozen
//! network to held-out designs: a few seconds of overhead for Gcell
//! partitioning, feature extraction, and network evaluation, with ~80 % of
//! the time in feature extraction. [`RlLegalizer`] reproduces that flow and
//! reports the same timing split.

use std::time::{Duration, Instant};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rlleg_design::{CellId, Design};
use rlleg_nn::ops;

use crate::env::LegalizeEnv;
use crate::model::CellWiseNet;

/// How actions are chosen at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Highest-priority cell first (deterministic; default).
    #[default]
    Greedy,
    /// Categorical sampling from the priority vector with the given seed
    /// (the training-time behaviour).
    Sample(u64),
}

/// Outcome of one RL-ordered legalization run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Number of cells legalized.
    pub legalized: usize,
    /// Cells that failed to place (empty on success).
    pub failed: Vec<CellId>,
    /// Wall-clock total.
    pub total_time: Duration,
    /// Time spent extracting/normalizing features (the paper's dominant
    /// cost).
    pub feature_time: Duration,
    /// Time spent in network forward passes.
    pub network_time: Duration,
}

impl InferenceReport {
    /// `true` when every movable cell was legalized.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// A legalizer driven by a trained cell-priority network.
#[derive(Debug, Clone)]
pub struct RlLegalizer {
    model: CellWiseNet,
    selection: Selection,
    backend: crate::config::Backend,
}

impl RlLegalizer {
    /// Wraps a trained model with greedy selection and the diamond-search
    /// backend.
    pub fn new(model: CellWiseNet) -> Self {
        Self {
            model,
            selection: Selection::Greedy,
            backend: crate::config::Backend::Diamond,
        }
    }

    /// Sets the action-selection mode.
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the legalizer backend the inference run drives.
    pub fn with_backend(mut self, backend: crate::config::Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &CellWiseNet {
        &self.model
    }

    /// Legalizes `design` in the RL-chosen order, mutating it in place.
    ///
    /// On a failure the affected subepisode is terminated (remaining cells
    /// in that Gcell are attempted in the fallback size order so the run
    /// still commits as much as possible, mirroring how the baseline
    /// reports partial results).
    pub fn legalize(&self, design: &mut Design) -> InferenceReport {
        let _t = telemetry::span("infer.legalize");
        let t0 = Instant::now();
        let mut feature_time = Duration::ZERO;
        let mut network_time = Duration::ZERO;
        let mut network_rows = 0usize;
        let mut network_evals = 0usize;
        let mut rng = match self.selection {
            Selection::Greedy => ChaCha8Rng::seed_from_u64(0),
            Selection::Sample(seed) => ChaCha8Rng::seed_from_u64(seed),
        };

        let gcells = rlleg_legalize::GcellGrid::auto(design);
        let mut env = LegalizeEnv::with_options(design.clone(), gcells, self.backend);
        let mut legalized = 0usize;
        let mut failed = Vec::new();
        for g in env.subepisode_order() {
            let mut remaining = env.remaining_in(g);
            while !remaining.is_empty() {
                let tf = Instant::now();
                let state = env.state(&remaining);
                feature_time += tf.elapsed();
                let tn = Instant::now();
                // Policy-only batched forward: one matrix–matrix pass over
                // all candidate cells; the value head is never needed for
                // action selection.
                let logits = self.model.forward_policy(&state);
                network_time += tn.elapsed();
                network_rows += state.rows();
                network_evals += 1;
                let a = match self.selection {
                    Selection::Greedy => logits
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.total_cmp(y.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                    Selection::Sample(_) => sample(&ops::softmax(&logits), &mut rng),
                };
                let cell = remaining[a];
                let outcome = env.step(cell);
                if outcome.is_failure() {
                    failed.push(cell);
                    remaining.remove(a);
                    // Subepisode terminated: drain the rest in size order
                    // so the report covers every cell.
                    for c in remaining.drain(..) {
                        if env.step(c).is_failure() {
                            failed.push(c);
                        } else {
                            legalized += 1;
                        }
                    }
                } else {
                    legalized += 1;
                    remaining.remove(a);
                }
            }
        }
        *design = env.into_design();
        recover_failures(design, &mut legalized, &mut failed);
        let total_time = t0.elapsed();
        if !telemetry::disabled() {
            use telemetry::buckets::SECONDS;
            telemetry::counter("infer.runs").inc();
            telemetry::counter("infer.cells_failed").add(failed.len() as u64);
            telemetry::histogram("infer.total_seconds", SECONDS).record(total_time.as_secs_f64());
            telemetry::histogram("infer.feature_seconds", SECONDS)
                .record(feature_time.as_secs_f64());
            telemetry::histogram("infer.network_seconds", SECONDS)
                .record(network_time.as_secs_f64());
            // Batching factor of the policy forwards: cell rows evaluated
            // per single matrix–matrix network call.
            if network_evals > 0 {
                telemetry::histogram("infer.network.batch_rows", telemetry::buckets::MAGNITUDE)
                    .record(network_rows as f64 / network_evals as f64);
            }
        }
        InferenceReport {
            legalized,
            failed,
            total_time,
            feature_time,
            network_time,
        }
    }
}

/// Retries cells the policy-ordered pass could not place.
///
/// A failure during the main pass is usually ordering-induced: earlier
/// cells fragmented the free space until no contiguous window was left for
/// a wide or multi-row cell. Each recovery round first runs a
/// rearrangement pass (pulling committed cells back toward their
/// global-placement positions, which can reopen windows), then retries the
/// remaining failures with the rip-up-and-retry placer. Rounds stop as
/// soon as one makes no progress; genuinely impossible cells stay in
/// `failed`.
fn recover_failures(design: &mut Design, legalized: &mut usize, failed: &mut Vec<CellId>) {
    if failed.is_empty() {
        return;
    }
    let mut lg = rlleg_legalize::Legalizer::new(design);
    for _ in 0..3 {
        lg.rearrange_pass(design);
        let before = failed.len();
        let retry = std::mem::take(failed);
        for cell in retry {
            match lg.ripup_place(design, cell) {
                Ok(_) => {
                    *legalized += 1;
                    if !telemetry::disabled() {
                        telemetry::counter("infer.recovered_cells").inc();
                    }
                }
                Err(e) => failed.push(e.cell),
            }
        }
        if failed.is_empty() || failed.len() == before {
            break;
        }
    }
}

fn sample(probs: &[f32], rng: &mut impl Rng) -> usize {
    let x: f32 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rlleg_design::{legality, DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn design() -> Design {
        let mut b = DesignBuilder::new("inf", Technology::contest(), 30, 8);
        for i in 0..20i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 3,
                1 + (i % 4 == 0) as u8,
                Point::new((i * 450) % 5_000, (i * 1_300) % 14_000),
            );
        }
        b.build()
    }

    fn untrained() -> RlLegalizer {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        RlLegalizer::new(CellWiseNet::new(8, &mut rng))
    }

    #[test]
    fn untrained_model_still_legalizes_legally() {
        let mut d = design();
        let report = untrained().legalize(&mut d);
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert_eq!(report.legalized, 20);
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
        assert!(report.total_time >= report.feature_time);
    }

    #[test]
    fn greedy_is_deterministic() {
        let rl = untrained();
        let mut d1 = design();
        let mut d2 = design();
        rl.legalize(&mut d1);
        rl.legalize(&mut d2);
        for (a, b) in d1.cells.iter().zip(d2.cells.iter()) {
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn sampling_mode_runs_and_is_seeded() {
        let rl = untrained().with_selection(Selection::Sample(5));
        let mut d1 = design();
        let mut d2 = design();
        rl.legalize(&mut d1);
        rl.legalize(&mut d2);
        for (a, b) in d1.cells.iter().zip(d2.cells.iter()) {
            assert_eq!(a.pos, b.pos, "same seed, same result");
        }
        assert!(legality::is_legal(&d1));
    }

    #[test]
    fn failure_fallback_covers_all_cells() {
        // One cell is impossible; everything else must still commit.
        let mut b = DesignBuilder::new("f", Technology::contest(), 8, 2);
        for i in 0..4i64 {
            b.add_cell(format!("u{i}"), 1, 1, Point::new(i * 200, 0));
        }
        b.add_cell("impossible", 8, 2, Point::new(0, 0));
        b.add_fixed_cell("m", 8, 1, Point::new(0, 2_000));
        let mut d = b.build();
        let report = untrained().legalize(&mut d);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.legalized, 4);
    }
}
