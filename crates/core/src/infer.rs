//! Inference with a trained model (Sec. III-E-4, "test" process).
//!
//! The paper trains once on 80 % of the benchmarks and applies the frozen
//! network to held-out designs: a few seconds of overhead for Gcell
//! partitioning, feature extraction, and network evaluation, with ~80 % of
//! the time in feature extraction. [`RlLegalizer`] reproduces that flow and
//! reports the same timing split.

use std::time::{Duration, Instant};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use rlleg_design::{CellId, Design};
use rlleg_nn::ops;

use crate::env::LegalizeEnv;
use crate::model::CellWiseNet;

/// How actions are chosen at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Highest-priority cell first (deterministic; default).
    #[default]
    Greedy,
    /// Categorical sampling from the priority vector with the given seed
    /// (the training-time behaviour).
    Sample(u64),
}

/// Watchdog budget for the RL-ordered pass.
///
/// RL ordering is an *optimization*, not a correctness requirement: when
/// the network misbehaves (stalls, runs past its time share, emits NaN),
/// the run must still finish. When either limit trips, the remaining cells
/// are legalized in the deterministic size-descending fallback order and
/// the report says so in [`InferenceReport::degraded`]. The default is
/// unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferenceBudget {
    /// Maximum number of policy steps (network-driven cell selections).
    pub max_steps: Option<u64>,
    /// Maximum wall clock for the whole RL-ordered pass.
    pub max_wall: Option<Duration>,
}

impl InferenceBudget {
    /// A budget limited to `n` policy steps.
    pub fn steps(n: u64) -> Self {
        Self {
            max_steps: Some(n),
            ..Self::default()
        }
    }

    /// A budget limited to `d` of wall clock.
    pub fn wall(d: Duration) -> Self {
        Self {
            max_wall: Some(d),
            ..Self::default()
        }
    }

    /// The reason the budget is exhausted at (`steps`, `elapsed`), if it is.
    fn exhausted(&self, steps: u64, elapsed: Duration) -> Option<DegradeReason> {
        if self.max_steps.is_some_and(|m| steps >= m) {
            return Some(DegradeReason::StepBudget);
        }
        if self.max_wall.is_some_and(|m| elapsed >= m) {
            return Some(DegradeReason::WallClock);
        }
        None
    }
}

/// Why an RL-ordered run abandoned the policy and fell back to the
/// size-ordered legalizer for its remaining cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The [`InferenceBudget::max_steps`] limit was reached.
    StepBudget,
    /// The [`InferenceBudget::max_wall`] limit was reached.
    WallClock,
    /// The network produced a non-finite logit (NaN/Inf priorities cannot
    /// be ranked or sampled meaningfully).
    NonFiniteOutput,
}

impl DegradeReason {
    fn counter_name(self) -> &'static str {
        match self {
            DegradeReason::StepBudget => "infer.degrade.step_budget",
            DegradeReason::WallClock => "infer.degrade.wall_clock",
            DegradeReason::NonFiniteOutput => "infer.degrade.non_finite",
        }
    }
}

/// Outcome of one RL-ordered legalization run.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Number of cells legalized.
    pub legalized: usize,
    /// Cells that failed to place (empty on success).
    pub failed: Vec<CellId>,
    /// Why (and whether) the run degraded to the size-ordered fallback
    /// partway through. `None` for a healthy run.
    pub degraded: Option<DegradeReason>,
    /// Cells placed by the fallback path after degradation (0 for a
    /// healthy run).
    pub degraded_cells: usize,
    /// Wall-clock total.
    pub total_time: Duration,
    /// Time spent extracting/normalizing features (the paper's dominant
    /// cost).
    pub feature_time: Duration,
    /// Time spent in network forward passes.
    pub network_time: Duration,
}

impl InferenceReport {
    /// `true` when every movable cell was legalized.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// A legalizer driven by a trained cell-priority network.
#[derive(Debug, Clone)]
pub struct RlLegalizer {
    model: CellWiseNet,
    selection: Selection,
    backend: crate::config::Backend,
    budget: InferenceBudget,
}

impl RlLegalizer {
    /// Wraps a trained model with greedy selection and the diamond-search
    /// backend.
    pub fn new(model: CellWiseNet) -> Self {
        Self {
            model,
            selection: Selection::Greedy,
            backend: crate::config::Backend::Diamond,
            budget: InferenceBudget::default(),
        }
    }

    /// Sets the action-selection mode.
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the watchdog budget for the RL-ordered pass.
    pub fn with_budget(mut self, budget: InferenceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the legalizer backend the inference run drives.
    pub fn with_backend(mut self, backend: crate::config::Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &CellWiseNet {
        &self.model
    }

    /// Legalizes `design` in the RL-chosen order, mutating it in place.
    ///
    /// On a failure the affected subepisode is terminated (remaining cells
    /// in that Gcell are attempted in the fallback size order so the run
    /// still commits as much as possible, mirroring how the baseline
    /// reports partial results).
    pub fn legalize(&self, design: &mut Design) -> InferenceReport {
        let _t = telemetry::span("infer.legalize");
        let t0 = Instant::now();
        let mut feature_time = Duration::ZERO;
        let mut network_time = Duration::ZERO;
        let mut network_rows = 0usize;
        let mut network_evals = 0usize;
        let mut rng = match self.selection {
            Selection::Greedy => ChaCha8Rng::seed_from_u64(0),
            Selection::Sample(seed) => ChaCha8Rng::seed_from_u64(seed),
        };

        let gcells = rlleg_legalize::GcellGrid::auto(design);
        let mut env = LegalizeEnv::with_options(design.clone(), gcells, self.backend);
        let mut legalized = 0usize;
        let mut failed = Vec::new();
        let mut degraded: Option<DegradeReason> = None;
        let mut degraded_cells = 0usize;
        let mut steps = 0u64;
        // State buffers reused across every step of the run: feature
        // extraction dominates inference time, and reallocating an n×13
        // matrix per step added avoidable churn on top.
        let mut state_raw: Vec<f32> = Vec::new();
        let mut state = rlleg_nn::Matrix::zeros(0, 0);
        for g in env.subepisode_order() {
            let mut remaining = env.remaining_in(g);
            while !remaining.is_empty() {
                // Watchdog: once the budget trips (or the network emits a
                // non-finite logit below), the rest of the run — this
                // subepisode and all later ones — is drained in the
                // deterministic size-descending order `remaining_in`
                // already provides. Degradation is keyed only on the
                // logical step count or the declared wall budget, never on
                // where in the Gcell order it happens, so a degraded run is
                // still reproducible under a step budget.
                if degraded.is_none() {
                    if let Some(reason) = self.budget.exhausted(steps, t0.elapsed()) {
                        degraded = Some(reason);
                        if !telemetry::disabled() {
                            telemetry::counter(reason.counter_name()).inc();
                        }
                    }
                }
                if degraded.is_some() {
                    for c in remaining.drain(..) {
                        degraded_cells += 1;
                        if env.step(c).is_failure() {
                            failed.push(c);
                        } else {
                            legalized += 1;
                        }
                    }
                    break;
                }
                // Deterministic stall injection point (disarmed: one
                // relaxed atomic load).
                if let Some(stall) = rlleg_legalize::fault::infer_stall(steps) {
                    std::thread::sleep(stall);
                }
                let tf = Instant::now();
                env.state_into(&remaining, &mut state_raw, &mut state);
                feature_time += tf.elapsed();
                let tn = Instant::now();
                // Policy-only batched forward: one matrix–matrix pass over
                // all candidate cells; the value head is never needed for
                // action selection.
                let mut logits = self.model.forward_policy(&state);
                network_time += tn.elapsed();
                network_rows += state.rows();
                network_evals += 1;
                steps += 1;
                if logits.iter().any(|l| !l.is_finite()) {
                    // NaN/Inf priorities cannot be ranked; retrying the
                    // forward would yield the same poison. Degrade.
                    degraded = Some(DegradeReason::NonFiniteOutput);
                    if !telemetry::disabled() {
                        telemetry::counter(DegradeReason::NonFiniteOutput.counter_name()).inc();
                    }
                    continue;
                }
                let a = match self.selection {
                    Selection::Greedy => logits
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.total_cmp(y.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                    Selection::Sample(_) => {
                        ops::softmax_in_place(&mut logits);
                        sample(&logits, &mut rng)
                    }
                };
                let cell = remaining[a];
                let outcome = env.step(cell);
                if outcome.is_failure() {
                    failed.push(cell);
                    remaining.remove(a);
                    // Subepisode terminated: drain the rest in size order
                    // so the report covers every cell.
                    for c in remaining.drain(..) {
                        if env.step(c).is_failure() {
                            failed.push(c);
                        } else {
                            legalized += 1;
                        }
                    }
                } else {
                    legalized += 1;
                    remaining.remove(a);
                }
            }
        }
        *design = env.into_design();
        recover_failures(design, &mut legalized, &mut failed);
        let total_time = t0.elapsed();
        if !telemetry::disabled() {
            use telemetry::buckets::SECONDS;
            telemetry::counter("infer.runs").inc();
            telemetry::counter("infer.cells_failed").add(failed.len() as u64);
            if degraded.is_some() {
                telemetry::counter("infer.degraded_runs").inc();
                telemetry::counter("infer.degraded_cells").add(degraded_cells as u64);
            }
            telemetry::histogram("infer.total_seconds", SECONDS).record(total_time.as_secs_f64());
            telemetry::histogram("infer.feature_seconds", SECONDS)
                .record(feature_time.as_secs_f64());
            telemetry::histogram("infer.network_seconds", SECONDS)
                .record(network_time.as_secs_f64());
            // Batching factor of the policy forwards: cell rows evaluated
            // per single matrix–matrix network call.
            if network_evals > 0 {
                telemetry::histogram("infer.network.batch_rows", telemetry::buckets::MAGNITUDE)
                    .record(network_rows as f64 / network_evals as f64);
            }
        }
        InferenceReport {
            legalized,
            failed,
            degraded,
            degraded_cells,
            total_time,
            feature_time,
            network_time,
        }
    }
}

/// Retries cells the policy-ordered pass could not place.
///
/// A failure during the main pass is usually ordering-induced: earlier
/// cells fragmented the free space until no contiguous window was left for
/// a wide or multi-row cell. Each recovery round first runs a
/// rearrangement pass (pulling committed cells back toward their
/// global-placement positions, which can reopen windows), then retries the
/// remaining failures with the rip-up-and-retry placer. Rounds stop as
/// soon as one makes no progress; genuinely impossible cells stay in
/// `failed`.
fn recover_failures(design: &mut Design, legalized: &mut usize, failed: &mut Vec<CellId>) {
    if failed.is_empty() {
        return;
    }
    let mut lg = rlleg_legalize::Legalizer::new(design);
    for _ in 0..3 {
        lg.rearrange_pass(design);
        let before = failed.len();
        let retry = std::mem::take(failed);
        for cell in retry {
            match lg.ripup_place(design, cell) {
                Ok(_) => {
                    *legalized += 1;
                    if !telemetry::disabled() {
                        telemetry::counter("infer.recovered_cells").inc();
                    }
                }
                Err(e) => failed.push(e.cell),
            }
        }
        if failed.is_empty() || failed.len() == before {
            break;
        }
    }
}

fn sample(probs: &[f32], rng: &mut impl Rng) -> usize {
    let x: f32 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rlleg_design::{legality, DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn design() -> Design {
        let mut b = DesignBuilder::new("inf", Technology::contest(), 30, 8);
        for i in 0..20i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 3,
                1 + (i % 4 == 0) as u8,
                Point::new((i * 450) % 5_000, (i * 1_300) % 14_000),
            );
        }
        b.build()
    }

    fn untrained() -> RlLegalizer {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        RlLegalizer::new(CellWiseNet::new(8, &mut rng))
    }

    #[test]
    fn untrained_model_still_legalizes_legally() {
        let mut d = design();
        let report = untrained().legalize(&mut d);
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert_eq!(report.legalized, 20);
        assert!(
            legality::is_legal(&d),
            "{:?}",
            legality::check(&d, true).first()
        );
        assert!(report.total_time >= report.feature_time);
    }

    #[test]
    fn greedy_is_deterministic() {
        let rl = untrained();
        let mut d1 = design();
        let mut d2 = design();
        rl.legalize(&mut d1);
        rl.legalize(&mut d2);
        for (a, b) in d1.cells.iter().zip(d2.cells.iter()) {
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn sampling_mode_runs_and_is_seeded() {
        let rl = untrained().with_selection(Selection::Sample(5));
        let mut d1 = design();
        let mut d2 = design();
        rl.legalize(&mut d1);
        rl.legalize(&mut d2);
        for (a, b) in d1.cells.iter().zip(d2.cells.iter()) {
            assert_eq!(a.pos, b.pos, "same seed, same result");
        }
        assert!(legality::is_legal(&d1));
    }

    #[test]
    fn healthy_runs_never_report_degradation() {
        let mut d = design();
        let report = untrained().legalize(&mut d);
        assert_eq!(report.degraded, None);
        assert_eq!(report.degraded_cells, 0);
    }

    #[test]
    fn step_budget_degrades_but_completes_legally() {
        let mut d = design();
        let report = untrained()
            .with_budget(InferenceBudget::steps(3))
            .legalize(&mut d);
        assert_eq!(report.degraded, Some(DegradeReason::StepBudget));
        assert_eq!(report.degraded_cells, 20 - 3, "rest placed by fallback");
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert!(legality::is_legal(&d));
    }

    #[test]
    fn step_budget_degradation_is_deterministic() {
        let rl = untrained().with_budget(InferenceBudget::steps(5));
        let mut d1 = design();
        let mut d2 = design();
        rl.legalize(&mut d1);
        rl.legalize(&mut d2);
        for (a, b) in d1.cells.iter().zip(d2.cells.iter()) {
            assert_eq!(a.pos, b.pos);
        }
    }

    #[test]
    fn nan_weights_degrade_to_fallback_instead_of_garbage() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut net = CellWiseNet::new(8, &mut rng);
        let poisoned = vec![f32::NAN; net.num_params()];
        net.set_params_flat(&poisoned);
        let mut d = design();
        let report = RlLegalizer::new(net).legalize(&mut d);
        assert_eq!(report.degraded, Some(DegradeReason::NonFiniteOutput));
        assert_eq!(report.degraded_cells, 20, "nothing placed by the policy");
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert!(legality::is_legal(&d));
    }

    #[test]
    fn injected_stall_trips_the_wall_clock_budget() {
        let _guard = rlleg_legalize::fault::arm(rlleg_legalize::FaultPlan {
            infer_stall: Some(rlleg_legalize::InferStall {
                from_step: 1,
                sleep: Duration::from_millis(30),
            }),
            ..rlleg_legalize::FaultPlan::default()
        });
        let mut d = design();
        let report = untrained()
            .with_budget(InferenceBudget::wall(Duration::from_millis(15)))
            .legalize(&mut d);
        assert_eq!(report.degraded, Some(DegradeReason::WallClock));
        assert!(report.degraded_cells > 0);
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert!(legality::is_legal(&d));
    }

    #[test]
    fn failure_fallback_covers_all_cells() {
        // One cell is impossible; everything else must still commit.
        let mut b = DesignBuilder::new("f", Technology::contest(), 8, 2);
        for i in 0..4i64 {
            b.add_cell(format!("u{i}"), 1, 1, Point::new(i * 200, 0));
        }
        b.add_cell("impossible", 8, 2, Point::new(0, 0));
        b.add_fixed_cell("m", 8, 1, Point::new(0, 2_000));
        let mut d = b.build();
        let report = untrained().legalize(&mut d);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.legalized, 4);
    }
}
