//! The A3C training loop (Algorithm 1, Sec. III-C).
//!
//! Multiple actor-critic agents run on their own environment copies and
//! asynchronously update a shared global network: every `B` steps each
//! agent computes the combined loss (Eq. 3: policy + β·value + η·entropy)
//! over its trajectory slice, backpropagates through its *local* network,
//! clips the gradient to a global norm of 0.1, applies one shared-Adam
//! update to the global parameters, and refreshes its local copy.
//!
//! Two mechanisms make the loop genuinely asynchronous and batched:
//!
//! - Global parameters live in a [`ParamStore`] — a versioned,
//!   double-buffered seqlock. Gradient applications stay serialized (Adam
//!   moments are sequential) but agents syncing `θ' ← θ` copy the active
//!   buffer lock-free, so a slow reader never stalls a writer and vice
//!   versa. Agents run as persistent jobs on the
//!   [`rlleg_legalize::pool`] worker pool.
//! - Policy evaluation is batched across subepisodes:
//!   [`run_episode_batched`] advances every active Gcell of an episode in
//!   lockstep macro-steps and evaluates all of their states through one
//!   [`CellWiseNet::forward_policy_batch`] blocked-GEMM forward. The
//!   batched logits are bit-identical to per-state forwards, so only the
//!   *interleaving* of environment steps differs from the sequential
//!   trainer — which is why equivalence with the deterministic
//!   [`Trainer`](crate::trainer::Trainer) is distributional (cost and
//!   failure bands over seeds, `tests/distributional.rs`), not bit-exact.

use parking_lot::Mutex;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use rlleg_design::Design;
use rlleg_nn::{ops, optim::Adam, Matrix};

use crate::config::{ReturnMode, RlConfig, StateMode};
use crate::env::LegalizeEnv;
use crate::model::CellWiseNet;
use crate::store::ParamStore;

/// One point of the learning curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainSample {
    /// Agent index.
    pub agent: usize,
    /// Episode index within that agent.
    pub episode: usize,
    /// Design name the episode ran on.
    pub design: String,
    /// Legalization cost at episode end (lower is better).
    pub cost: f64,
    /// Number of cells that failed to legalize.
    pub failures: usize,
    /// Full QoR of the episode's final placement.
    pub qor: rlleg_design::metrics::Qor,
}

/// Output of [`train`].
#[derive(Debug)]
pub struct TrainResult {
    /// The final global network.
    pub model: CellWiseNet,
    /// The checkpoint with the lowest episode cost seen during training.
    /// The paper reports "the best results after training converged" for
    /// the training benchmarks and uses the trained model for tests; this
    /// is the corresponding validation-selected model.
    pub best_model: CellWiseNet,
    /// Learning-curve samples from every agent.
    pub history: Vec<TrainSample>,
}

impl TrainResult {
    /// Mean cost of the last `k` episodes across agents (convergence
    /// summary for Fig. 5b / Fig. 6).
    pub fn tail_cost(&self, k: usize) -> f64 {
        let n = self.history.len();
        if n == 0 {
            return f64::NAN;
        }
        let tail = &self.history[n.saturating_sub(k)..];
        tail.iter().map(|s| s.cost).sum::<f64>() / tail.len() as f64
    }

    /// The best episode recorded for `design` (lowest legalization cost) —
    /// what Table II reports for training benchmarks.
    pub fn best_for_design(&self, design: &str) -> Option<&TrainSample> {
        self.history
            .iter()
            .filter(|s| s.design == design)
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }
}

pub(crate) struct Shared {
    /// Versioned global parameters: serialized writers, lock-free readers.
    pub(crate) store: ParamStore,
    /// Shared Adam moments, locked only while applying one gradient.
    pub(crate) opt: Mutex<Adam>,
    pub(crate) history: Mutex<Vec<TrainSample>>,
    /// Best `(cost, episode-start parameter snapshot)` over all agents and
    /// episodes. The snapshot is the parameter version the recorded
    /// episode actually *ran under* (its `θ' ← θ` sync), not the drifted
    /// post-episode globals.
    pub(crate) best: Mutex<(f64, Vec<f32>)>,
}

impl Shared {
    /// A fresh training state: `params` published as version 0 and seeded
    /// as the incumbent best snapshot.
    pub(crate) fn fresh(params: Vec<f32>, lr: f32) -> Self {
        let n = params.len();
        Self {
            store: ParamStore::new(params.clone()),
            opt: Mutex::new(Adam::new(n, lr)),
            history: Mutex::new(Vec::new()),
            best: Mutex::new((f64::INFINITY, params)),
        }
    }
}

/// Selectable-cell set of a masked-mode subepisode, one bit per cell.
///
/// Every `Step` snapshots the mask it acted under; with `Vec<bool>` that
/// retained `n` bytes × `n` steps = O(n²) bytes per subepisode on an
/// `n`-cell Gcell. One bit per cell cuts the constant 8× and keeps clones
/// cheap (`masked_steps_retain_bits_not_bytes` pins the bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Mask {
    len: usize,
    words: Box<[u64]>,
}

impl Mask {
    /// A mask of `len` selectable cells.
    pub(crate) fn all_set(len: usize) -> Self {
        Self {
            len,
            words: vec![u64::MAX; len.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Whether cell `i` is still selectable.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks cell `i` unselectable.
    #[inline]
    pub(crate) fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Heap + inline bytes one snapshot retains.
    #[cfg(test)]
    pub(crate) fn retained_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * std::mem::size_of::<u64>()
    }
}

/// One step stored in the mini-batch.
pub(crate) struct Step {
    state: Matrix,
    /// Selectable-cell mask (None in reduced mode: everything selectable).
    mask: Option<Mask>,
    action: usize,
    reward: f32,
    /// The pick failed to legalize (see `RlConfig::blame_failed_pick`).
    failed: bool,
}

/// Samples an index from a probability vector.
fn sample_categorical(probs: &[f32], rng: &mut impl Rng) -> usize {
    let x: f32 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Suppresses unselectable cells' logits to an effective −∞.
fn apply_mask(logits: &mut [f32], mask: &Mask) {
    for (i, l) in logits.iter_mut().enumerate() {
        if !mask.get(i) {
            *l = -1e9;
        }
    }
}

fn masked_logits(logits: &[f32], mask: Option<&Mask>) -> Vec<f32> {
    let mut out = logits.to_vec();
    if let Some(m) = mask {
        apply_mask(&mut out, m);
    }
    out
}

/// Discounted returns over `rewards`, seeded with `tail` past the horizon
/// (0 for truncated/Monte-Carlo ends, `V(s_end)` for bootstrapping).
fn discounted_returns(
    rewards: impl DoubleEndedIterator<Item = f32>,
    gamma: f32,
    tail: f32,
) -> Vec<f32> {
    let mut q: Vec<f32> = rewards
        .rev()
        .scan(tail, |acc, r| {
            *acc = r + gamma * *acc;
            Some(*acc)
        })
        .collect();
    q.reverse();
    q
}

/// Computes losses over a batch with precomputed targets `q` and applies
/// one asynchronous global update.
pub(crate) fn update(
    local: &mut CellWiseNet,
    shared: &Shared,
    batch: &[Step],
    q: &[f32],
    cfg: &RlConfig,
    lr: f32,
) {
    if batch.is_empty() {
        return;
    }
    debug_assert_eq!(batch.len(), q.len());
    // Advantages (with the current local value function). All batch states
    // are stacked into one matrix–matrix forward instead of one small
    // forward per step.
    let states: Vec<&Matrix> = batch.iter().map(|s| &s.state).collect();
    let mut advs: Vec<f32> = local
        .values_batch(&states)
        .iter()
        .zip(q)
        .map(|(&v, &qt)| qt - v)
        .collect();
    if cfg.normalize_advantage && advs.len() > 1 {
        let mean = advs.iter().sum::<f32>() / advs.len() as f32;
        let var = advs.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / advs.len() as f32;
        let sd = var.sqrt().max(1e-6);
        for a in &mut advs {
            *a = (*a - mean) / sd;
        }
    }

    local.zero_grads();
    let scale = 1.0 / batch.len() as f32;
    for (t, step) in batch.iter().enumerate() {
        let f = local.forward(&step.state);
        let logits = masked_logits(&f.logits, step.mask.as_ref());
        let probs = ops::softmax(&logits);
        let adv = advs[t];
        let entropy = ops::entropy(&probs);
        let mut d_logits = vec![0f32; probs.len()];
        for (i, &p) in probs.iter().enumerate() {
            // Policy loss gradient: (p_i − 1{i=a}) · Adv.
            let policy = (p - f32::from(i == step.action)) * adv;
            // Entropy loss L = Σ p ln p; dL/dz_i = p_i (ln p_i + H).
            let ent = if p > 0.0 { p * (p.ln() + entropy) } else { 0.0 };
            d_logits[i] = (policy + cfg.entropy_coeff * ent) * scale;
        }
        if step.failed && !cfg.blame_failed_pick {
            // The cell would have failed whenever picked from here on;
            // only the earlier congestion-causing steps carry the blame
            // (through their returns).
            d_logits.fill(0.0);
        }
        // Value loss: β · SmoothL1(V, Q) (Eq. 7), gradient w.r.t. V.
        let d_value = cfg.value_coeff * ops::smooth_l1_grad(f.value, q[t]) * scale;
        local.backward(&d_logits, d_value);
    }
    let mut grads = local.grads_flat();
    if grads.iter().any(|g| !g.is_finite()) {
        // A non-finite loss or gradient (NaN advantage, exploded logits)
        // would poison the shared parameters *permanently* — Adam's moment
        // vectors keep the NaN forever. Skip the update and refresh the
        // local net from the untouched global parameters instead.
        if !telemetry::disabled() {
            telemetry::counter("train.nonfinite_updates_skipped").inc();
        }
        local.set_params_flat(&shared.store.snapshot());
        return;
    }
    rlleg_nn::optim::clip_global_norm(&mut grads, cfg.grad_clip);

    {
        let mut opt = shared.opt.lock();
        opt.lr = lr;
        let opt = &mut *opt;
        shared.store.update(|params| opt.step(params, &grads));
    }
    // Refresh from the store rather than the just-written master: if a
    // sibling agent published meanwhile, the fresher version wins.
    local.set_params_flat(&shared.store.snapshot());
    if !telemetry::disabled() {
        telemetry::counter("train.global_updates").inc();
    }
}

/// Runs one agent's subepisode under the given state mode, pushing steps
/// into batches and updating as Algorithm 1 prescribes. Returns
/// `(failures, steps)`: the number of legalization failures encountered
/// (with the paper's terminate-on-failure semantics this is 0 or 1) and the
/// number of environment steps taken.
///
/// This is the sequential reference path used by the deterministic
/// [`Trainer`](crate::trainer::Trainer); [`train`] runs the batched
/// equivalent [`run_episode_batched`].
pub(crate) fn run_subepisode(
    env: &mut LegalizeEnv,
    g: usize,
    local: &mut CellWiseNet,
    shared: &Shared,
    cfg: &RlConfig,
    lr: f32,
    rng: &mut impl Rng,
) -> (usize, usize) {
    let all = env.remaining_in(g);
    if all.is_empty() {
        return (0, 0);
    }
    let mut batch: Vec<Step> = Vec::new();
    let mut failures = 0usize;
    let mut steps = 0usize;
    // Bootstrap-tail states are consumed immediately; route them through
    // one scratch pair instead of allocating per step.
    let mut tail_raw: Vec<f32> = Vec::new();
    let mut tail_state = Matrix::zeros(0, 0);
    match cfg.state_mode {
        StateMode::Reduced => {
            let mut remaining = all;
            while !remaining.is_empty() {
                let state = env.state(&remaining);
                let f = local.forward_inference(&state);
                let probs = ops::softmax(&f.logits);
                let a = sample_categorical(&probs, rng);
                let outcome = env.step(remaining[a]);
                steps += 1;
                batch.push(Step {
                    state,
                    mask: None,
                    action: a,
                    reward: outcome.reward(),
                    failed: outcome.is_failure(),
                });
                let mut terminate = false;
                if outcome.is_failure() {
                    failures += 1;
                    terminate = cfg.terminate_on_failure;
                }
                if !terminate {
                    remaining.remove(a);
                }
                let done = terminate || remaining.is_empty();
                let need_tail = cfg.return_mode == ReturnMode::BatchBootstrap
                    && !done
                    && batch.len() >= cfg.batch_size;
                let tail = if need_tail {
                    env.state_into(&remaining, &mut tail_raw, &mut tail_state);
                    local.forward_inference(&tail_state).value
                } else {
                    0.0
                };
                flush(local, shared, &mut batch, done, tail, cfg, lr);
                if terminate {
                    break;
                }
            }
        }
        StateMode::Masked => {
            let mut mask = Mask::all_set(all.len());
            let mut left = all.len();
            while left > 0 {
                let state = env.state(&all);
                let f = local.forward_inference(&state);
                let probs = ops::softmax(&masked_logits(&f.logits, Some(&mask)));
                let a = sample_categorical(&probs, rng);
                let outcome = env.step(all[a]);
                steps += 1;
                batch.push(Step {
                    state,
                    mask: Some(mask.clone()),
                    action: a,
                    reward: outcome.reward(),
                    failed: outcome.is_failure(),
                });
                let mut terminate = false;
                if outcome.is_failure() {
                    failures += 1;
                    terminate = cfg.terminate_on_failure;
                }
                if !terminate {
                    mask.clear(a);
                    left -= 1;
                }
                let done = terminate || left == 0;
                let need_tail = cfg.return_mode == ReturnMode::BatchBootstrap
                    && !done
                    && batch.len() >= cfg.batch_size;
                let tail = if need_tail {
                    env.state_into(&all, &mut tail_raw, &mut tail_state);
                    local.forward_inference(&tail_state).value
                } else {
                    0.0
                };
                flush(local, shared, &mut batch, done, tail, cfg, lr);
                if terminate {
                    break;
                }
            }
        }
    }
    (failures, steps)
}

/// One live Gcell subepisode inside [`run_episode_batched`].
struct SubEpisode {
    /// Reduced mode: the shrinking remaining list. Masked mode: the fixed
    /// full cell list of the Gcell.
    cells: Vec<rlleg_design::CellId>,
    /// Masked mode only: selectable cells.
    mask: Option<Mask>,
    /// Masked mode only: cells not yet legalized.
    left: usize,
    batch: Vec<Step>,
    done: bool,
}

/// Runs one agent's whole episode with policy evaluation batched across
/// Gcells: every macro-step gathers the current state of each live
/// subepisode and evaluates all of them through one
/// [`CellWiseNet::forward_policy_batch`] blocked-GEMM forward, then
/// samples, steps, and flushes each subepisode against its logit slice.
/// Returns `(failures, steps)` like [`run_subepisode`].
///
/// Per-subepisode semantics (sampling, masking, batching, flushing) are
/// identical to [`run_subepisode`]; what changes is the *order* of
/// environment steps — subepisodes advance in lockstep instead of one
/// after another — so dynamic features observed by one Gcell may reflect
/// fewer sibling placements than under the sequential schedule. That
/// reordering is the whole speedup and the reason async-vs-deterministic
/// equivalence is tested distributionally.
pub(crate) fn run_episode_batched(
    env: &mut LegalizeEnv,
    local: &mut CellWiseNet,
    shared: &Shared,
    cfg: &RlConfig,
    lr: f32,
    rng: &mut impl Rng,
) -> (usize, usize) {
    let mut subs: Vec<SubEpisode> = env
        .subepisode_order()
        .into_iter()
        .filter_map(|g| {
            let cells = env.remaining_in(g);
            if cells.is_empty() {
                return None;
            }
            let n = cells.len();
            Some(SubEpisode {
                cells,
                mask: (cfg.state_mode == StateMode::Masked).then(|| Mask::all_set(n)),
                left: n,
                batch: Vec::new(),
                done: false,
            })
        })
        .collect();
    let mut failures = 0usize;
    let mut steps = 0usize;
    let mut tail_raw: Vec<f32> = Vec::new();
    let mut tail_state = Matrix::zeros(0, 0);
    loop {
        let active: Vec<usize> = (0..subs.len()).filter(|&i| !subs[i].done).collect();
        if active.is_empty() {
            break;
        }
        // Gather every live subepisode's state, then one batched forward.
        let states: Vec<Matrix> = active.iter().map(|&i| env.state(&subs[i].cells)).collect();
        let logit_slices = {
            let refs: Vec<&Matrix> = states.iter().collect();
            local.forward_policy_batch(&refs)
        };
        for ((&i, state), mut logits) in active.iter().zip(states).zip(logit_slices) {
            let sub = &mut subs[i];
            if let Some(m) = &sub.mask {
                apply_mask(&mut logits, m);
            }
            ops::softmax_in_place(&mut logits);
            let a = sample_categorical(&logits, rng);
            let outcome = env.step(sub.cells[a]);
            steps += 1;
            sub.batch.push(Step {
                state,
                mask: sub.mask.clone(),
                action: a,
                reward: outcome.reward(),
                failed: outcome.is_failure(),
            });
            let mut terminate = false;
            if outcome.is_failure() {
                failures += 1;
                terminate = cfg.terminate_on_failure;
            }
            if !terminate {
                match &mut sub.mask {
                    Some(m) => m.clear(a),
                    None => {
                        sub.cells.remove(a);
                    }
                }
                sub.left -= 1;
            }
            let done = terminate || sub.left == 0;
            let need_tail = cfg.return_mode == ReturnMode::BatchBootstrap
                && !done
                && sub.batch.len() >= cfg.batch_size;
            let tail = if need_tail {
                env.state_into(&sub.cells, &mut tail_raw, &mut tail_state);
                local.forward_inference(&tail_state).value
            } else {
                0.0
            };
            flush(local, shared, &mut sub.batch, done, tail, cfg, lr);
            sub.done = done;
        }
    }
    (failures, steps)
}

/// Applies pending updates according to the configured return mode.
fn flush(
    local: &mut CellWiseNet,
    shared: &Shared,
    batch: &mut Vec<Step>,
    done: bool,
    tail: f32,
    cfg: &RlConfig,
    lr: f32,
) {
    match cfg.return_mode {
        ReturnMode::BatchTruncated | ReturnMode::BatchBootstrap => {
            if batch.len() < cfg.batch_size && !done {
                return;
            }
            let q = discounted_returns(batch.iter().map(|s| s.reward), cfg.gamma, tail);
            update(local, shared, batch, &q, cfg, lr);
            batch.clear();
        }
        ReturnMode::MonteCarlo => {
            if !done {
                return;
            }
            let q = discounted_returns(batch.iter().map(|s| s.reward), cfg.gamma, 0.0);
            let mut start = 0;
            while start < batch.len() {
                let end = (start + cfg.batch_size).min(batch.len());
                update(local, shared, &batch[start..end], &q[start..end], cfg, lr);
                start = end;
            }
            batch.clear();
        }
    }
}

/// Behaviour-cloning warm start: cross-entropy imitation of the
/// size-descending teacher. `remaining_in` returns cells in size order, so
/// the teacher action is always index 0; identically-featured cells share
/// probability mass (the net cannot and need not separate them).
pub(crate) fn pretrain(global: &mut CellWiseNet, designs: &[Design], cfg: &RlConfig) {
    let mut adam = Adam::new(global.num_params(), cfg.learning_rate * 3.0);
    let mut residual_sum = 0.0f64;
    let mut residual_count = 0usize;
    for _ in 0..cfg.pretrain_episodes {
        for design in designs {
            let gcells = rlleg_legalize::GcellGrid::auto(design);
            let mut env = LegalizeEnv::with_options(design.clone(), gcells, cfg.backend);
            for g in env.subepisode_order() {
                // Roll the teacher out, collecting states and rewards, so
                // the value head can be fitted to the teacher's returns —
                // an uninitialized baseline would make every early RL
                // advantage hugely positive and reinforce arbitrary
                // sampled actions.
                let mut remaining = env.remaining_in(g);
                let mut states: Vec<Matrix> = Vec::with_capacity(remaining.len());
                let mut rewards: Vec<f32> = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    states.push(env.state(&remaining));
                    let cell = remaining.remove(0);
                    let outcome = env.step(cell);
                    rewards.push(outcome.reward());
                    if outcome.is_failure() {
                        break;
                    }
                }
                let q = discounted_returns(rewards.into_iter(), cfg.gamma, 0.0);
                let mut start = 0;
                while start < states.len() {
                    let end = (start + cfg.batch_size).min(states.len());
                    global.zero_grads();
                    for (state, &qt) in states[start..end].iter().zip(&q[start..end]) {
                        let f = global.forward(state);
                        let probs = ops::softmax(&f.logits);
                        // CE gradient toward the teacher pick (index 0).
                        let mut d: Vec<f32> = probs;
                        d[0] -= 1.0;
                        // Imitation updates the policy path only; fitting
                        // the value here would fight the CE gradient for
                        // the shared trunk. The critic is centred on the
                        // return scale afterwards via the bias shift.
                        global.backward(&d, 0.0);
                        residual_sum += f64::from(qt - f.value);
                        residual_count += 1;
                    }
                    let mut grads = global.grads_flat();
                    let n = (end - start) as f32;
                    for gr in &mut grads {
                        *gr /= n;
                    }
                    rlleg_nn::optim::clip_global_norm(&mut grads, 1.0);
                    let mut params = global.params_flat();
                    adam.step(&mut params, &grads);
                    global.set_params_flat(&params);
                    start = end;
                }
            }
        }
    }
    // Centre the critic on the teacher's return scale (see
    // `CellWiseNet::shift_value_bias`).
    if residual_count > 0 {
        global.shift_value_bias((residual_sum / residual_count as f64) as f32);
    }
}

/// Trains the cell-wise network on `designs` with `cfg.agents` asynchronous
/// agents (Algorithm 1). Agents cycle through the designs round-robin, one
/// design per episode, run on the shared
/// [`rlleg_legalize::pool`] worker pool, and batch each macro-step's
/// policy evaluation across all active Gcells.
///
/// # Panics
///
/// Panics when `designs` is empty or `cfg.agents == 0`.
pub fn train(designs: &[Design], cfg: &RlConfig) -> TrainResult {
    assert!(!designs.is_empty(), "training needs at least one design");
    assert!(cfg.agents > 0, "need at least one agent");
    let mut init_rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut global = CellWiseNet::new(cfg.hidden_dim, &mut init_rng);
    if cfg.pretrain_episodes > 0 {
        pretrain(&mut global, designs, cfg);
    }
    let shared = Shared::fresh(global.params_flat(), cfg.learning_rate);

    let workers = cfg.agents.min(rlleg_legalize::pool::default_threads());
    let pool = rlleg_legalize::pool::with_workers(workers);
    pool.scope(|scope| {
        for agent in 0..cfg.agents {
            let shared = &shared;
            let cfg = cfg.clone();
            let mut local = global.clone();
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ ((agent as u64 + 1) * 0x9E37));
                // Each agent keeps one environment per design, reset between
                // episodes (rebuilding features is the expensive part; the
                // paper reports the same bottleneck).
                let mut envs: Vec<LegalizeEnv> = designs
                    .iter()
                    .map(|d| {
                        let gcells = rlleg_legalize::GcellGrid::auto(d);
                        LegalizeEnv::with_options(d.clone(), gcells, cfg.backend)
                    })
                    .collect();
                // Pre-interned rate gauge: `format!`-ing a metric name per
                // episode re-hashed the registry every time; the handle is
                // created once and held.
                let gauge_name = format!("train.agent.{agent}.millisteps_per_sec");
                let mut sps_gauge: Option<telemetry::Gauge> = None;
                // Reused episode-start snapshot buffer (cloned only into
                // `shared.best` on improvement).
                let mut ep_params: Vec<f32> = Vec::new();
                for episode in 0..cfg.episodes {
                    let di = (agent + episode) % envs.len();
                    let env = &mut envs[di];
                    env.reset();
                    // Algorithm 1: θ' ← θ at episode start. The snapshot is
                    // also what `shared.best` records if this episode sets a
                    // new best cost — it is the parameter version the
                    // episode's behaviour came from.
                    shared.store.read_into(&mut ep_params);
                    local.set_params_flat(&ep_params);
                    let lr = cfg.learning_rate * cfg.lr_decay.powi(episode as i32);
                    let t_ep = std::time::Instant::now();
                    let (failures, steps) =
                        run_episode_batched(env, &mut local, shared, &cfg, lr, &mut rng);
                    let cost = env.legalization_cost();
                    if !telemetry::disabled() {
                        telemetry::counter("train.steps").add(steps as u64);
                        telemetry::counter("train.episodes").inc();
                        telemetry::histogram("train.episode_cost", telemetry::buckets::MAGNITUDE)
                            .record(cost);
                        sps_gauge
                            .get_or_insert_with(|| telemetry::gauge(&gauge_name))
                            .set_rate_milli(steps as f64, t_ep.elapsed().as_secs_f64());
                    }
                    let sample = TrainSample {
                        agent,
                        episode,
                        design: designs[di].name.clone(),
                        cost,
                        failures,
                        qor: env.qor(),
                    };
                    shared.history.lock().push(sample);
                    // Validation-style checkpointing: record the episode's
                    // *starting* parameters on a new best cost. (The old
                    // code stored the post-episode locals, i.e. parameters
                    // that never produced the recorded cost.)
                    let mut best = shared.best.lock();
                    if cost < best.0 {
                        best.0 = cost;
                        best.1.clear();
                        best.1.extend_from_slice(&ep_params);
                    }
                }
            });
        }
    });

    let params = shared.store.into_inner();
    let (_, best_params) = shared.best.into_inner();
    let mut best_model = global.clone();
    best_model.set_params_flat(&best_params);
    global.set_params_flat(&params);
    let mut history = shared.history.into_inner();
    history.sort_by_key(|s| (s.episode, s.agent));
    TrainResult {
        model: global,
        best_model,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    fn toy_design(seed: i64) -> Design {
        let mut b = DesignBuilder::new(format!("toy{seed}"), Technology::contest(), 24, 6);
        for i in 0..14i64 {
            let x = (i * 331 + seed * 97) % 4_000;
            let y = (i * 1_777) % 10_000;
            b.add_cell(
                format!("u{i}"),
                1 + i % 2,
                1 + (i % 3 == 0) as u8,
                Point::new(x, y),
            );
        }
        for i in 0..10u32 {
            b.add_net(
                format!("n{i}"),
                vec![
                    (rlleg_design::CellId(i), 0, 0),
                    (rlleg_design::CellId(i + 2), 0, 0),
                ],
            );
        }
        b.build()
    }

    fn tiny_cfg() -> RlConfig {
        RlConfig {
            hidden_dim: 12,
            agents: 2,
            episodes: 4,
            batch_size: 8,
            ..RlConfig::default()
        }
    }

    #[test]
    fn train_produces_history_and_model() {
        let designs = [toy_design(0), toy_design(1)];
        let result = train(&designs, &tiny_cfg());
        assert_eq!(result.history.len(), 2 * 4, "agents × episodes samples");
        assert!(result.history.iter().all(|s| s.cost.is_finite()));
        assert!(result.history.iter().all(|s| s.failures == 0));
        assert!(result.tail_cost(4).is_finite());
        // The model must be usable for inference.
        let env = LegalizeEnv::new(toy_design(2));
        let cells = env.remaining_in(0);
        let state = env.state(&cells);
        let mut model = result.model;
        let f = model.forward(&state);
        assert_eq!(f.logits.len(), cells.len());
    }

    #[test]
    fn masked_mode_trains_too() {
        let designs = [toy_design(3)];
        let cfg = RlConfig {
            state_mode: StateMode::Masked,
            agents: 1,
            ..tiny_cfg()
        };
        let result = train(&designs, &cfg);
        assert_eq!(result.history.len(), 4);
        assert!(result.history.iter().all(|s| s.cost.is_finite()));
    }

    #[test]
    fn single_agent_is_deterministic() {
        let designs = [toy_design(4)];
        let cfg = RlConfig {
            agents: 1,
            ..tiny_cfg()
        };
        let a = train(&designs, &cfg);
        let b = train(&designs, &cfg);
        let ca: Vec<f64> = a.history.iter().map(|s| s.cost).collect();
        let cb: Vec<f64> = b.history.iter().map(|s| s.cost).collect();
        assert_eq!(ca, cb);
    }

    #[test]
    fn bootstrap_mode_runs() {
        let designs = [toy_design(5)];
        let cfg = RlConfig {
            return_mode: crate::config::ReturnMode::BatchBootstrap,
            agents: 1,
            episodes: 2,
            ..tiny_cfg()
        };
        let result = train(&designs, &cfg);
        assert_eq!(result.history.len(), 2);
    }

    #[test]
    fn policy_gradient_learns_a_bandit() {
        // Three "cells" with distinct features; picking index 2 pays 2.0,
        // anything else pays 0.1. After a few hundred one-step updates the
        // policy must concentrate on index 2 — this guards the sign and
        // scaling of the policy/entropy/value gradients.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = CellWiseNet::new(8, &mut rng);
        let cfg = RlConfig {
            learning_rate: 0.01,
            entropy_coeff: 0.001,
            ..RlConfig::default()
        };
        let shared = Shared::fresh(net.params_flat(), cfg.learning_rate);
        let state = {
            // Distinct rows (a cell-wise net cannot separate identical
            // feature vectors).
            let f = rlleg_legalize::NUM_FEATURES;
            let data: Vec<f32> = (0..3 * f)
                .map(|i| (((i / f) * 5 + (i % f) * 3) % 11) as f32 / 11.0)
                .collect();
            Matrix::from_vec(3, rlleg_legalize::NUM_FEATURES, data)
        };
        for _ in 0..400 {
            let f = net.forward_inference(&state);
            let probs = ops::softmax(&f.logits);
            let a = sample_categorical(&probs, &mut rng);
            let r = if a == 2 { 2.0 } else { 0.1 };
            let batch = vec![Step {
                state: state.clone(),
                mask: None,
                action: a,
                reward: r,
                failed: false,
            }];
            update(&mut net, &shared, &batch, &[r], &cfg, cfg.learning_rate);
        }
        let probs = ops::softmax(&net.forward_inference(&state).logits);
        assert!(
            probs[2] > 0.8,
            "policy should prefer the rewarding arm: {probs:?}"
        );
    }

    #[test]
    fn nan_poisoned_advantage_skips_update_and_preserves_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = CellWiseNet::new(8, &mut rng);
        let cfg = RlConfig::default();
        let before = net.params_flat();
        let shared = Shared::fresh(before.clone(), cfg.learning_rate);
        let f = rlleg_legalize::NUM_FEATURES;
        let state = Matrix::from_vec(
            2,
            f,
            (0..2 * f).map(|i| (i % 7) as f32 / 7.0).collect::<Vec<_>>(),
        );
        let batch = vec![Step {
            state,
            mask: None,
            action: 0,
            reward: f32::NAN,
            failed: false,
        }];
        // A NaN return target poisons the advantage, hence every gradient.
        update(
            &mut net,
            &shared,
            &batch,
            &[f32::NAN],
            &cfg,
            cfg.learning_rate,
        );
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&net.params_flat()),
            bits(&before),
            "local params must be untouched"
        );
        assert_eq!(
            bits(&shared.store.snapshot()),
            bits(&before),
            "global params must be untouched"
        );
        assert_eq!(shared.store.version(), 0, "no version must be published");
        assert_eq!(
            shared.opt.lock().steps(),
            0,
            "no Adam step must have been applied"
        );
    }

    #[test]
    fn monte_carlo_mode_runs() {
        let designs = [toy_design(6)];
        let cfg = RlConfig {
            return_mode: crate::config::ReturnMode::MonteCarlo,
            normalize_advantage: true,
            terminate_on_failure: false,
            agents: 1,
            episodes: 3,
            ..tiny_cfg()
        };
        let result = train(&designs, &cfg);
        assert_eq!(result.history.len(), 3);
        assert!(result.history.iter().all(|s| s.cost.is_finite()));
    }

    #[test]
    fn discounted_returns_shapes() {
        let q = discounted_returns([1.0f32, 1.0, 1.0].into_iter(), 0.5, 0.0);
        assert_eq!(q, vec![1.75, 1.5, 1.0]);
        let qb = discounted_returns([1.0f32].into_iter(), 0.5, 10.0);
        assert_eq!(qb, vec![6.0]);
        assert!(discounted_returns(std::iter::empty(), 0.9, 0.0).is_empty());
    }

    #[test]
    fn sample_categorical_respects_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let probs = [0.0f32, 0.0, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_categorical(&probs, &mut rng), 2);
        }
        // Degenerate numerical case: falls back to the last index.
        let zeros = [0.0f32; 3];
        let i = sample_categorical(&zeros, &mut rng);
        assert!(i < 3);
    }

    #[test]
    fn masked_logits_suppress() {
        let l = [1.0f32, 2.0, 3.0];
        let mut m = Mask::all_set(3);
        m.clear(1);
        let out = masked_logits(&l, Some(&m));
        let p = ops::softmax(&out);
        assert!(p[1] < 1e-6);
        assert!((p[0] + p[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mask_bit_ops() {
        let mut m = Mask::all_set(130);
        assert!(m.get(0) && m.get(64) && m.get(129));
        m.clear(64);
        assert!(!m.get(64));
        assert!(m.get(63) && m.get(65), "neighbours untouched");
        m.clear(129);
        assert!(!m.get(129));
        let l: Vec<f32> = vec![0.0; 130];
        let masked = masked_logits(&l, Some(&m));
        assert_eq!(
            masked.iter().filter(|&&x| x == -1e9).count(),
            2,
            "exactly the cleared bits are suppressed"
        );
    }

    #[test]
    fn masked_steps_retain_bits_not_bytes() {
        // A 1024-cell Gcell in masked mode keeps one mask snapshot per
        // step: with `Vec<bool>` that retained n² = 1 MiB of mask bytes
        // per subepisode. The bitmask bound is n²/8 plus per-step struct
        // overhead — pinned here at a quarter of the old cost so a
        // regression back to byte-per-cell storage fails loudly.
        let n = 1024usize;
        let per_step = Mask::all_set(n).retained_bytes();
        assert!(
            per_step <= n / 8 + 64,
            "one snapshot must be ~n/8 bytes, got {per_step}"
        );
        let subepisode_total = n * per_step;
        assert!(
            subepisode_total <= n * n / 4,
            "whole-subepisode mask retention {subepisode_total} regressed toward O(n²) bytes"
        );
    }
}
