//! Property test for the batched policy forward: stacking any combination
//! of states into one [`CellWiseNet::forward_policy_batch`] call must be
//! **bit-identical** to evaluating each state through `forward_policy` on
//! its own. This is the contract that lets the asynchronous trainer batch
//! logits across Gcells without changing a single sampled action for a
//! given RNG stream — the blocked GEMM under the hood accumulates every
//! output row independently, in the same k-order as the naive kernel.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rl_legalizer::CellWiseNet;
use rlleg_legalize::NUM_FEATURES;
use rlleg_nn::Matrix;

fn state(rows: usize, value_seed: u64) -> Matrix {
    // Deterministic but irregular values, including negatives and a wide
    // magnitude spread, so GEMM reassociation bugs cannot hide.
    let data: Vec<f32> = (0..rows * NUM_FEATURES)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(value_seed);
            let x = ((h >> 40) as i32 - (1 << 23)) as f32;
            x / (1 << 20) as f32
        })
        .collect();
    Matrix::from_vec(rows, NUM_FEATURES, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_policy_forward_is_bit_identical_to_per_state(
        hidden in 4usize..24,
        net_seed in 0u64..1_000,
        value_seed in 0u64..1_000,
        // Mix of tiny (below the blocked-GEMM threshold) and larger
        // (above it) states in one batch.
        row_counts in proptest::collection::vec(1usize..40, 1..8),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(net_seed);
        let net = CellWiseNet::new(hidden, &mut rng);
        let states: Vec<Matrix> = row_counts
            .iter()
            .enumerate()
            .map(|(i, &r)| state(r, value_seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let refs: Vec<&Matrix> = states.iter().collect();
        let batched = net.forward_policy_batch(&refs);
        prop_assert_eq!(batched.len(), states.len());
        for (s, b) in states.iter().zip(&batched) {
            let single = net.forward_policy(s);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(
                bits(&single),
                bits(b),
                "batched logits diverged from the per-state forward"
            );
        }
    }
}
