//! Distributional equivalence of the two training drivers.
//!
//! The asynchronous [`train`] and the deterministic round-robin
//! [`Trainer`] run the same per-step math (identical `update`, identical
//! sampling, bit-identical batched forwards) but interleave environment
//! steps differently — async agents advance all Gcells of an episode in
//! lockstep macro-steps and apply gradients whenever their batches fill,
//! so the parameter trajectories diverge after the first shared update.
//! Bit-equality is therefore the wrong contract. What must hold is
//! *distributional* equivalence: over a population of seeds, both drivers
//! produce episode costs in overlapping bands and the same failure
//! behaviour on designs both can solve.
//!
//! The quick band check runs on every `cargo test`; the wider sweep is
//! `#[ignore]`d and run by `scripts/ci.sh` under `RLLEG_FUZZ_LONG=1`.

use rl_legalizer::{train, RlConfig, Trainer};
use rlleg_design::{Design, DesignBuilder, Technology};
use rlleg_geom::Point;

fn toy_design(seed: i64) -> Design {
    let mut b = DesignBuilder::new(format!("dist{seed}"), Technology::contest(), 24, 6);
    for i in 0..12i64 {
        let x = (i * 331 + seed * 97) % 4_000;
        let y = (i * 1_777 + seed * 53) % 10_000;
        b.add_cell(
            format!("u{i}"),
            1 + i % 2,
            1 + (i % 3 == 0) as u8,
            Point::new(x, y),
        );
    }
    b.build()
}

fn cfg_for(seed: u64) -> RlConfig {
    RlConfig {
        hidden_dim: 8,
        agents: 2,
        episodes: 3,
        batch_size: 6,
        seed,
        ..RlConfig::default()
    }
}

/// (all episode costs, total failures) for both drivers across `seeds`.
fn bands(seeds: impl Iterator<Item = u64>) -> (Vec<f64>, usize, Vec<f64>, usize) {
    let mut async_costs = Vec::new();
    let mut async_failures = 0usize;
    let mut rr_costs = Vec::new();
    let mut rr_failures = 0usize;
    for seed in seeds {
        let designs = [toy_design(seed as i64 % 5)];
        let cfg = cfg_for(seed);
        let ra = train(&designs, &cfg);
        for s in &ra.history {
            async_costs.push(s.cost);
            async_failures += s.failures;
        }
        let mut t = Trainer::new(&designs, &cfg);
        while t.run_episode() {}
        let rb = t.finish();
        assert_eq!(
            ra.history.len(),
            rb.history.len(),
            "both drivers must run agents × episodes samples"
        );
        for s in &rb.history {
            rr_costs.push(s.cost);
            rr_failures += s.failures;
        }
    }
    (async_costs, async_failures, rr_costs, rr_failures)
}

fn assert_bands_overlap(ac: &[f64], af: usize, rc: &[f64], rf: usize) {
    assert!(ac.iter().all(|c| c.is_finite()), "async costs: {ac:?}");
    assert!(
        rc.iter().all(|c| c.is_finite()),
        "round-robin costs: {rc:?}"
    );
    // Both drivers solve the toy designs outright.
    assert_eq!(af, 0, "async runs must not fail cells on toy designs");
    assert_eq!(rf, 0, "round-robin runs must not fail cells on toy designs");
    let band = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (alo, ahi) = band(ac);
    let (rlo, rhi) = band(rc);
    assert!(
        alo <= rhi && rlo <= ahi,
        "cost bands must overlap: async [{alo}, {ahi}] vs round-robin [{rlo}, {rhi}]"
    );
    // And neither driver's typical cost may run away from the other's: the
    // medians must sit inside (or at) each other's band.
    let median = |v: &[f64]| {
        let mut s = v.to_vec();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    };
    let (ma, mr) = (median(ac), median(rc));
    assert!(
        (rlo..=rhi).contains(&ma) || (alo..=ahi).contains(&mr),
        "medians diverged: async median {ma} vs round-robin median {mr}"
    );
}

#[test]
fn async_and_roundrobin_costs_land_in_overlapping_bands() {
    let (ac, af, rc, rf) = bands(0..8u64);
    assert_bands_overlap(&ac, af, &rc, rf);
}

/// Wider sweep (more seeds), run by `scripts/ci.sh` when
/// `RLLEG_FUZZ_LONG=1` via `cargo test ... -- --ignored`.
#[test]
#[ignore = "long sweep; enabled by RLLEG_FUZZ_LONG=1 in scripts/ci.sh"]
fn async_and_roundrobin_costs_land_in_overlapping_bands_long() {
    let (ac, af, rc, rf) = bands(0..24u64);
    assert_bands_overlap(&ac, af, &rc, rf);
}
