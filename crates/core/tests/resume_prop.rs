//! Property tests for crash-safe training: resuming from a checkpoint at
//! any episode boundary must be bit-identical to never having crashed, and
//! the framed checkpoint codec must detect arbitrary corruption.

use proptest::prelude::*;
use rl_legalizer::{decode, encode, RlConfig, Trainer, TrainerState};
use rlleg_design::{Design, DesignBuilder, Technology};
use rlleg_geom::Point;

fn toy_design(seed: i64, cells: i64) -> Design {
    let mut b = DesignBuilder::new(format!("prop{seed}"), Technology::contest(), 24, 6);
    for i in 0..cells {
        let x = (i * 331 + seed * 97) % 4_000;
        let y = (i * 1_777 + seed * 53) % 10_000;
        b.add_cell(
            format!("u{i}"),
            1 + i % 2,
            1 + (i % 3 == 0) as u8,
            Point::new(x, y),
        );
    }
    b.build()
}

fn cfg_for(seed: u64, agents: usize, episodes: usize) -> RlConfig {
    RlConfig {
        hidden_dim: 8,
        agents,
        episodes,
        batch_size: 6,
        seed,
        ..RlConfig::default()
    }
}

fn final_param_bits(t: Trainer) -> (Vec<u32>, Vec<u64>) {
    let r = t.finish();
    let mut model = r.model;
    let params = model.params_flat().iter().map(|x| x.to_bits()).collect();
    let costs = r.history.iter().map(|s| s.cost.to_bits()).collect();
    (params, costs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Train k episodes, checkpoint through the full encode/decode framing,
    /// "crash", restore, train the remaining n−k: parameters and the entire
    /// learning curve must match an uninterrupted n-episode run bit for bit.
    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run(
        seed in 0u64..1_000,
        agents in 1usize..3,
        episodes in 2usize..5,
        split_pick in 1usize..100,
        two_designs in any::<bool>(),
    ) {
        let mut designs = vec![toy_design(seed as i64, 10)];
        if two_designs {
            designs.push(toy_design(seed as i64 + 1, 8));
        }
        let cfg = cfg_for(seed, agents, episodes);

        let mut full = Trainer::new(&designs, &cfg);
        while full.run_episode() {}
        let (p_full, c_full) = final_param_bits(full);

        let k = 1 + split_pick % (episodes - 1);
        let mut part = Trainer::new(&designs, &cfg);
        prop_assert_eq!(part.train_for(k), k);
        let state = decode(&encode(&part.state())).expect("codec round trip");
        drop(part); // the crash: everything not in `state` is lost
        let mut resumed = Trainer::restore(&designs, &state).expect("restore");
        prop_assert_eq!(resumed.episode(), k);
        while resumed.run_episode() {}
        let (p_resumed, c_resumed) = final_param_bits(resumed);

        prop_assert_eq!(p_full, p_resumed);
        prop_assert_eq!(c_full, c_resumed);
    }

    /// The codec never silently accepts a damaged frame: any truncation or
    /// single-byte change is reported as an error (or, for bytes inside the
    /// JSON payload that still parse, yields a different state — never a
    /// quietly identical one).
    #[test]
    fn corruption_is_never_silently_accepted(
        seed in 0u64..1_000,
        cut in 0usize..10_000,
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let designs = [toy_design(seed as i64, 8)];
        let cfg = cfg_for(seed, 1, 1);
        let mut t = Trainer::new(&designs, &cfg);
        t.run_episode();
        let state = t.state();
        let frame = encode(&state);

        let truncated = &frame[..cut % frame.len()];
        prop_assert!(decode(truncated).is_err(), "truncation to {} bytes accepted", truncated.len());

        let mut flipped = frame.clone();
        let pos = flip_pos % flipped.len();
        flipped[pos] ^= 1 << flip_bit;
        match decode(&flipped) {
            Err(_) => {}
            Ok(other) => prop_assert!(
                other != state,
                "bit flip at byte {} went completely unnoticed", pos
            ),
        }
    }
}

/// Non-property companion: a checkpoint is also restorable *across* trainer
/// instances built from equal (not `Clone`-shared) design values, which is
/// the real recovery scenario — the process died and reloaded its inputs.
#[test]
fn restore_works_with_reloaded_designs() {
    let cfg = cfg_for(7, 2, 3);
    let designs = [toy_design(7, 9)];
    let mut t = Trainer::new(&designs, &cfg);
    t.run_episode();
    let bytes = encode(&t.state());
    drop(t);
    drop(designs);

    let reloaded = [toy_design(7, 9)]; // rebuilt from source, as after a crash
    let state: TrainerState = decode(&bytes).expect("decode");
    let mut resumed = Trainer::restore(&reloaded, &state).expect("restore");
    assert_eq!(resumed.episode(), 1);
    while resumed.run_episode() {}
    assert!(resumed.done());
}
