use rlleg_geom::{Dbu, Point, Rect};

use crate::cell::{Cell, CellId, EdgeType, RailParity};
use crate::design::{Design, Region, RegionId};
use crate::net::{Net, NetId, Pin};
use crate::tech::Technology;

/// Incremental constructor for a [`Design`].
///
/// The core is anchored at the origin and sized in sites × rows, so every
/// design starts with a well-formed row structure.
///
/// ```
/// use rlleg_design::{DesignBuilder, Technology};
/// use rlleg_geom::Point;
///
/// let mut b = DesignBuilder::new("d", Technology::contest(), 100, 20);
/// let a = b.add_cell("a", 2, 1, Point::new(0, 0));
/// let bcell = b.add_cell("b", 1, 2, Point::new(5_000, 6_000));
/// b.add_net("n", vec![(a, 100, 100), (bcell, 0, 0)]);
/// let d = b.build();
/// assert_eq!(d.num_cells(), 2);
/// ```
#[derive(Debug)]
pub struct DesignBuilder {
    design: Design,
}

impl DesignBuilder {
    /// Starts a design named `name` with a core of `sites_x` × `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `sites_x` or `rows` is zero.
    pub fn new(name: impl Into<String>, tech: Technology, sites_x: i64, rows: i64) -> Self {
        assert!(sites_x > 0 && rows > 0, "core must have positive extent");
        let core = Rect::new(0, 0, sites_x * tech.site_width, rows * tech.row_height);
        Self {
            design: Design {
                name: name.into(),
                tech,
                core,
                cells: Vec::new(),
                nets: Vec::new(),
                regions: Vec::new(),
                max_displacement: None,
                cell_nets: Vec::new(),
            },
        }
    }

    /// Sets the per-cell maximum-displacement constraint (dbu).
    pub fn max_displacement(&mut self, dbu: Dbu) -> &mut Self {
        self.design.max_displacement = Some(dbu);
        self
    }

    /// Adds a movable cell of `width_sites` × `height_rows` with its
    /// global-placement position at `gp_pos` (lower-left, dbu).
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width_sites: i64,
        height_rows: u8,
        gp_pos: Point,
    ) -> CellId {
        self.push_cell(name, width_sites, height_rows, gp_pos, false)
    }

    /// Adds a fixed cell (macro/obstacle). Fixed cells are never moved and
    /// block placement under their footprint.
    pub fn add_fixed_cell(
        &mut self,
        name: impl Into<String>,
        width_sites: i64,
        height_rows: u8,
        pos: Point,
    ) -> CellId {
        self.push_cell(name, width_sites, height_rows, pos, true)
    }

    fn push_cell(
        &mut self,
        name: impl Into<String>,
        width_sites: i64,
        height_rows: u8,
        gp_pos: Point,
        fixed: bool,
    ) -> CellId {
        assert!(width_sites > 0, "cell width must be positive");
        assert!(
            height_rows >= 1 && height_rows <= self.design.tech.max_height_rows,
            "cell height {} out of range 1..={}",
            height_rows,
            self.design.tech.max_height_rows
        );
        // The occupancy grid reserves the two largest u32 values as
        // free/blocked sentinels; ids must stay strictly below them.
        assert!(
            self.design.cells.len() < (u32::MAX - 2) as usize,
            "cell count exceeds the u32 id space"
        );
        let id = CellId(self.design.cells.len() as u32);
        self.design.cells.push(Cell {
            name: name.into(),
            width: width_sites * self.design.tech.site_width,
            height_rows,
            gp_pos,
            pos: gp_pos,
            legalized: false,
            fixed,
            region: None,
            edge_left: EdgeType::default(),
            edge_right: EdgeType::default(),
            rail: RailParity::default(),
            master: None,
        });
        self.design.cell_nets.push(Vec::new());
        id
    }

    /// Sets the edge types of the most specific cell. See
    /// [`Technology::edge_spacing_sites`].
    pub fn set_edges(&mut self, cell: CellId, left: EdgeType, right: EdgeType) -> &mut Self {
        let c = &mut self.design.cells[cell.index()];
        c.edge_left = left;
        c.edge_right = right;
        self
    }

    /// Sets the rail parity of an even-height cell.
    pub fn set_rail(&mut self, cell: CellId, rail: RailParity) -> &mut Self {
        self.design.cells[cell.index()].rail = rail;
        self
    }

    /// Records the LEF master name a cell instantiates.
    pub fn set_master(&mut self, cell: CellId, master: impl Into<String>) -> &mut Self {
        self.design.cells[cell.index()].master = Some(master.into());
        self
    }

    /// Adds a fence region and returns its id.
    pub fn add_region(&mut self, name: impl Into<String>, rects: Vec<Rect>) -> RegionId {
        let id = RegionId(self.design.regions.len() as u16);
        self.design.regions.push(Region {
            name: name.into(),
            rects,
        });
        id
    }

    /// Assigns `cell` to fence `region`.
    pub fn assign_region(&mut self, cell: CellId, region: RegionId) -> &mut Self {
        self.design.cells[cell.index()].region = Some(region);
        self
    }

    /// Adds a net connecting pins at `(cell, dx, dy)` offsets.
    pub fn add_net(&mut self, name: impl Into<String>, pins: Vec<(CellId, Dbu, Dbu)>) -> NetId {
        self.add_net_with_fixed(name, pins, Vec::new())
    }

    /// Adds a net that additionally connects fixed (IO) pin locations.
    pub fn add_net_with_fixed(
        &mut self,
        name: impl Into<String>,
        pins: Vec<(CellId, Dbu, Dbu)>,
        fixed_pins: Vec<Point>,
    ) -> NetId {
        let id = NetId(self.design.nets.len() as u32);
        let mut net_pins = Vec::with_capacity(pins.len() + fixed_pins.len());
        for (cell, dx, dy) in pins {
            net_pins.push(Pin::OnCell {
                cell,
                offset: Point::new(dx, dy),
            });
            let members = &mut self.design.cell_nets[cell.index()];
            if members.last() != Some(&id) {
                members.push(id);
            }
        }
        net_pins.extend(fixed_pins.into_iter().map(Pin::Fixed));
        self.design.nets.push(Net {
            name: name.into(),
            pins: net_pins,
        });
        id
    }

    /// Finishes construction.
    pub fn build(self) -> Design {
        self.design
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_adjacency_once_per_net() {
        let mut b = DesignBuilder::new("d", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 1, Point::ORIGIN);
        // Two pins of the same net on one cell: adjacency deduplicated.
        b.add_net("n", vec![(a, 0, 0), (a, 100, 0)]);
        let d = b.build();
        assert_eq!(d.nets_of(a).len(), 1);
        assert_eq!(d.net(NetId(0)).degree(), 2);
    }

    #[test]
    fn regions_and_attributes() {
        let mut b = DesignBuilder::new("d", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 2, Point::ORIGIN);
        let r = b.add_region("f", vec![Rect::new(0, 0, 1_000, 4_000)]);
        b.assign_region(a, r);
        b.set_rail(a, RailParity::Odd);
        b.set_edges(a, EdgeType(1), EdgeType(2));
        b.max_displacement(10_000);
        let d = b.build();
        assert_eq!(d.cell(a).region, Some(r));
        assert_eq!(d.cell(a).rail, RailParity::Odd);
        assert_eq!(d.cell(a).edge_right, EdgeType(2));
        assert_eq!(d.max_displacement, Some(10_000));
        assert!(d.region(r).contains(&Rect::new(0, 0, 200, 2_000)));
    }

    #[test]
    #[should_panic(expected = "height")]
    fn rejects_overtall_cells() {
        let mut b = DesignBuilder::new("d", Technology::contest(), 10, 4);
        b.add_cell("a", 1, 9, Point::ORIGIN);
    }

    #[test]
    fn fixed_pins() {
        let mut b = DesignBuilder::new("d", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 1, Point::ORIGIN);
        b.add_net_with_fixed("n", vec![(a, 0, 0)], vec![Point::new(5_000, 0)]);
        let d = b.build();
        assert_eq!(d.net(NetId(0)).degree(), 2);
    }
}
