use serde::{Deserialize, Serialize};

use rlleg_geom::{Dbu, Point, Rect};

use crate::design::RegionId;

/// Identifier of a cell inside one [`Design`](crate::Design).
///
/// Indices are dense: `CellId(i)` is the `i`-th cell added to the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Cell edge class used by the edge-spacing rule (ICCAD-2017 style).
///
/// Type 0 is the default edge with no spacing requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EdgeType(pub u8);

/// Power-rail parity for even-height cells.
///
/// Rows alternate VDD/VSS rails. A cell whose height is an *even* number of
/// rows has a fixed bottom rail and may only start on rows with the matching
/// parity; odd-height cells can flip and start anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RailParity {
    /// Bottom rail must sit on an even row index.
    #[default]
    Even,
    /// Bottom rail must sit on an odd row index.
    Odd,
}

impl RailParity {
    /// `true` when a cell with this parity may start at row index `row`.
    pub fn allows_row(self, row: i64) -> bool {
        match self {
            RailParity::Even => row.rem_euclid(2) == 0,
            RailParity::Odd => row.rem_euclid(2) == 1,
        }
    }
}

/// One standard cell (or fixed macro) of a [`Design`](crate::Design).
///
/// Positions are lower-left corners in dbu. `gp_pos` is the (possibly
/// overlapping, off-grid) global-placement position that legalization starts
/// from; `pos` is the current position and is what metrics and the legality
/// checker read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Width in dbu (a multiple of the site width for movable cells).
    pub width: Dbu,
    /// Height in rows (1..=max_height_rows).
    pub height_rows: u8,
    /// Global-placement position (lower-left), the displacement reference.
    pub gp_pos: Point,
    /// Current position (lower-left). Starts equal to `gp_pos`.
    pub pos: Point,
    /// `true` once a legalizer has committed this cell to a legal site.
    pub legalized: bool,
    /// Fixed cells (macros, pre-placed blocks) never move and act as
    /// obstacles.
    pub fixed: bool,
    /// Fence region membership, if any.
    pub region: Option<RegionId>,
    /// Left edge class for the edge-spacing rule.
    pub edge_left: EdgeType,
    /// Right edge class for the edge-spacing rule.
    pub edge_right: EdgeType,
    /// Rail parity constraint; only meaningful for even-height cells.
    pub rail: RailParity,
    /// LEF master name, when the cell came from a library-backed DEF.
    /// `None` for synthetic cells (DEF I/O then uses the self-describing
    /// `MH_*` encoding).
    #[serde(default)]
    pub master: Option<String>,
}

impl Cell {
    /// Height in dbu for a given row height.
    pub fn height(&self, row_height: Dbu) -> Dbu {
        Dbu::from(self.height_rows) * row_height
    }

    /// Footprint rectangle at the current position.
    pub fn rect(&self, row_height: Dbu) -> Rect {
        Rect::with_size(self.pos, self.width, self.height(row_height))
    }

    /// Footprint rectangle at the global-placement position.
    pub fn gp_rect(&self, row_height: Dbu) -> Rect {
        Rect::with_size(self.gp_pos, self.width, self.height(row_height))
    }

    /// Footprint rectangle at an arbitrary candidate position.
    pub fn rect_at(&self, pos: Point, row_height: Dbu) -> Rect {
        Rect::with_size(pos, self.width, self.height(row_height))
    }

    /// Cell area in dbu².
    pub fn area(&self, row_height: Dbu) -> i64 {
        self.width * self.height(row_height)
    }

    /// `true` for cells a legalizer is allowed to move.
    pub fn is_movable(&self) -> bool {
        !self.fixed
    }

    /// Manhattan displacement of the current position from global placement.
    pub fn displacement(&self) -> Dbu {
        self.pos.manhattan(self.gp_pos)
    }

    /// `true` when the rail-parity constraint applies (even row height).
    pub fn is_rail_constrained(&self) -> bool {
        self.height_rows.is_multiple_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(h: u8) -> Cell {
        Cell {
            name: "x".into(),
            width: 400,
            height_rows: h,
            gp_pos: Point::new(100, 100),
            pos: Point::new(100, 100),
            legalized: false,
            fixed: false,
            region: None,
            edge_left: EdgeType::default(),
            edge_right: EdgeType::default(),
            rail: RailParity::default(),
            master: None,
        }
    }

    #[test]
    fn geometry() {
        let c = cell(2);
        assert_eq!(c.height(2_000), 4_000);
        assert_eq!(c.rect(2_000), Rect::new(100, 100, 500, 4_100));
        assert_eq!(c.area(2_000), 1_600_000);
        assert_eq!(
            c.rect_at(Point::new(0, 0), 2_000),
            Rect::new(0, 0, 400, 4_000)
        );
    }

    #[test]
    fn displacement_tracks_pos() {
        let mut c = cell(1);
        assert_eq!(c.displacement(), 0);
        c.pos = Point::new(300, 0);
        assert_eq!(c.displacement(), 300);
    }

    #[test]
    fn rail_constraint_applies_to_even_heights_only() {
        assert!(!cell(1).is_rail_constrained());
        assert!(cell(2).is_rail_constrained());
        assert!(!cell(3).is_rail_constrained());
        assert!(cell(4).is_rail_constrained());
    }

    #[test]
    fn rail_parity_rows() {
        assert!(RailParity::Even.allows_row(0));
        assert!(!RailParity::Even.allows_row(1));
        assert!(RailParity::Odd.allows_row(3));
        assert!(!RailParity::Odd.allows_row(4));
        // Euclidean behaviour for (defensive) negative rows.
        assert!(RailParity::Even.allows_row(-2));
        assert!(RailParity::Odd.allows_row(-1));
    }
}
