//! Crash-consistent file writes.
//!
//! A plain `std::fs::write` that dies mid-way (crash, kill, full disk)
//! leaves a torn file under the *final* name, silently replacing whatever
//! was there before. Every durable artifact this workspace produces — DEF
//! output, training checkpoints — goes through [`write_atomic`] instead:
//! the bytes land in a same-directory temporary file, are fsynced, and
//! only then renamed over the destination, so readers observe either the
//! complete old contents or the complete new contents, never a mixture.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: tmp file in the same directory,
/// `fsync`, rename over the destination, `fsync` of the parent directory
/// (so the rename itself is durable).
///
/// # Errors
///
/// Any I/O error aborts the write; a pre-existing file at `path` is left
/// untouched in that case and the temporary file is removed.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_inner(path, bytes, None)
}

/// Test seam for [`write_atomic`]: fails with an injected error after
/// writing `fail_after` bytes of the temporary file, simulating a crash
/// mid-write. The destination must be left exactly as it was.
#[doc(hidden)]
pub fn write_atomic_failing(path: &Path, bytes: &[u8], fail_after: usize) -> io::Result<()> {
    write_atomic_inner(path, bytes, Some(fail_after))
}

fn write_atomic_inner(path: &Path, bytes: &[u8], fail_after: Option<usize>) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // Same directory as the destination: rename must not cross devices.
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        match fail_after {
            Some(n) => {
                f.write_all(&bytes[..n.min(bytes.len())])?;
                return Err(io::Error::other("injected fault: crash mid-write"));
            }
            None => f.write_all(bytes)?,
        }
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Durability of the rename: fsync the directory entry. Failures
        // here (e.g. platforms where directories cannot be opened) do not
        // compromise atomicity, only durability, so they are tolerated.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rlleg-fsio-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("basic");
        let path = dir.join("out.def");
        write_atomic(&path, b"first").expect("first write");
        assert_eq!(fs::read(&path).expect("read"), b"first");
        write_atomic(&path, b"second").expect("second write");
        assert_eq!(fs::read(&path).expect("read"), b"second");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_crash_mid_write_leaves_existing_file_intact() {
        let dir = temp_dir("crash");
        let path = dir.join("out.def");
        write_atomic(&path, b"precious original contents").expect("seed write");
        let err = write_atomic_failing(&path, b"replacement that dies half-way", 9)
            .expect_err("injected fault must surface");
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(
            fs::read(&path).expect("read"),
            b"precious original contents",
            "destination must be untouched after a torn write"
        );
        // No temp litter left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_name_is_an_error() {
        assert!(write_atomic(Path::new("/"), b"x").is_err());
    }
}
