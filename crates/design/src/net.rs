use serde::{Deserialize, Serialize};

use rlleg_geom::Point;

use crate::cell::CellId;

/// Identifier of a net inside one [`Design`](crate::Design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One pin of a net: either an offset into a cell or a fixed location
/// (IO pad / pre-routed terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pin {
    /// A pin on `cell`, at `offset` from the cell's lower-left corner.
    OnCell {
        /// Owning cell.
        cell: CellId,
        /// Offset from the cell's lower-left corner, in dbu.
        offset: Point,
    },
    /// A pin at a fixed absolute location.
    Fixed(Point),
}

impl Pin {
    /// The cell this pin belongs to, if any.
    pub fn cell(&self) -> Option<CellId> {
        match self {
            Pin::OnCell { cell, .. } => Some(*cell),
            Pin::Fixed(_) => None,
        }
    }
}

/// A net connecting two or more pins; wirelength is estimated as the
/// half-perimeter of the pin bounding box (HPWL).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// The net's pins.
    pub pins: Vec<Pin>,
}

impl Net {
    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_cell_accessor() {
        let p = Pin::OnCell {
            cell: CellId(3),
            offset: Point::new(10, 20),
        };
        assert_eq!(p.cell(), Some(CellId(3)));
        assert_eq!(Pin::Fixed(Point::ORIGIN).cell(), None);
    }

    #[test]
    fn degree() {
        let n = Net {
            name: "n".into(),
            pins: vec![Pin::Fixed(Point::ORIGIN), Pin::Fixed(Point::new(1, 1))],
        };
        assert_eq!(n.degree(), 2);
        assert_eq!(NetId(7).to_string(), "n7");
    }
}
