use serde::{Deserialize, Serialize};

use rlleg_geom::Dbu;

use crate::cell::EdgeType;

/// Placement technology: site geometry, power-rail layout, and edge-spacing
/// rules.
///
/// Two built-in technologies mirror the paper's benchmarks:
///
/// - [`Technology::contest`] — the ICCAD-2017 contest technology
///   (site width 200 nm),
/// - [`Technology::nangate45`] — Nangate 45 nm used for the OpenCores
///   designs (site width 190 nm).
///
/// ```
/// use rlleg_design::Technology;
/// let t = Technology::contest();
/// assert_eq!(t.site_width, 200);
/// assert_eq!(t.edge_spacing(Default::default(), Default::default()), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Technology {
    /// Technology name (informational).
    pub name: String,
    /// Width of one placement site in dbu.
    pub site_width: Dbu,
    /// Height of one placement row in dbu.
    pub row_height: Dbu,
    /// Largest supported cell height, in rows.
    pub max_height_rows: u8,
    /// Edge-type spacing table, in *sites*: `spacing[left][right]` is the
    /// minimum horizontal gap between a cell whose right edge has type
    /// `left` and a following cell whose left edge has type `right`.
    ///
    /// Indexed by [`EdgeType`] values; type 0 is the default edge with no
    /// spacing requirement against anything.
    pub edge_spacing_sites: Vec<Vec<u16>>,
}

impl Technology {
    /// ICCAD-2017 contest technology: 200 nm sites, 2 000 nm rows, cells up
    /// to 4 rows tall, and a two-class edge-spacing rule (type-2 edges must
    /// keep one empty site from each other, as the contest's edge-spacing
    /// constraint does at sub-14 nm).
    pub fn contest() -> Self {
        Self {
            name: "iccad2017".to_owned(),
            site_width: 200,
            row_height: 2_000,
            max_height_rows: 4,
            edge_spacing_sites: vec![vec![0, 0, 0], vec![0, 0, 1], vec![0, 1, 2]],
        }
    }

    /// Nangate 45 nm open cell library geometry: 190 nm sites, 1 400 nm rows.
    /// The OpenCores benchmarks modify 10 % of the library to be multi-height
    /// while keeping area; edge spacing is not part of this library.
    pub fn nangate45() -> Self {
        Self {
            name: "nangate45".to_owned(),
            site_width: 190,
            row_height: 1_400,
            max_height_rows: 4,
            edge_spacing_sites: vec![vec![0]],
        }
    }

    /// Minimum horizontal gap, in dbu, between a cell ending with edge type
    /// `left` and the next cell starting with edge type `right`.
    ///
    /// Unknown edge types fall back to zero spacing.
    pub fn edge_spacing(&self, left: EdgeType, right: EdgeType) -> Dbu {
        let s = self
            .edge_spacing_sites
            .get(left.0 as usize)
            .and_then(|row| row.get(right.0 as usize))
            .copied()
            .unwrap_or(0);
        Dbu::from(s) * self.site_width
    }

    /// The largest spacing any edge-type pair can demand, in dbu.
    ///
    /// Placed cells farther apart than this can never violate edge
    /// spacing, which lets window-scoped grid snapshots copy only the
    /// row-index entries within this halo of the window.
    pub fn max_edge_spacing(&self) -> Dbu {
        let s = self
            .edge_spacing_sites
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0);
        Dbu::from(s) * self.site_width
    }

    /// Rounds `x` down to the nearest site boundary.
    pub fn snap_x_down(&self, x: Dbu) -> Dbu {
        x.div_euclid(self.site_width) * self.site_width
    }

    /// Rounds `y` down to the nearest row boundary.
    pub fn snap_y_down(&self, y: Dbu) -> Dbu {
        y.div_euclid(self.row_height) * self.row_height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_technologies() {
        let c = Technology::contest();
        assert_eq!((c.site_width, c.row_height), (200, 2_000));
        let n = Technology::nangate45();
        assert_eq!((n.site_width, n.row_height), (190, 1_400));
        assert!(c.max_height_rows >= 4);
    }

    #[test]
    fn edge_spacing_lookup() {
        let t = Technology::contest();
        let e0 = EdgeType(0);
        let e1 = EdgeType(1);
        let e2 = EdgeType(2);
        assert_eq!(t.edge_spacing(e0, e0), 0);
        assert_eq!(t.edge_spacing(e1, e2), 200);
        assert_eq!(t.edge_spacing(e2, e2), 400);
        // Symmetric table as constructed.
        assert_eq!(t.edge_spacing(e2, e1), t.edge_spacing(e1, e2));
        // Out-of-table types are permissive.
        assert_eq!(t.edge_spacing(EdgeType(9), e2), 0);
    }

    #[test]
    fn max_edge_spacing_bounds_the_table() {
        assert_eq!(Technology::contest().max_edge_spacing(), 400);
        assert_eq!(Technology::nangate45().max_edge_spacing(), 0);
    }

    #[test]
    fn snapping() {
        let t = Technology::contest();
        assert_eq!(t.snap_x_down(399), 200);
        assert_eq!(t.snap_x_down(400), 400);
        assert_eq!(t.snap_x_down(-1), -200);
        assert_eq!(t.snap_y_down(1_999), 0);
    }
}
