//! A pragmatic LEF-subset reader and writer.
//!
//! The paper's flow consumes LEF (cell library geometry) plus DEF (the
//! placement). This module models the part of LEF that legalization needs:
//! the placement `SITE`, and per-`MACRO` size, rail symmetry, edge types,
//! and pin offsets. Together with [`def`](crate::def) it lets a DEF that
//! references arbitrary master names (e.g. `INV_X1`) be loaded against a
//! library instead of the self-describing `MH_*` encoding.
//!
//! Dimensions in LEF are microns; this module converts through the
//! `UNITS DATABASE MICRONS` factor into dbu (1 dbu = 1 nm at the built-in
//! factor 1000).
//!
//! ```
//! use rlleg_design::lef::{Library, MacroDef, PinDef};
//! use rlleg_design::Technology;
//!
//! let lib = Library::for_technology(&Technology::contest());
//! let text = lib.to_lef();
//! let back = Library::parse(&text)?;
//! assert_eq!(back.site_width, 200);
//! # Ok::<(), rlleg_design::lef::ParseLefError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use rlleg_geom::{Dbu, Point};

use crate::cell::{EdgeType, RailParity};
use crate::tech::Technology;

/// Error produced by [`Library::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLefError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseLefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LEF parse error: {}", self.message)
    }
}

impl std::error::Error for ParseLefError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseLefError> {
    Err(ParseLefError {
        message: message.into(),
    })
}

/// One pin of a macro: a name and an offset from the cell origin (the
/// centre of the pin's first port rectangle).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinDef {
    /// Pin name (`A`, `ZN`, …).
    pub name: String,
    /// Offset from the cell's lower-left corner, in dbu.
    pub offset: Point,
}

/// One cell master.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroDef {
    /// Macro name.
    pub name: String,
    /// Width in dbu (a multiple of the site width).
    pub width: Dbu,
    /// Height in rows.
    pub height_rows: u8,
    /// Left edge class (edge-spacing rule).
    pub edge_left: EdgeType,
    /// Right edge class.
    pub edge_right: EdgeType,
    /// Rail parity for even-height masters.
    pub rail: RailParity,
    /// Pins, in declaration order.
    pub pins: Vec<PinDef>,
}

/// A cell library: the placement site plus the macros.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Library {
    /// Library name (informational).
    pub name: String,
    /// Database units per micron (1000 → 1 dbu = 1 nm).
    pub dbu_per_micron: i64,
    /// Site width in dbu.
    pub site_width: Dbu,
    /// Row (site) height in dbu.
    pub row_height: Dbu,
    /// Macros by name.
    pub macros: BTreeMap<String, MacroDef>,
}

impl Library {
    /// An empty library matching a technology's site geometry.
    pub fn for_technology(tech: &Technology) -> Self {
        Self {
            name: tech.name.clone(),
            dbu_per_micron: 1_000,
            site_width: tech.site_width,
            row_height: tech.row_height,
            macros: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a macro.
    pub fn add_macro(&mut self, m: MacroDef) {
        self.macros.insert(m.name.clone(), m);
    }

    /// Looks a macro up by name.
    pub fn get(&self, name: &str) -> Option<&MacroDef> {
        self.macros.get(name)
    }

    /// Serializes the library to the LEF subset.
    pub fn to_lef(&self) -> String {
        let um = self.dbu_per_micron as f64;
        let mut s = String::new();
        let _ = writeln!(s, "VERSION 5.8 ;");
        let _ = writeln!(
            s,
            "UNITS\n  DATABASE MICRONS {} ;\nEND UNITS",
            self.dbu_per_micron
        );
        let _ = writeln!(
            s,
            "SITE core\n  CLASS CORE ;\n  SIZE {:.4} BY {:.4} ;\nEND core",
            self.site_width as f64 / um,
            self.row_height as f64 / um
        );
        for m in self.macros.values() {
            let _ = writeln!(s, "MACRO {}", m.name);
            let _ = writeln!(s, "  CLASS CORE ;");
            let _ = writeln!(
                s,
                "  SIZE {:.4} BY {:.4} ;",
                m.width as f64 / um,
                (i64::from(m.height_rows) * self.row_height) as f64 / um
            );
            let _ = writeln!(s, "  SITE core ;");
            // Rail parity is LEF SYMMETRY in spirit: X-symmetric cells can
            // flip to either rail. We encode the constraint explicitly.
            if m.rail == RailParity::Odd {
                let _ = writeln!(s, "  PROPERTY railParity odd ;");
            }
            if m.edge_left.0 != 0 {
                let _ = writeln!(s, "  PROPERTY edgeTypeLeft {} ;", m.edge_left.0);
            }
            if m.edge_right.0 != 0 {
                let _ = writeln!(s, "  PROPERTY edgeTypeRight {} ;", m.edge_right.0);
            }
            for p in &m.pins {
                let _ = writeln!(s, "  PIN {}", p.name);
                let _ = writeln!(
                    s,
                    "    PORT\n      LAYER M1 ;\n      RECT {:.4} {:.4} {:.4} {:.4} ;\n    END",
                    p.offset.x as f64 / um,
                    p.offset.y as f64 / um,
                    p.offset.x as f64 / um,
                    p.offset.y as f64 / um
                );
                let _ = writeln!(s, "  END {}", p.name);
            }
            let _ = writeln!(s, "END {}", m.name);
        }
        let _ = writeln!(s, "END LIBRARY");
        s
    }

    /// Parses the LEF subset (plus comments and unknown statements, which
    /// are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`ParseLefError`] on malformed numbers, macro sizes that are
    /// not whole multiples of the site, or truncated sections.
    pub fn parse(text: &str) -> Result<Library, ParseLefError> {
        let toks: Vec<&str> = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or(""))
            .flat_map(|l| l.split_whitespace())
            .collect();
        let mut lib = Library {
            name: "parsed".to_owned(),
            dbu_per_micron: 1_000,
            site_width: 0,
            row_height: 0,
            macros: BTreeMap::new(),
        };
        let mut i = 0usize;
        let next = |i: &mut usize| -> Result<&str, ParseLefError> {
            let t = toks.get(*i).copied();
            *i += 1;
            t.ok_or_else(|| ParseLefError {
                message: "unexpected end of file".into(),
            })
        };
        let number = |i: &mut usize| -> Result<f64, ParseLefError> {
            let t = next(i)?;
            let v: f64 = t.parse().map_err(|_| ParseLefError {
                message: format!("expected number, got `{t}`"),
            })?;
            if !v.is_finite() {
                return err(format!("non-finite number `{t}`"));
            }
            Ok(v)
        };
        let to_dbu = |lib: &Library, microns: f64| -> Dbu {
            (microns * lib.dbu_per_micron as f64).round() as Dbu
        };

        while i < toks.len() {
            match toks[i] {
                "UNITS" => {
                    i += 1;
                    // `i < toks.len()` keeps a truncated section (EOF before
                    // `END`) from walking `i` past the end forever.
                    while toks.get(i) != Some(&"END") {
                        if i >= toks.len() {
                            return err("unterminated UNITS section");
                        }
                        if toks.get(i) == Some(&"DATABASE") && toks.get(i + 1) == Some(&"MICRONS") {
                            i += 2;
                            let v = number(&mut i)?;
                            if !(1.0..=1e9).contains(&v) {
                                return err(format!("DATABASE MICRONS {v} out of range"));
                            }
                            lib.dbu_per_micron = v as i64;
                        } else {
                            i += 1;
                        }
                    }
                    i += 2; // END UNITS
                }
                "SITE" => {
                    i += 1;
                    let site_name = next(&mut i)?.to_owned();
                    while toks.get(i) != Some(&"END") {
                        if i >= toks.len() {
                            return err("unterminated SITE section");
                        }
                        if toks.get(i) == Some(&"SIZE") {
                            i += 1;
                            let w = number(&mut i)?;
                            if next(&mut i)? != "BY" {
                                return err("expected BY in SITE SIZE");
                            }
                            let h = number(&mut i)?;
                            lib.site_width = to_dbu(&lib, w);
                            lib.row_height = to_dbu(&lib, h);
                        } else {
                            i += 1;
                        }
                    }
                    i += 2; // END <name>
                    let _ = site_name;
                }
                "MACRO" => {
                    i += 1;
                    let name = next(&mut i)?.to_owned();
                    let mut m = MacroDef {
                        name: name.clone(),
                        width: 0,
                        height_rows: 0,
                        edge_left: EdgeType(0),
                        edge_right: EdgeType(0),
                        rail: RailParity::Even,
                        pins: Vec::new(),
                    };
                    loop {
                        let tok = next(&mut i)?;
                        match tok {
                            "SIZE" => {
                                let w = number(&mut i)?;
                                if next(&mut i)? != "BY" {
                                    return err("expected BY in MACRO SIZE");
                                }
                                let h = number(&mut i)?;
                                m.width = to_dbu(&lib, w);
                                let h_dbu = to_dbu(&lib, h);
                                if lib.row_height <= 0 {
                                    return err("MACRO before SITE: row height unknown");
                                }
                                if h_dbu % lib.row_height != 0 {
                                    return err(format!(
                                        "macro `{name}` height {h_dbu} not a whole number of rows"
                                    ));
                                }
                                let rows_i = h_dbu / lib.row_height;
                                if !(1..=i64::from(u8::MAX)).contains(&rows_i) {
                                    return err(format!(
                                        "macro `{name}` height of {rows_i} rows out of range 1..=255"
                                    ));
                                }
                                m.height_rows = rows_i as u8;
                            }
                            "PROPERTY" => {
                                let key = next(&mut i)?;
                                let val = next(&mut i)?;
                                match key {
                                    "railParity" if val == "odd" => m.rail = RailParity::Odd,
                                    "edgeTypeLeft" => {
                                        m.edge_left =
                                            EdgeType(val.parse().map_err(|_| ParseLefError {
                                                message: format!("bad edge `{val}`"),
                                            })?)
                                    }
                                    "edgeTypeRight" => {
                                        m.edge_right =
                                            EdgeType(val.parse().map_err(|_| ParseLefError {
                                                message: format!("bad edge `{val}`"),
                                            })?)
                                    }
                                    _ => {}
                                }
                            }
                            "PIN" => {
                                let pin_name = next(&mut i)?.to_owned();
                                let mut offset = Point::ORIGIN;
                                loop {
                                    let t = next(&mut i)?;
                                    if t == "RECT" {
                                        let x1 = number(&mut i)?;
                                        let y1 = number(&mut i)?;
                                        let x2 = number(&mut i)?;
                                        let y2 = number(&mut i)?;
                                        offset = Point::new(
                                            to_dbu(&lib, (x1 + x2) / 2.0),
                                            to_dbu(&lib, (y1 + y2) / 2.0),
                                        );
                                    } else if t == "END" {
                                        // END (port) or END <pin_name>
                                        if toks.get(i) == Some(&pin_name.as_str()) {
                                            i += 1;
                                            break;
                                        }
                                    }
                                }
                                m.pins.push(PinDef {
                                    name: pin_name,
                                    offset,
                                });
                            }
                            "END" => {
                                let end_name = next(&mut i)?;
                                if end_name == name {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    if m.width <= 0 || m.height_rows == 0 {
                        return err(format!("macro `{name}` missing or degenerate SIZE"));
                    }
                    lib.macros.insert(name, m);
                }
                "END" if toks.get(i + 1) == Some(&"LIBRARY") => break,
                _ => i += 1,
            }
        }
        if lib.site_width <= 0 || lib.row_height <= 0 {
            return err("missing SITE definition");
        }
        Ok(lib)
    }

    /// Builds a technology matching the library's site (edge-spacing table
    /// taken from `base`).
    pub fn technology(&self, base: &Technology) -> Technology {
        Technology {
            name: format!("{}-lef", self.name),
            site_width: self.site_width,
            row_height: self.row_height,
            max_height_rows: base.max_height_rows,
            edge_spacing_sites: base.edge_spacing_sites.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_library() -> Library {
        let mut lib = Library::for_technology(&Technology::contest());
        lib.add_macro(MacroDef {
            name: "INV_X1".into(),
            width: 400,
            height_rows: 1,
            edge_left: EdgeType(0),
            edge_right: EdgeType(0),
            rail: RailParity::Even,
            pins: vec![
                PinDef {
                    name: "A".into(),
                    offset: Point::new(100, 1_000),
                },
                PinDef {
                    name: "ZN".into(),
                    offset: Point::new(300, 1_000),
                },
            ],
        });
        lib.add_macro(MacroDef {
            name: "DFF_X2_MH2".into(),
            width: 1_200,
            height_rows: 2,
            edge_left: EdgeType(1),
            edge_right: EdgeType(2),
            rail: RailParity::Odd,
            pins: vec![PinDef {
                name: "D".into(),
                offset: Point::new(200, 2_000),
            }],
        });
        lib
    }

    #[test]
    fn lef_round_trip() {
        let lib = sample_library();
        let text = lib.to_lef();
        let back = Library::parse(&text).expect("parse");
        assert_eq!(back.site_width, lib.site_width);
        assert_eq!(back.row_height, lib.row_height);
        assert_eq!(back.macros.len(), 2);
        let dff = back.get("DFF_X2_MH2").expect("macro");
        assert_eq!(dff.width, 1_200);
        assert_eq!(dff.height_rows, 2);
        assert_eq!(dff.rail, RailParity::Odd);
        assert_eq!(dff.edge_left, EdgeType(1));
        assert_eq!(dff.edge_right, EdgeType(2));
        assert_eq!(dff.pins.len(), 1);
        assert_eq!(dff.pins[0].offset, Point::new(200, 2_000));
        let inv = back.get("INV_X1").expect("macro");
        assert_eq!(inv.pins[1].name, "ZN");
    }

    #[test]
    fn parse_handmade_lef() {
        let text = "\
VERSION 5.8 ;
UNITS
  DATABASE MICRONS 2000 ;
END UNITS
# comment line
SITE unit
  CLASS CORE ;
  SIZE 0.1 BY 1.0 ;
END unit
MACRO BUF_X4
  CLASS CORE ;
  SIZE 0.4 BY 2.0 ;
  SITE unit ;
  PIN A
    PORT
      LAYER M1 ;
      RECT 0.05 0.1 0.15 0.2 ;
    END
  END A
END BUF_X4
END LIBRARY
";
        let lib = Library::parse(text).expect("parse");
        assert_eq!(lib.dbu_per_micron, 2_000);
        assert_eq!(lib.site_width, 200);
        assert_eq!(lib.row_height, 2_000);
        let m = lib.get("BUF_X4").expect("macro");
        assert_eq!(m.width, 800);
        assert_eq!(m.height_rows, 2);
        assert_eq!(m.pins[0].offset, Point::new(200, 300));
    }

    #[test]
    fn rejects_fractional_row_heights() {
        let text = "\
UNITS
  DATABASE MICRONS 1000 ;
END UNITS
SITE core
  SIZE 0.2 BY 2.0 ;
END core
MACRO BAD
  SIZE 0.2 BY 3.0 ;
END BAD
END LIBRARY
";
        let r = Library::parse(text);
        assert!(r.unwrap_err().to_string().contains("whole number of rows"));
    }

    #[test]
    fn rejects_missing_site() {
        let r = Library::parse("VERSION 5.8 ;\nEND LIBRARY\n");
        assert!(r.unwrap_err().to_string().contains("SITE"));
    }

    #[test]
    fn truncated_units_section_is_an_error_not_a_hang() {
        // EOF before the END of UNITS used to walk the token index forever.
        let r = Library::parse("UNITS\n  DATABASE MICRONS 1000 ;\n");
        assert!(r.unwrap_err().to_string().contains("unterminated UNITS"));
    }

    #[test]
    fn truncated_site_section_is_an_error_not_a_hang() {
        let r = Library::parse("SITE core\n  SIZE 0.2 BY 2.0 ;\n");
        assert!(r.unwrap_err().to_string().contains("unterminated SITE"));
    }

    #[test]
    fn truncated_macro_is_an_error() {
        let text = "\
SITE core
  SIZE 0.2 BY 2.0 ;
END core
MACRO HALF
  SIZE 0.2 BY 2.0 ;
";
        let r = Library::parse(text);
        assert!(r.unwrap_err().to_string().contains("end of file"));
    }

    #[test]
    fn rejects_overtall_macros_instead_of_truncating() {
        // 600 rows used to truncate through `as u8` into 88 rows.
        let text = "\
SITE core
  SIZE 0.2 BY 2.0 ;
END core
MACRO TOWER
  SIZE 0.2 BY 1200.0 ;
END TOWER
END LIBRARY
";
        let r = Library::parse(text);
        assert!(r.unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn rejects_negative_macro_height() {
        let text = "\
SITE core
  SIZE 0.2 BY 2.0 ;
END core
MACRO NEG
  SIZE 0.2 BY -2.0 ;
END NEG
END LIBRARY
";
        let r = Library::parse(text);
        assert!(r.unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn rejects_non_finite_numbers() {
        let text = "\
SITE core
  SIZE inf BY 2.0 ;
END core
END LIBRARY
";
        let r = Library::parse(text);
        assert!(r.unwrap_err().to_string().contains("non-finite"));
    }

    #[test]
    fn rejects_out_of_range_database_units() {
        let r = Library::parse("UNITS\n  DATABASE MICRONS -5 ;\nEND UNITS\nEND LIBRARY\n");
        assert!(r.unwrap_err().to_string().contains("out of range"));
    }

    #[test]
    fn technology_from_library() {
        let lib = sample_library();
        let t = lib.technology(&Technology::contest());
        assert_eq!(t.site_width, 200);
        assert_eq!(t.row_height, 2_000);
        assert_eq!(
            t.edge_spacing_sites,
            Technology::contest().edge_spacing_sites
        );
    }
}
