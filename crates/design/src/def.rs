//! A pragmatic DEF-subset reader and writer.
//!
//! The paper's flow consumes LEF/DEF from global placement. This module
//! round-trips a [`Design`] through a DEF 5.8 subset covering `DESIGN`,
//! `UNITS`, `DIEAREA`, `REGIONS`, `COMPONENTS` (with `PLACED`/`FIXED` and a
//! `+ REGION` extension for fence membership), and `NETS`.
//!
//! Because this crate has no separate LEF library, master geometry is
//! self-described: the writer synthesizes master names of the form
//! `MH_W<sites>_H<rows>[_EL<e>][_ER<e>][_RO]` and pin names of the form
//! `p<dx>_<dy>`; the reader decodes them. A real LEF/DEF pair can be
//! converted into this subset with a one-line mapping, and everything the
//! legalizer needs (sizes, positions, fences, connectivity) survives the
//! round trip bit-exactly. The global-placement position is emitted for
//! non-legalized cells; legalized positions are written as-is.
//!
//! ```
//! use rlleg_design::{DesignBuilder, Technology, def};
//! use rlleg_geom::Point;
//!
//! let mut b = DesignBuilder::new("demo", Technology::contest(), 10, 4);
//! let a = b.add_cell("u1", 2, 1, Point::new(0, 0));
//! b.add_net("n1", vec![(a, 100, 0)]);
//! let d = b.build();
//! let text = def::write_def(&d);
//! let back = def::parse_def(&text, Technology::contest())?;
//! assert_eq!(back.num_cells(), 1);
//! # Ok::<(), def::ParseDefError>(())
//! ```

use std::fmt::Write as _;

use rlleg_geom::{Dbu, Point, Rect};

use crate::cell::{CellId, EdgeType, RailParity};
use crate::design::Design;
use crate::lef::{Library, PinDef};
use crate::net::Pin;
use crate::tech::Technology;
use crate::DesignBuilder;

/// Error produced by [`parse_def`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DEF parse error: {}", self.message)
    }
}

impl std::error::Error for ParseDefError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseDefError> {
    Err(ParseDefError {
        message: message.into(),
    })
}

/// Encodes a cell's master geometry in a self-describing master name.
fn master_name(design: &Design, id: CellId) -> String {
    let c = design.cell(id);
    if let Some(m) = &c.master {
        return m.clone();
    }
    let mut name = format!(
        "MH_W{}_H{}",
        c.width / design.tech.site_width,
        c.height_rows
    );
    if c.edge_left.0 != 0 {
        let _ = write!(name, "_EL{}", c.edge_left.0);
    }
    if c.edge_right.0 != 0 {
        let _ = write!(name, "_ER{}", c.edge_right.0);
    }
    if c.rail == RailParity::Odd {
        name.push_str("_RO");
    }
    name
}

fn decode_master(name: &str) -> Option<(i64, u8, EdgeType, EdgeType, RailParity)> {
    let rest = name.strip_prefix("MH_")?;
    let mut w = None;
    let mut h = None;
    let mut el = EdgeType(0);
    let mut er = EdgeType(0);
    let mut rail = RailParity::Even;
    for part in rest.split('_') {
        if let Some(v) = part.strip_prefix('W') {
            w = v.parse().ok();
        } else if let Some(v) = part.strip_prefix("EL") {
            el = EdgeType(v.parse().ok()?);
        } else if let Some(v) = part.strip_prefix("ER") {
            er = EdgeType(v.parse().ok()?);
        } else if let Some(v) = part.strip_prefix('H') {
            h = v.parse().ok();
        } else if part == "RO" {
            rail = RailParity::Odd;
        } else {
            return None;
        }
    }
    Some((w?, h?, el, er, rail))
}

/// Serializes `design` to the DEF subset.
pub fn write_def(design: &Design) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "DESIGN {} ;", design.name);
    let _ = writeln!(s, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(
        s,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        design.core.lo.x, design.core.lo.y, design.core.hi.x, design.core.hi.y
    );
    if let Some(md) = design.max_displacement {
        let _ = writeln!(
            s,
            "PROPERTYDEFINITIONS\n  DESIGN maxDisplacement INTEGER {md} ;\nEND PROPERTYDEFINITIONS"
        );
    }

    if !design.regions.is_empty() {
        let _ = writeln!(s, "REGIONS {} ;", design.regions.len());
        for r in &design.regions {
            let _ = write!(s, "- {}", r.name);
            for rect in &r.rects {
                let _ = write!(
                    s,
                    " ( {} {} ) ( {} {} )",
                    rect.lo.x, rect.lo.y, rect.hi.x, rect.hi.y
                );
            }
            let _ = writeln!(s, " + TYPE FENCE ;");
        }
        let _ = writeln!(s, "END REGIONS");
    }

    let _ = writeln!(s, "COMPONENTS {} ;", design.num_cells());
    for id in design.cell_ids() {
        let c = design.cell(id);
        let kind = if c.fixed { "FIXED" } else { "PLACED" };
        let pos = if c.fixed || c.legalized {
            c.pos
        } else {
            c.gp_pos
        };
        let _ = write!(
            s,
            "- {} {} + {} ( {} {} ) N",
            c.name,
            master_name(design, id),
            kind,
            pos.x,
            pos.y
        );
        if let Some(reg) = c.region {
            let _ = write!(s, " + REGION {}", design.region(reg).name);
        }
        let _ = writeln!(s, " ;");
    }
    let _ = writeln!(s, "END COMPONENTS");

    let _ = writeln!(s, "NETS {} ;", design.num_nets());
    for net in &design.nets {
        let _ = write!(s, "- {}", net.name);
        for pin in &net.pins {
            match pin {
                Pin::OnCell { cell, offset } => {
                    let _ = write!(
                        s,
                        " ( {} p{}_{} )",
                        design.cell(*cell).name,
                        offset.x,
                        offset.y
                    );
                }
                Pin::Fixed(p) => {
                    let _ = write!(s, " ( PIN io_{}_{} )", p.x, p.y);
                }
            }
        }
        let _ = writeln!(s, " ;");
    }
    let _ = writeln!(s, "END NETS");
    let _ = writeln!(s, "END DESIGN");
    s
}

/// Serializes `design` to `path` crash-consistently (see
/// [`fsio::write_atomic`](crate::fsio::write_atomic)): a crash mid-write
/// leaves any pre-existing file at `path` intact.
///
/// # Errors
///
/// Propagates any I/O error from the atomic write.
pub fn write_def_file(design: &Design, path: &std::path::Path) -> std::io::Result<()> {
    crate::fsio::write_atomic(path, write_def(design).as_bytes())
}

struct Tokens<'a> {
    toks: Vec<&'a str>,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(text: &'a str) -> Self {
        // Strip comments (# to end of line), then whitespace-split;
        // parentheses are already space-separated in our writer and in
        // conventionally formatted DEF.
        let toks = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or(""))
            .flat_map(|l| l.split_whitespace())
            .collect();
        Tokens { toks, pos: 0 }
    }

    fn next(&mut self) -> Result<&'a str, ParseDefError> {
        let t = self.toks.get(self.pos).copied();
        self.pos += 1;
        t.ok_or_else(|| ParseDefError {
            message: "unexpected end of file".into(),
        })
    }

    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn expect(&mut self, want: &str) -> Result<(), ParseDefError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            err(format!("expected `{want}`, got `{got}`"))
        }
    }

    fn number(&mut self) -> Result<i64, ParseDefError> {
        let t = self.next()?;
        t.parse().map_err(|_| ParseDefError {
            message: format!("expected number, got `{t}`"),
        })
    }

    fn skip_to_semicolon(&mut self) -> Result<(), ParseDefError> {
        while self.next()? != ";" {}
        Ok(())
    }
}

/// Parses the DEF subset produced by [`write_def`] (plus comments and
/// unknown statements, which are skipped).
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed input: truncated statements,
/// non-numeric coordinates, unknown master-name encodings, references to
/// undeclared components or regions.
pub fn parse_def(text: &str, tech: Technology) -> Result<Design, ParseDefError> {
    parse_def_impl(text, tech, &|master| {
        decode_master(master).map(|(w, h, el, er, rail)| MasterInfo {
            w_sites: w,
            h_rows: h,
            el,
            er,
            rail,
            master: None,
            pins: Vec::new(),
        })
    })
}

/// Parses a DEF whose components reference masters of a LEF [`Library`]
/// (falling back to the self-describing `MH_*` encoding for names the
/// library does not define). Net pins may use either the library's pin
/// names or the `p<dx>_<dy>` offset encoding.
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed input or master names that
/// neither the library nor the `MH_*` encoding can resolve.
pub fn parse_def_with_library(
    text: &str,
    library: &Library,
    base_tech: &Technology,
) -> Result<Design, ParseDefError> {
    let tech = library.technology(base_tech);
    let site = library.site_width.max(1);
    parse_def_impl(text, tech, &|master| {
        if let Some(m) = library.get(master) {
            return Some(MasterInfo {
                w_sites: m.width / site,
                h_rows: m.height_rows,
                el: m.edge_left,
                er: m.edge_right,
                rail: m.rail,
                master: Some(m.name.clone()),
                pins: m.pins.clone(),
            });
        }
        decode_master(master).map(|(w, h, el, er, rail)| MasterInfo {
            w_sites: w,
            h_rows: h,
            el,
            er,
            rail,
            master: Some(master.to_owned()),
            pins: Vec::new(),
        })
    })
}

/// Resolved master geometry for one component.
struct MasterInfo {
    w_sites: i64,
    h_rows: u8,
    el: EdgeType,
    er: EdgeType,
    rail: RailParity,
    master: Option<String>,
    pins: Vec<PinDef>,
}

fn parse_def_impl(
    text: &str,
    tech: Technology,
    resolve: &dyn Fn(&str) -> Option<MasterInfo>,
) -> Result<Design, ParseDefError> {
    if tech.site_width <= 0 || tech.row_height <= 0 {
        return err("technology has non-positive site geometry");
    }
    let mut t = Tokens::new(text);
    let mut name = String::from("unnamed");
    let mut die: Option<Rect> = None;
    let mut max_disp = None;
    let mut regions: Vec<(String, Vec<Rect>)> = Vec::new();
    // component: (inst, resolved master info, fixed, pos, region-name)
    struct Comp {
        inst: String,
        info: MasterInfo,
        fixed: bool,
        pos: Point,
        region: Option<String>,
    }
    let mut comps: Vec<Comp> = Vec::new();
    let mut nets: Vec<(String, Vec<(String, String)>)> = Vec::new();

    while let Some(tok) = t.peek() {
        match tok {
            "DESIGN" => {
                t.next()?;
                name = t.next()?.to_owned();
                t.expect(";")?;
            }
            "DIEAREA" => {
                t.next()?;
                t.expect("(")?;
                let x1 = t.number()?;
                let y1 = t.number()?;
                t.expect(")")?;
                t.expect("(")?;
                let x2 = t.number()?;
                let y2 = t.number()?;
                t.expect(")")?;
                t.expect(";")?;
                if x1 > x2 || y1 > y2 {
                    return err("inverted DIEAREA");
                }
                die = Some(Rect::new(x1, y1, x2, y2));
            }
            "PROPERTYDEFINITIONS" => {
                t.next()?;
                while t.peek() != Some("END") {
                    if t.peek() == Some("DESIGN") {
                        t.next()?;
                        let key = t.next()?;
                        if key == "maxDisplacement" {
                            t.next()?; // INTEGER
                            max_disp = Some(t.number()?);
                            t.expect(";")?;
                        } else {
                            t.skip_to_semicolon()?;
                        }
                    } else {
                        t.next()?;
                    }
                }
                t.next()?; // END
                t.next()?; // PROPERTYDEFINITIONS
            }
            "REGIONS" => {
                t.next()?;
                let _count = t.number()?;
                t.expect(";")?;
                while t.peek() == Some("-") {
                    t.next()?;
                    let rname = t.next()?.to_owned();
                    let mut rects = Vec::new();
                    while t.peek() == Some("(") {
                        t.next()?;
                        let x1 = t.number()?;
                        let y1 = t.number()?;
                        t.expect(")")?;
                        t.expect("(")?;
                        let x2 = t.number()?;
                        let y2 = t.number()?;
                        t.expect(")")?;
                        if x1 > x2 || y1 > y2 {
                            return err(format!("inverted rect in region `{rname}`"));
                        }
                        rects.push(Rect::new(x1, y1, x2, y2));
                    }
                    t.skip_to_semicolon()?;
                    regions.push((rname, rects));
                }
                t.expect("END")?;
                t.expect("REGIONS")?;
            }
            "COMPONENTS" => {
                t.next()?;
                let _count = t.number()?;
                t.expect(";")?;
                while t.peek() == Some("-") {
                    t.next()?;
                    let inst = t.next()?.to_owned();
                    let master = t.next()?;
                    let Some(info) = resolve(master) else {
                        return err(format!("unresolvable master name `{master}`"));
                    };
                    if info.w_sites < 1 || info.h_rows < 1 {
                        return err(format!("master `{master}` has degenerate geometry"));
                    }
                    if info.h_rows > tech.max_height_rows {
                        return err(format!(
                            "master `{master}` height {} exceeds the technology maximum {}",
                            info.h_rows, tech.max_height_rows
                        ));
                    }
                    if info.w_sites.checked_mul(tech.site_width).is_none() {
                        return err(format!("master `{master}` width overflows"));
                    }
                    let mut fixed = false;
                    let mut pos = Point::ORIGIN;
                    let mut region = None;
                    loop {
                        match t.next()? {
                            ";" => break,
                            "+" => {}
                            other => {
                                return err(format!("unexpected token `{other}` in component"))
                            }
                        }
                        match t.next()? {
                            kind @ ("PLACED" | "FIXED") => {
                                fixed = kind == "FIXED";
                                t.expect("(")?;
                                let x = t.number()?;
                                let y = t.number()?;
                                t.expect(")")?;
                                let _orient = t.next()?;
                                pos = Point::new(x, y);
                            }
                            "REGION" => region = Some(t.next()?.to_owned()),
                            other => return err(format!("unknown component option `{other}`")),
                        }
                    }
                    comps.push(Comp {
                        inst,
                        info,
                        fixed,
                        pos,
                        region,
                    });
                }
                t.expect("END")?;
                t.expect("COMPONENTS")?;
            }
            "NETS" => {
                t.next()?;
                let _count = t.number()?;
                t.expect(";")?;
                while t.peek() == Some("-") {
                    t.next()?;
                    let nname = t.next()?.to_owned();
                    let mut pins = Vec::new();
                    while t.peek() == Some("(") {
                        t.next()?;
                        let comp = t.next()?.to_owned();
                        let pin = t.next()?.to_owned();
                        t.expect(")")?;
                        pins.push((comp, pin));
                    }
                    t.skip_to_semicolon()?;
                    nets.push((nname, pins));
                }
                t.expect("END")?;
                t.expect("NETS")?;
            }
            "END" => {
                t.next()?;
                if t.peek() == Some("DESIGN") {
                    break;
                }
            }
            _ => {
                // Unknown statement (VERSION, UNITS, ...): skip it.
                t.next()?;
            }
        }
    }

    let Some(die) = die else {
        return err("missing DIEAREA");
    };
    // Origin anchoring first: with `lo == (0, 0)` the width/height below
    // cannot overflow, whatever `hi` the input declared.
    if die.lo != Point::ORIGIN {
        return err("DIEAREA must be anchored at the origin in this subset");
    }
    let sites_x = die.width() / tech.site_width;
    let rows = die.height() / tech.row_height;
    if sites_x <= 0 || rows <= 0 {
        return err("DIEAREA smaller than one site/row");
    }
    if regions.len() > usize::from(u16::MAX) {
        return err("more regions than the design model supports");
    }
    let mut b = DesignBuilder::new(name, tech, sites_x, rows);
    if let Some(md) = max_disp {
        b.max_displacement(md);
    }
    let mut region_ids = std::collections::HashMap::new();
    for (rname, rects) in regions {
        let id = b.add_region(rname.clone(), rects);
        region_ids.insert(rname, id);
    }
    // Map instance -> (cell id, pin map) so NETS can resolve named pins.
    let mut cell_ids = std::collections::HashMap::new();
    for c in comps {
        let id = if c.fixed {
            b.add_fixed_cell(c.inst.clone(), c.info.w_sites, c.info.h_rows, c.pos)
        } else {
            b.add_cell(c.inst.clone(), c.info.w_sites, c.info.h_rows, c.pos)
        };
        b.set_edges(id, c.info.el, c.info.er);
        b.set_rail(id, c.info.rail);
        if let Some(master) = c.info.master {
            b.set_master(id, master);
        }
        if let Some(rname) = c.region {
            let Some(&rid) = region_ids.get(&rname) else {
                return err(format!(
                    "component `{}` references unknown region `{rname}`",
                    c.inst
                ));
            };
            b.assign_region(id, rid);
        }
        cell_ids.insert(c.inst, (id, c.info.pins));
    }
    for (nname, pins) in nets {
        let mut on_cell = Vec::new();
        let mut fixed = Vec::new();
        for (comp, pin) in pins {
            if comp == "PIN" {
                let Some(rest) = pin.strip_prefix("io_") else {
                    return err(format!("undecodable IO pin `{pin}`"));
                };
                let mut it = rest.splitn(2, '_');
                let (Some(xs), Some(ys)) = (it.next(), it.next()) else {
                    return err(format!("undecodable IO pin `{pin}`"));
                };
                let (Ok(x), Ok(y)) = (xs.parse::<Dbu>(), ys.parse::<Dbu>()) else {
                    return err(format!("undecodable IO pin `{pin}`"));
                };
                fixed.push(Point::new(x, y));
            } else {
                let Some((cid, pin_defs)) = cell_ids.get(&comp) else {
                    return err(format!(
                        "net `{nname}` references unknown component `{comp}`"
                    ));
                };
                // Library pin names take precedence; otherwise decode the
                // `p<dx>_<dy>` offset encoding.
                if let Some(pd) = pin_defs.iter().find(|pd| pd.name == pin) {
                    on_cell.push((*cid, pd.offset.x, pd.offset.y));
                    continue;
                }
                let decoded = pin.strip_prefix('p').and_then(|rest| {
                    let mut it = rest.splitn(2, '_');
                    let dx = it.next()?.parse::<Dbu>().ok()?;
                    let dy = it.next()?.parse::<Dbu>().ok()?;
                    Some((dx, dy))
                });
                let Some((dx, dy)) = decoded else {
                    return err(format!("unknown pin `{pin}` on component `{comp}`"));
                };
                on_cell.push((*cid, dx, dy));
            }
        }
        b.add_net_with_fixed(nname, on_cell, fixed);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    fn sample() -> Design {
        let mut b = DesignBuilder::new("demo", Technology::contest(), 20, 6);
        let a = b.add_cell("u1", 2, 1, Point::new(0, 0));
        let c = b.add_cell("u2", 1, 2, Point::new(1_000, 2_000));
        b.set_rail(c, RailParity::Odd);
        b.set_edges(a, EdgeType(1), EdgeType(2));
        b.add_fixed_cell("macro1", 4, 4, Point::new(2_000, 4_000));
        let r = b.add_region("fence_a", vec![Rect::new(0, 0, 2_000, 4_000)]);
        b.assign_region(a, r);
        b.max_displacement(40_000);
        b.add_net_with_fixed("n1", vec![(a, 100, 200), (c, 0, 0)], vec![Point::new(9, 9)]);
        b.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample();
        let text = write_def(&d);
        let back = parse_def(&text, Technology::contest()).expect("parse");
        assert_eq!(back.name, d.name);
        assert_eq!(back.core, d.core);
        assert_eq!(back.max_displacement, d.max_displacement);
        assert_eq!(back.num_cells(), d.num_cells());
        assert_eq!(back.num_nets(), d.num_nets());
        assert_eq!(back.regions, d.regions);
        for (a, b) in d.cells.iter().zip(back.cells.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.width, b.width);
            assert_eq!(a.height_rows, b.height_rows);
            assert_eq!(a.gp_pos, b.gp_pos);
            assert_eq!(a.fixed, b.fixed);
            assert_eq!(a.region, b.region);
            assert_eq!(a.edge_left, b.edge_left);
            assert_eq!(a.edge_right, b.edge_right);
            assert_eq!(a.rail, b.rail);
        }
        assert_eq!(back.nets, d.nets);
    }

    #[test]
    fn parser_skips_comments_and_unknown_statements() {
        let d = sample();
        let mut text = String::from("# a comment\nVERSION 5.8 ;\nTECHNOLOGY foo ;\n");
        text.push_str(&write_def(&d));
        let back = parse_def(&text, Technology::contest()).expect("parse");
        assert_eq!(back.num_cells(), d.num_cells());
    }

    #[test]
    fn missing_diearea_is_an_error() {
        let r = parse_def("DESIGN x ;\nEND DESIGN\n", Technology::contest());
        assert!(r.is_err());
        assert!(r.unwrap_err().to_string().contains("DIEAREA"));
    }

    #[test]
    fn truncated_components_section_is_an_error() {
        // EOF before `END COMPONENTS`.
        let text = "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nCOMPONENTS 1 ;\n- u1 MH_W1_H1 + PLACED ( 0 0 ";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("end of file"));
    }

    #[test]
    fn truncated_diearea_is_an_error() {
        let r = parse_def("DIEAREA ( 0 0 ) ( 4000", Technology::contest());
        assert!(r.is_err());
    }

    #[test]
    fn inverted_region_rect_is_an_error_not_a_panic() {
        let text = "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nREGIONS 1 ;\n- f ( 2000 0 ) ( 0 4000 ) + TYPE FENCE ;\nEND REGIONS\nEND DESIGN\n";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("inverted rect"));
    }

    #[test]
    fn degenerate_master_geometry_is_an_error_not_a_panic() {
        for master in ["MH_W0_H1", "MH_W-3_H1", "MH_W1_H0"] {
            let text = format!(
                "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nCOMPONENTS 1 ;\n- u1 {master} + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n"
            );
            let r = parse_def(&text, Technology::contest());
            assert!(
                r.unwrap_err().to_string().contains("degenerate"),
                "{master}"
            );
        }
    }

    #[test]
    fn overtall_master_is_an_error_not_a_panic() {
        // contest() allows at most 4 rows.
        let text = "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nCOMPONENTS 1 ;\n- u1 MH_W1_H9 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("exceeds"));
    }

    #[test]
    fn overwide_master_overflow_is_an_error_not_a_panic() {
        let text = "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nCOMPONENTS 1 ;\n- u1 MH_W92233720368547758_H1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("overflows"));
    }

    #[test]
    fn out_of_range_numeric_fields_are_errors() {
        // A coordinate beyond i64 must not wrap or panic.
        let text = "DIEAREA ( 0 0 ) ( 99999999999999999999999999 8000 ) ;\nEND DESIGN\n";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("expected number"));
    }

    #[test]
    fn huge_but_origin_anchored_diearea_does_not_overflow() {
        let text = format!(
            "DIEAREA ( 0 0 ) ( {} {} ) ;\nEND DESIGN\n",
            i64::MAX,
            i64::MAX
        );
        let r = parse_def(&text, Technology::contest());
        // Parses into a (huge) empty design without overflow panics.
        assert!(r.is_ok());
    }

    #[test]
    fn unknown_master_is_an_error() {
        let text = "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nCOMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("master"));
    }

    #[test]
    fn unknown_net_component_is_an_error() {
        let text = "DIEAREA ( 0 0 ) ( 4000 8000 ) ;\nNETS 1 ;\n- n1 ( ghost p0_0 ) ;\nEND NETS\nEND DESIGN\n";
        let r = parse_def(text, Technology::contest());
        assert!(r.unwrap_err().to_string().contains("unknown component"));
    }

    #[test]
    fn library_backed_parse() {
        use crate::lef::{Library, MacroDef, PinDef};
        let mut lib = Library::for_technology(&Technology::contest());
        lib.add_macro(MacroDef {
            name: "INV_X1".into(),
            width: 400,
            height_rows: 1,
            edge_left: EdgeType(0),
            edge_right: EdgeType(1),
            rail: RailParity::Even,
            pins: vec![
                PinDef {
                    name: "A".into(),
                    offset: Point::new(100, 500),
                },
                PinDef {
                    name: "ZN".into(),
                    offset: Point::new(300, 500),
                },
            ],
        });
        let text = "\
DIEAREA ( 0 0 ) ( 4000 8000 ) ;
COMPONENTS 2 ;
- u1 INV_X1 + PLACED ( 0 0 ) N ;
- u2 MH_W1_H2 + PLACED ( 1000 2000 ) N ;
END COMPONENTS
NETS 1 ;
- n1 ( u1 ZN ) ( u2 p0_0 ) ;
END NETS
END DESIGN
";
        let d = parse_def_with_library(text, &lib, &Technology::contest()).expect("parse");
        assert_eq!(d.num_cells(), 2);
        let u1 = d.cell(CellId(0));
        assert_eq!(u1.master.as_deref(), Some("INV_X1"));
        assert_eq!(u1.width, 400);
        assert_eq!(u1.edge_right, EdgeType(1));
        // Named pin resolved through the library.
        assert_eq!(
            d.pin_pos(&d.net(crate::NetId(0)).pins[0]),
            Point::new(300, 500)
        );
        // Offset-encoded pin still works alongside.
        assert_eq!(
            d.pin_pos(&d.net(crate::NetId(0)).pins[1]),
            Point::new(1_000, 2_000)
        );
        // Round trip keeps the real master name.
        let out = write_def(&d);
        assert!(out.contains("u1 INV_X1"), "{out}");
        let back = parse_def_with_library(&out, &lib, &Technology::contest()).expect("reparse");
        assert_eq!(back.cell(CellId(0)).master.as_deref(), Some("INV_X1"));
    }

    #[test]
    fn library_parse_rejects_unknown_pin() {
        use crate::lef::Library;
        let lib = Library::for_technology(&Technology::contest());
        let text = "\
DIEAREA ( 0 0 ) ( 4000 8000 ) ;
COMPONENTS 1 ;
- u1 MH_W1_H1 + PLACED ( 0 0 ) N ;
END COMPONENTS
NETS 1 ;
- n1 ( u1 CLK ) ;
END NETS
END DESIGN
";
        let r = parse_def_with_library(text, &lib, &Technology::contest());
        assert!(r.unwrap_err().to_string().contains("unknown pin"));
    }

    #[test]
    fn master_name_decoding() {
        assert_eq!(
            decode_master("MH_W3_H2_EL1_ER2_RO"),
            Some((3, 2, EdgeType(1), EdgeType(2), RailParity::Odd))
        );
        assert_eq!(
            decode_master("MH_W1_H1"),
            Some((1, 1, EdgeType(0), EdgeType(0), RailParity::Even))
        );
        assert_eq!(decode_master("INV_X4"), None);
        assert_eq!(decode_master("MH_W1_Hx"), None);
    }
}
