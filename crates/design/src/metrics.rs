//! Quality-of-result metrics: HPWL, displacement statistics, and the
//! combined legalization cost used in learning curves.
//!
//! The paper evaluates legalizers on three axes (Tables II–III): average
//! displacement, maximum displacement, and total HPWL, and plots a scalar
//! "legalization cost based on [the ICCAD-2017 metric]" during training
//! (Fig. 6). [`Qor`] bundles the three axes; [`legalization_cost`] provides
//! the scalar.

use serde::{Deserialize, Serialize};

use rlleg_geom::{Dbu, Point};

use crate::cell::CellId;
use crate::design::Design;
use crate::net::NetId;

/// Saturates a wide accumulator back into `Dbu`, counting every clamp in
/// the `design.metrics_saturated` telemetry counter. Adversarial
/// coordinates (cells parked near `i64::MAX`) must degrade to a pinned
/// extreme, not wrap or abort.
fn saturate_dbu(v: i128) -> Dbu {
    if v > Dbu::MAX as i128 || v < Dbu::MIN as i128 {
        telemetry::counter("design.metrics_saturated").add(1);
        v.clamp(Dbu::MIN as i128, Dbu::MAX as i128) as Dbu
    } else {
        v as Dbu
    }
}

/// Half-perimeter wirelength of one net in a 128-bit accumulator: spans of
/// `i64`-extreme coordinates exceed `i64`, so all arithmetic is widened
/// first and saturated once at the public boundary.
fn net_hpwl_wide(design: &Design, net: NetId) -> i128 {
    let pins = &design.net(net).pins;
    if pins.len() < 2 {
        return 0;
    }
    let mut lo = Point::new(Dbu::MAX, Dbu::MAX);
    let mut hi = Point::new(Dbu::MIN, Dbu::MIN);
    for p in pins {
        let pos = design.pin_pos(p);
        lo.x = lo.x.min(pos.x);
        lo.y = lo.y.min(pos.y);
        hi.x = hi.x.max(pos.x);
        hi.y = hi.y.max(pos.y);
    }
    (hi.x as i128 - lo.x as i128) + (hi.y as i128 - lo.y as i128)
}

/// Half-perimeter wirelength of one net given current cell positions.
///
/// Nets with fewer than two pins contribute zero. Saturates to the `Dbu`
/// extremes on overflow (see `design.metrics_saturated`).
pub fn net_hpwl(design: &Design, net: NetId) -> Dbu {
    saturate_dbu(net_hpwl_wide(design, net))
}

/// Total HPWL over all nets. Accumulated in 128 bits and saturated to the
/// `Dbu` extremes on overflow (see `design.metrics_saturated`).
pub fn total_hpwl(design: &Design) -> Dbu {
    let _t = telemetry::span("design.total_hpwl");
    saturate_dbu(
        (0..design.num_nets() as u32)
            .map(|i| net_hpwl_wide(design, NetId(i)))
            .sum(),
    )
}

/// HPWL summed over the nets incident to `cell` — the only nets whose length
/// can change when `cell` moves. Used to compute the ΔHPWL term of the
/// paper's reward (Eq. 2) without rescanning the whole netlist.
pub fn hpwl_around(design: &Design, cell: CellId) -> Dbu {
    saturate_dbu(
        design
            .nets_of(cell)
            .iter()
            .map(|&n| net_hpwl_wide(design, n))
            .sum(),
    )
}

/// Displacement and wirelength summary of a placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Qor {
    /// Mean Manhattan displacement over movable cells, in dbu.
    pub avg_displacement: f64,
    /// Maximum Manhattan displacement over movable cells, in dbu.
    pub max_displacement: Dbu,
    /// Total Manhattan displacement over movable cells, in dbu.
    pub total_displacement: Dbu,
    /// Total HPWL, in dbu.
    pub hpwl: Dbu,
    /// Number of movable cells that are not marked legalized (0 for a
    /// successful run).
    pub unplaced: usize,
    /// Median Manhattan displacement in dbu, estimated from the telemetry
    /// displacement histogram buckets (0 when there are no movable cells).
    pub disp_p50: f64,
    /// 95th-percentile Manhattan displacement in dbu (same estimate).
    pub disp_p95: f64,
}

impl Qor {
    /// Measures the current state of `design`.
    pub fn measure(design: &Design) -> Qor {
        let mut total: i128 = 0;
        let mut max = 0;
        let mut n = 0usize;
        let mut unplaced = 0usize;
        // Percentiles via the telemetry histogram machinery: same buckets as
        // the live `legalize.displacement_dbu` histogram, so table output and
        // snapshot output agree on resolution. Observations stream straight
        // into the buckets — no per-cell buffer, so a measurement's
        // allocations don't grow with the design.
        let mut hist = telemetry::HistogramSnapshot::empty(telemetry::buckets::DISPLACEMENT_DBU);
        for c in design.cells.iter().filter(|c| c.is_movable()) {
            let d = c.displacement();
            total += d as i128;
            max = max.max(d);
            n += 1;
            if !c.legalized {
                unplaced += 1;
            }
            hist.accumulate(d as f64);
        }
        let total = saturate_dbu(total);
        Qor {
            avg_displacement: if n == 0 { 0.0 } else { total as f64 / n as f64 },
            max_displacement: max,
            total_displacement: total,
            hpwl: total_hpwl(design),
            unplaced,
            disp_p50: hist.quantile(0.5),
            disp_p95: hist.quantile(0.95),
        }
    }

    /// `true` when every movable cell was committed by the legalizer.
    pub fn is_complete(&self) -> bool {
        self.unplaced == 0
    }
}

impl std::fmt::Display for Qor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "avg_disp={:.1} max_disp={} hpwl={} unplaced={}",
            self.avg_displacement, self.max_displacement, self.hpwl, self.unplaced
        )
    }
}

/// Scalar legalization cost in the spirit of the ICCAD-2017 contest metric,
/// used for learning curves (Fig. 5b / Fig. 6) and hyperparameter search.
///
/// The contest scores a legalization by its displacement statistics with a
/// penalty on the maximum, plus a wirelength regression term. We use
///
/// ```text
/// cost = (avg_disp + 0.05 · max_disp + Δhpwl / max(1, #movable)) / site_width
/// ```
///
/// where `Δhpwl = max(0, hpwl_now − hpwl_at_global_placement)`. The value is
/// dimensionless (in sites); lower is better. Failed cells are charged a
/// large constant each so failures dominate any displacement difference.
pub fn legalization_cost(design: &Design, hpwl_at_gp: Dbu) -> f64 {
    let q = Qor::measure(design);
    let n = design.num_movable().max(1) as f64;
    let dhpwl = (q.hpwl - hpwl_at_gp).max(0) as f64;
    let site = design.tech.site_width as f64;
    let base = (q.avg_displacement + 0.05 * q.max_displacement as f64 + dhpwl / n) / site;
    base + 1_000.0 * q.unplaced as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::tech::Technology;

    fn design() -> Design {
        let mut b = DesignBuilder::new("m", Technology::contest(), 50, 10);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let c = b.add_cell("c", 1, 1, Point::new(1_000, 0));
        let d = b.add_cell("d", 1, 1, Point::new(0, 4_000));
        b.add_net("n0", vec![(a, 0, 0), (c, 0, 0)]);
        b.add_net("n1", vec![(a, 0, 0), (d, 0, 0), (c, 0, 0)]);
        b.add_net("single", vec![(d, 0, 0)]);
        b.build()
    }

    #[test]
    fn net_hpwl_bounding_box() {
        let d = design();
        assert_eq!(net_hpwl(&d, NetId(0)), 1_000);
        assert_eq!(net_hpwl(&d, NetId(1)), 1_000 + 4_000);
        assert_eq!(net_hpwl(&d, NetId(2)), 0, "single-pin net");
        assert_eq!(total_hpwl(&d), 6_000);
    }

    #[test]
    fn hpwl_around_only_incident_nets() {
        let d = design();
        // cell c is on n0 and n1
        assert_eq!(hpwl_around(&d, CellId(1)), 6_000);
        // cell d is on n1 and the single-pin net
        assert_eq!(hpwl_around(&d, CellId(2)), 5_000);
    }

    #[test]
    fn qor_tracks_displacement() {
        let mut d = design();
        d.cell_mut(CellId(0)).pos = Point::new(600, 0);
        d.cell_mut(CellId(1)).pos = Point::new(1_000, 2_000);
        let q = Qor::measure(&d);
        assert_eq!(q.total_displacement, 600 + 2_000);
        assert_eq!(q.max_displacement, 2_000);
        assert!((q.avg_displacement - 2_600.0 / 3.0).abs() < 1e-9);
        assert_eq!(q.unplaced, 3, "nothing marked legalized yet");
        assert!(!q.is_complete());
    }

    #[test]
    fn qor_displacement_percentiles() {
        let mut d = design();
        d.cell_mut(CellId(0)).pos = Point::new(600, 0);
        d.cell_mut(CellId(1)).pos = Point::new(1_000, 2_000);
        let q = Qor::measure(&d);
        // Displacements are {600, 2000, 0}: the bucket estimates must be
        // ordered and bounded by the true extremes.
        assert!(q.disp_p50 <= q.disp_p95, "{} > {}", q.disp_p50, q.disp_p95);
        assert!(q.disp_p95 <= q.max_displacement as f64);
        assert!(q.disp_p50 > 0.0);
        // No movement at all: both percentiles collapse to zero.
        let clean = Qor::measure(&design());
        assert_eq!(clean.disp_p50, 0.0);
        assert_eq!(clean.disp_p95, 0.0);
    }

    #[test]
    fn adversarial_coordinates_saturate_instead_of_overflowing() {
        telemetry::enable();
        let read = || {
            telemetry::snapshot()
                .counters
                .get("design.metrics_saturated")
                .copied()
                .unwrap_or(0)
        };
        let before = read();
        let mut b = DesignBuilder::new("adv", Technology::contest(), 50, 10);
        let far = Dbu::MAX / 2;
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let c = b.add_cell("c", 1, 1, Point::new(0, 0));
        b.add_net("n0", vec![(a, 0, 0), (c, 0, 0)]);
        b.add_net("n1", vec![(a, 0, 0), (c, 0, 0)]);
        b.add_net("n2", vec![(a, 0, 0), (c, 0, 0)]);
        let mut d = b.build();
        d.cell_mut(a).pos = Point::new(-far, -far);
        d.cell_mut(c).pos = Point::new(far, far);
        // A single net already spans ~2·i64::MAX; every aggregate can only
        // be reported pinned at the Dbu extreme, never wrapped.
        assert_eq!(net_hpwl(&d, NetId(0)), Dbu::MAX);
        assert_eq!(total_hpwl(&d), Dbu::MAX);
        assert_eq!(hpwl_around(&d, a), Dbu::MAX);
        let q = Qor::measure(&d);
        assert_eq!(q.hpwl, Dbu::MAX);
        // Two cells each displaced by ~i64::MAX sites: the total saturates.
        assert_eq!(q.total_displacement, Dbu::MAX);
        assert!(q.avg_displacement > 0.0);
        assert!(read() > before, "saturation must be counted in telemetry");
    }

    #[test]
    fn cost_penalizes_failures() {
        let mut d = design();
        let gp_hpwl = total_hpwl(&d);
        let incomplete = legalization_cost(&d, gp_hpwl);
        for id in [CellId(0), CellId(1), CellId(2)] {
            d.cell_mut(id).legalized = true;
        }
        let complete = legalization_cost(&d, gp_hpwl);
        assert!(incomplete > complete + 2_000.0);
        assert!(
            complete.abs() < 1e-9,
            "no displacement, no Δhpwl => zero cost"
        );
    }

    #[test]
    fn cost_ignores_hpwl_improvements() {
        let mut d = design();
        for id in [CellId(0), CellId(1), CellId(2)] {
            d.cell_mut(id).legalized = true;
        }
        // Move c closer to a: HPWL decreases, Δhpwl clamps at 0.
        d.cell_mut(CellId(1)).pos = Point::new(200, 0);
        let gp_hpwl = 6_000;
        let cost = legalization_cost(&d, gp_hpwl);
        let q = Qor::measure(&d);
        let site = d.tech.site_width as f64;
        let expect = (q.avg_displacement + 0.05 * q.max_displacement as f64) / site;
        assert!((cost - expect).abs() < 1e-9);
    }
}
