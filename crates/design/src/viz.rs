//! SVG rendering of placements.
//!
//! Produces self-contained SVG pictures of a [`Design`]: rows, macros,
//! fence regions, cells colored by height, and optional displacement
//! vectors from the global placement — the pictures the paper's figures
//! are built from, for any design in this workspace.
//!
//! ```
//! use rlleg_design::{viz, DesignBuilder, Technology};
//! use rlleg_geom::Point;
//!
//! let mut b = DesignBuilder::new("pic", Technology::contest(), 10, 4);
//! b.add_cell("a", 2, 1, Point::new(400, 0));
//! let svg = viz::render_svg(&b.build(), &viz::SvgOptions::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("</svg>"));
//! ```

use std::fmt::Write as _;

use crate::design::Design;

/// Rendering options for [`render_svg`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the core aspect).
    pub width_px: f64,
    /// Draw row boundaries.
    pub rows: bool,
    /// Draw displacement vectors from `gp_pos` to `pos`.
    pub displacement_vectors: bool,
    /// Label cells with their instance names (legible only for small
    /// designs).
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 800.0,
            rows: true,
            displacement_vectors: false,
            labels: false,
        }
    }
}

/// Fill colors by cell height (1–4 rows), then macros and fences.
const HEIGHT_COLORS: [&str; 4] = ["#7eb8da", "#8fd694", "#f2c572", "#e88b8b"];
const MACRO_COLOR: &str = "#6b6b76";
const FENCE_COLOR: &str = "#b78fd6";

/// Renders the design's current placement as an SVG document.
pub fn render_svg(design: &Design, opts: &SvgOptions) -> String {
    let core = design.core;
    let scale = opts.width_px / core.width().max(1) as f64;
    let w = opts.width_px;
    let h = core.height() as f64 * scale;
    // SVG y grows downward; flip via y' = h - (y - lo.y)*scale.
    let tx = |x: i64| (x - core.lo.x) as f64 * scale;
    let ty = |y: i64| h - (y - core.lo.y) as f64 * scale;

    let mut s = String::new();
    let _ = write!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" viewBox=\"0 0 {w:.2} {h:.2}\">"
    );
    let _ = write!(s, "<rect x=\"0\" y=\"0\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"#fbfbf8\" stroke=\"#333\"/>");

    if opts.rows {
        let rh = design.tech.row_height;
        let mut y = core.lo.y + rh;
        while y < core.hi.y {
            let yy = ty(y);
            let _ = write!(
                s,
                "<line x1=\"0\" y1=\"{yy:.2}\" x2=\"{w:.2}\" y2=\"{yy:.2}\" stroke=\"#e4e4de\" stroke-width=\"0.5\"/>"
            );
            y += rh;
        }
    }

    // Fences under everything else.
    for region in &design.regions {
        for r in &region.rects {
            let _ = write!(
                s,
                "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{FENCE_COLOR}\" fill-opacity=\"0.18\" stroke=\"{FENCE_COLOR}\" stroke-dasharray=\"4 2\"/>",
                tx(r.lo.x),
                ty(r.hi.y),
                r.width() as f64 * scale,
                r.height() as f64 * scale
            );
        }
    }

    let rh = design.tech.row_height;
    for id in design.cell_ids() {
        let c = design.cell(id);
        let r = c.rect(rh);
        let (fill, opacity) = if c.fixed {
            (MACRO_COLOR, 0.9)
        } else {
            (
                HEIGHT_COLORS[usize::from(c.height_rows.clamp(1, 4)) - 1],
                if c.legalized { 0.9 } else { 0.55 },
            )
        };
        let _ = write!(
            s,
            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" fill=\"{fill}\" fill-opacity=\"{opacity}\" stroke=\"#444\" stroke-width=\"0.4\"/>",
            tx(r.lo.x),
            ty(r.hi.y),
            r.width() as f64 * scale,
            r.height() as f64 * scale
        );
        if opts.labels && !c.fixed {
            let _ = write!(
                s,
                "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"{:.1}\" fill=\"#222\">{}</text>",
                tx(r.lo.x) + 1.0,
                ty(r.lo.y) - 1.0,
                (r.height() as f64 * scale * 0.5).min(10.0),
                c.name
            );
        }
    }

    if opts.displacement_vectors {
        for id in design.cell_ids() {
            let c = design.cell(id);
            if c.fixed || c.displacement() == 0 {
                continue;
            }
            let from = c.gp_rect(rh).center();
            let to = c.rect(rh).center();
            let _ = write!(
                s,
                "<line x1=\"{:.2}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\" stroke=\"#d03a3a\" stroke-width=\"0.7\" stroke-opacity=\"0.7\"/>",
                tx(from.x),
                ty(from.y),
                tx(to.x),
                ty(to.y)
            );
        }
    }

    s.push_str("</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignBuilder, Technology};
    use rlleg_geom::{Point, Rect};

    fn design() -> Design {
        let mut b = DesignBuilder::new("viz", Technology::contest(), 20, 6);
        let a = b.add_cell("cell_a", 2, 1, Point::new(0, 0));
        b.add_cell("cell_b", 1, 3, Point::new(2_000, 2_000));
        b.add_fixed_cell("big_macro", 4, 2, Point::new(1_000, 8_000));
        let r = b.add_region("fence0", vec![Rect::new(2_000, 0, 4_000, 4_000)]);
        b.assign_region(a, r);
        b.build()
    }

    #[test]
    fn renders_all_elements() {
        let d = design();
        let svg = render_svg(&d, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One background + fence + 3 cells = at least 5 rects.
        assert!(svg.matches("<rect").count() >= 5);
        assert!(svg.contains(MACRO_COLOR), "macro drawn");
        assert!(svg.contains(FENCE_COLOR), "fence drawn");
        assert!(svg.contains(HEIGHT_COLORS[0]), "single-height color");
        assert!(svg.contains(HEIGHT_COLORS[2]), "triple-height color");
    }

    #[test]
    fn displacement_vectors_follow_moves() {
        let mut d = design();
        let base = render_svg(
            &d,
            &SvgOptions {
                displacement_vectors: true,
                ..SvgOptions::default()
            },
        );
        let lines_before = base.matches("<line").count();
        d.cell_mut(crate::CellId(0)).pos = Point::new(600, 2_000);
        let moved = render_svg(
            &d,
            &SvgOptions {
                displacement_vectors: true,
                ..SvgOptions::default()
            },
        );
        assert_eq!(moved.matches("<line").count(), lines_before + 1);
    }

    #[test]
    fn labels_optional() {
        let d = design();
        let plain = render_svg(&d, &SvgOptions::default());
        assert!(!plain.contains("<text"));
        let labeled = render_svg(
            &d,
            &SvgOptions {
                labels: true,
                ..SvgOptions::default()
            },
        );
        assert!(labeled.contains(">cell_a</text>"));
        assert!(!labeled.contains(">big_macro</text>"), "macros unlabeled");
    }

    #[test]
    fn aspect_ratio_preserved() {
        let d = design(); // 4000 x 12000 core
        let svg = render_svg(
            &d,
            &SvgOptions {
                width_px: 400.0,
                ..SvgOptions::default()
            },
        );
        assert!(svg.contains("width=\"400\""));
        assert!(svg.contains("height=\"1200\""));
    }
}
