use serde::{Deserialize, Serialize};

use rlleg_geom::{Dbu, Point, Rect};

use crate::cell::{Cell, CellId};
use crate::net::{Net, NetId, Pin};
use crate::tech::Technology;

/// Identifier of a fence region inside one [`Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u16);

impl RegionId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A fence region: cells assigned to the region must be placed entirely
/// inside its rectangles; all other cells must stay outside.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Region name.
    pub name: String,
    /// The rectangles making up the region (axis-aligned, may be disjoint).
    pub rects: Vec<Rect>,
}

impl Region {
    /// `true` when `r` lies entirely inside one of the region rectangles.
    ///
    /// Rectangles of real fence regions are site-aligned and non-adjacent in
    /// the benchmarks we generate, so per-rect containment is exact.
    pub fn contains(&self, r: &Rect) -> bool {
        self.rects.iter().any(|fr| fr.contains(r))
    }

    /// `true` when `r` overlaps any of the region rectangles.
    pub fn overlaps(&self, r: &Rect) -> bool {
        self.rects.iter().any(|fr| fr.overlaps(r))
    }
}

/// A placement design: technology, core area, cells, nets, and fences.
///
/// Construct through [`DesignBuilder`](crate::DesignBuilder), the DEF reader
/// ([`def::parse_def`](crate::def::parse_def)), or the benchmark generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Placement technology.
    pub tech: Technology,
    /// Core (placeable) area; rows span its full width.
    pub core: Rect,
    /// All cells, movable and fixed. Indexed by [`CellId`].
    pub cells: Vec<Cell>,
    /// All nets. Indexed by [`NetId`].
    pub nets: Vec<Net>,
    /// Fence regions. Indexed by [`RegionId`].
    pub regions: Vec<Region>,
    /// Maximum allowed displacement per cell in dbu (a design constraint of
    /// the ICCAD-2017 problem); `None` means unconstrained.
    pub max_displacement: Option<Dbu>,
    /// Net membership per cell, kept in sync by the builder/readers.
    pub(crate) cell_nets: Vec<Vec<NetId>>,
}

impl Design {
    /// Number of cells (movable + fixed).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of movable cells.
    pub fn num_movable(&self) -> usize {
        self.cells.iter().filter(|c| c.is_movable()).count()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The cell with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Mutable access to the cell with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.index()]
    }

    /// The net with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The region with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Ids of all cells.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Ids of all movable cells.
    pub fn movable_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cell_ids().filter(|&id| self.cell(id).is_movable())
    }

    /// Ids of all fixed cells (macros / obstacles).
    pub fn fixed_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cell_ids().filter(|&id| !self.cell(id).is_movable())
    }

    /// Nets incident to `cell`.
    pub fn nets_of(&self, cell: CellId) -> &[NetId] {
        &self.cell_nets[cell.index()]
    }

    /// Number of placement rows in the core.
    pub fn num_rows(&self) -> i64 {
        self.core.height() / self.tech.row_height
    }

    /// Number of placement sites across the core width.
    pub fn num_sites_x(&self) -> i64 {
        self.core.width() / self.tech.site_width
    }

    /// Row index of a y coordinate (relative to the core origin; may be out
    /// of range for positions outside the core).
    pub fn row_of(&self, y: Dbu) -> i64 {
        (y - self.core.lo.y).div_euclid(self.tech.row_height)
    }

    /// Site index of an x coordinate (relative to the core origin).
    pub fn site_of(&self, x: Dbu) -> i64 {
        (x - self.core.lo.x).div_euclid(self.tech.site_width)
    }

    /// Absolute position of pin `pin` given current cell positions.
    pub fn pin_pos(&self, pin: &Pin) -> Point {
        match pin {
            Pin::OnCell { cell, offset } => self.cell(*cell).pos + *offset,
            Pin::Fixed(p) => *p,
        }
    }

    /// Total movable-cell area divided by placeable area (core minus fixed
    /// cells): the design "density"/utilization reported in Tables II–III.
    pub fn density(&self) -> f64 {
        let movable: i64 = self
            .cells
            .iter()
            .filter(|c| c.is_movable())
            .map(|c| c.area(self.tech.row_height))
            .sum();
        let fixed: i64 = self
            .cells
            .iter()
            .filter(|c| !c.is_movable())
            .map(|c| {
                c.rect(self.tech.row_height)
                    .intersection(&self.core)
                    .map_or(0, |r| r.area())
            })
            .sum();
        let placeable = (self.core.area() - fixed).max(1);
        movable as f64 / placeable as f64
    }

    /// Restores every movable cell to its global-placement position and
    /// clears legalization flags. Lets one design be legalized repeatedly
    /// (e.g. the 1 000 random orders of Fig. 1).
    pub fn reset_to_global_placement(&mut self) {
        for c in &mut self.cells {
            if c.is_movable() {
                c.pos = c.gp_pos;
                c.legalized = false;
            }
        }
    }

    /// Serializes the design (cells, nets, fences, technology, positions)
    /// to JSON — the workspace's native checkpoint format alongside the
    /// DEF subset.
    ///
    /// # Errors
    ///
    /// Returns any underlying `serde_json` error.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a design from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns any underlying `serde_json` error.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Builds the struct-of-arrays snapshot of the immutable hot cell
    /// attributes (see [`HotCells`](crate::HotCells)) that the legalizer's
    /// inner loops read instead of striding over [`Cell`] structs.
    pub fn hot_cells(&self) -> crate::HotCells {
        crate::HotCells::new(self)
    }

    /// The number of Gcells per axis the paper would use for this design:
    /// `ceil(dim / 200_000)` capped at 5 (Sec. III-E-1).
    pub fn default_gcell_grid(&self) -> (usize, usize) {
        let per_axis = |dim: Dbu| -> usize { ((dim + 199_999) / 200_000).clamp(1, 5) as usize };
        (per_axis(self.core.width()), per_axis(self.core.height()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    fn small() -> Design {
        let mut b = DesignBuilder::new("t", Technology::contest(), 10, 4);
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        let c = b.add_cell("c", 2, 2, Point::new(400, 0));
        b.add_fixed_cell("m", 2, 2, Point::new(1_000, 0));
        b.add_net("n0", vec![(a, 100, 100), (c, 0, 0)]);
        b.build()
    }

    #[test]
    fn counts_and_grid() {
        let d = small();
        assert_eq!(d.num_cells(), 3);
        assert_eq!(d.num_movable(), 2);
        assert_eq!(d.num_nets(), 1);
        assert_eq!(d.num_rows(), 4);
        assert_eq!(d.num_sites_x(), 10);
        assert_eq!(d.row_of(2_000), 1);
        assert_eq!(d.site_of(399), 1);
    }

    #[test]
    fn adjacency() {
        let d = small();
        assert_eq!(d.nets_of(CellId(0)), &[NetId(0)]);
        assert_eq!(d.nets_of(CellId(1)), &[NetId(0)]);
        assert!(d.nets_of(CellId(2)).is_empty());
    }

    #[test]
    fn pin_positions_follow_cells() {
        let mut d = small();
        let p0 = d.nets[0].pins[0];
        assert_eq!(d.pin_pos(&p0), Point::new(100, 100));
        d.cell_mut(CellId(0)).pos = Point::new(200, 2_000);
        assert_eq!(d.pin_pos(&p0), Point::new(300, 2_100));
    }

    #[test]
    fn density_excludes_fixed_area() {
        let d = small();
        // movable area: 1x1 + 2x2 rows = 200*2000 + 400*4000 = 2_000_000
        // core: 2000 x 8000 = 16_000_000 ; fixed: 400*4000 = 1_600_000
        let expect = 2_000_000.0 / (16_000_000.0 - 1_600_000.0);
        assert!((d.density() - expect).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_gp() {
        let mut d = small();
        d.cell_mut(CellId(0)).pos = Point::new(999, 999);
        d.cell_mut(CellId(0)).legalized = true;
        d.reset_to_global_placement();
        assert_eq!(d.cell(CellId(0)).pos, d.cell(CellId(0)).gp_pos);
        assert!(!d.cell(CellId(0)).legalized);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut d = small();
        d.cell_mut(CellId(0)).pos = Point::new(200, 2_000);
        d.cell_mut(CellId(0)).legalized = true;
        let json = d.to_json().expect("serialize");
        let back = Design::from_json(&json).expect("deserialize");
        assert_eq!(back.name, d.name);
        assert_eq!(back.cells, d.cells);
        assert_eq!(back.nets, d.nets);
        assert_eq!(back.regions, d.regions);
        assert_eq!(
            back.nets_of(CellId(0)),
            d.nets_of(CellId(0)),
            "adjacency survives"
        );
    }

    #[test]
    fn gcell_grid_caps_at_five() {
        let d = small();
        assert_eq!(d.default_gcell_grid(), (1, 1));
        let mut b = DesignBuilder::new("big", Technology::contest(), 6_000, 600);
        b.add_cell("a", 1, 1, Point::new(0, 0));
        let big = b.build(); // 1.2mm x 1.2mm
        assert_eq!(big.default_gcell_grid(), (5, 5));
    }
}
