//! Mixed-height standard-cell design model for the RL-Legalizer reproduction.
//!
//! This crate is the substrate every other crate builds on. It models the
//! part of a physical design that legalization cares about:
//!
//! - [`Technology`] — placement site geometry, row height, power-rail parity
//!   and the edge-type spacing table,
//! - [`Design`] — core area, rows, mixed-height [`Cell`]s (movable and
//!   fixed/macro), [`Net`]s with pin offsets, and fence [`Region`]s,
//! - [`metrics`] — HPWL, displacement statistics, and the combined
//!   legalization-cost scalar used by the paper's learning curves,
//! - [`legality`] — a full design-rule checker (overlap, site/row alignment,
//!   rail parity, edge spacing, fences, max displacement) used to validate
//!   every legalizer output in tests and benches,
//! - [`def`] / [`lef`] — pragmatic DEF- and LEF-subset readers and writers
//!   so designs round-trip through the industry exchange formats the
//!   paper's flow consumes.
//!
//! # Example
//!
//! ```
//! use rlleg_design::{DesignBuilder, Technology};
//! use rlleg_geom::Point;
//!
//! let tech = Technology::nangate45();
//! let mut b = DesignBuilder::new("tiny", tech, 20, 8); // 20 sites x 8 rows
//! let a = b.add_cell("a", 2, 1, Point::new(95, 70));
//! let c = b.add_cell("c", 3, 2, Point::new(800, 1500));
//! b.add_net("n1", vec![(a, 0, 0), (c, 0, 0)]);
//! let design = b.build();
//! assert_eq!(design.num_cells(), 2);
//! assert!(design.cell(a).is_movable());
//! ```

#![warn(missing_docs)]

mod builder;
mod cell;
pub mod def;
mod design;
pub mod fsio;
pub mod lef;
pub mod legality;
pub mod metrics;
mod net;
mod soa;
mod tech;
pub mod viz;

pub use builder::DesignBuilder;
pub use cell::{Cell, CellId, EdgeType, RailParity};
pub use design::{Design, Region, RegionId};
pub use net::{Net, NetId, Pin};
pub use soa::HotCells;
pub use tech::Technology;
