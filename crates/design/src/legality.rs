//! A full legality (design-rule) checker for mixed-height placements.
//!
//! The paper "first checked the legality of our legalization results and
//! ensured that no design rule violations occur for all benchmarks; the
//! design rules include placement overlap, edge spacing, power alignment,
//! placement sites, and region constraints." This module is that checker:
//! every legalizer output in the workspace's tests and benches is validated
//! by [`check`].

use rlleg_geom::{rtree::RTree, Dbu};

use crate::cell::CellId;
use crate::design::{Design, RegionId};

/// One design-rule violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two cells' footprints overlap.
    Overlap {
        /// First cell.
        a: CellId,
        /// Second cell.
        b: CellId,
    },
    /// Cell x is not aligned to a placement site.
    OffSite {
        /// Offending cell.
        cell: CellId,
    },
    /// Cell y is not aligned to a row boundary.
    OffRow {
        /// Offending cell.
        cell: CellId,
    },
    /// Cell extends beyond the core area.
    OutsideCore {
        /// Offending cell.
        cell: CellId,
    },
    /// Even-height cell sits on a row with the wrong power-rail parity.
    RailParity {
        /// Offending cell.
        cell: CellId,
    },
    /// Horizontal gap between two cells violates the edge-spacing table.
    EdgeSpacing {
        /// Cell on the left.
        left: CellId,
        /// Cell on the right.
        right: CellId,
        /// Required gap in dbu.
        required: Dbu,
        /// Actual gap in dbu.
        actual: Dbu,
    },
    /// Cell assigned to a fence region is not fully inside it.
    FenceInside {
        /// Offending cell.
        cell: CellId,
    },
    /// Cell not assigned to a region overlaps that region.
    FenceOutside {
        /// Offending cell.
        cell: CellId,
        /// Violated region.
        region: RegionId,
    },
    /// Cell moved farther than the design's maximum-displacement constraint.
    MaxDisplacement {
        /// Offending cell.
        cell: CellId,
        /// Actual displacement in dbu.
        displacement: Dbu,
        /// The constraint in dbu.
        limit: Dbu,
    },
    /// Movable cell was never committed by the legalizer.
    NotLegalized {
        /// Offending cell.
        cell: CellId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Overlap { a, b } => write!(f, "cells {a} and {b} overlap"),
            Violation::OffSite { cell } => write!(f, "cell {cell} off placement site"),
            Violation::OffRow { cell } => write!(f, "cell {cell} off row boundary"),
            Violation::OutsideCore { cell } => write!(f, "cell {cell} outside core"),
            Violation::RailParity { cell } => write!(f, "cell {cell} rail parity mismatch"),
            Violation::EdgeSpacing {
                left,
                right,
                required,
                actual,
            } => write!(
                f,
                "edge spacing between {left} and {right}: need {required}, have {actual}"
            ),
            Violation::FenceInside { cell } => write!(f, "cell {cell} escapes its fence"),
            Violation::FenceOutside { cell, region } => {
                write!(f, "cell {cell} intrudes into fence {region}")
            }
            Violation::MaxDisplacement {
                cell,
                displacement,
                limit,
            } => {
                write!(f, "cell {cell} displaced {displacement} > limit {limit}")
            }
            Violation::NotLegalized { cell } => write!(f, "cell {cell} not legalized"),
        }
    }
}

/// Checks every placement rule on the current cell positions and returns all
/// violations (empty = legal). Set `require_committed` to also flag movable
/// cells whose `legalized` flag is unset — benches use this to detect
/// legalization failures.
pub fn check(design: &Design, require_committed: bool) -> Vec<Violation> {
    let _t = telemetry::span("design.drc_check");
    let mut out = Vec::new();
    let rh = design.tech.row_height;
    let sw = design.tech.site_width;

    // Alignment, core containment, parity, fences, displacement.
    for id in design.cell_ids() {
        let c = design.cell(id);
        if c.fixed {
            continue;
        }
        if require_committed && !c.legalized {
            out.push(Violation::NotLegalized { cell: id });
        }
        let r = c.rect(rh);
        // `rem_euclid` keeps the lattice test correct for cells left of /
        // below the core origin: the remainder is always in `0..sw`, so a
        // negative offset that is not a whole number of sites still fires.
        if (c.pos.x - design.core.lo.x).rem_euclid(sw) != 0 {
            out.push(Violation::OffSite { cell: id });
        }
        if (c.pos.y - design.core.lo.y).rem_euclid(rh) != 0 {
            out.push(Violation::OffRow { cell: id });
        }
        if !design.core.contains(&r) {
            out.push(Violation::OutsideCore { cell: id });
        }
        if c.is_rail_constrained() && !c.rail.allows_row(design.row_of(c.pos.y)) {
            out.push(Violation::RailParity { cell: id });
        }
        match c.region {
            Some(reg) => {
                if !design.region(reg).contains(&r) {
                    out.push(Violation::FenceInside { cell: id });
                }
            }
            None => {
                for (ri, region) in design.regions.iter().enumerate() {
                    if region.overlaps(&r) {
                        out.push(Violation::FenceOutside {
                            cell: id,
                            region: RegionId(ri as u16),
                        });
                    }
                }
            }
        }
        if let Some(limit) = design.max_displacement {
            let d = c.displacement();
            if d > limit {
                out.push(Violation::MaxDisplacement {
                    cell: id,
                    displacement: d,
                    limit,
                });
            }
        }
    }

    // Overlaps via an R-tree over every footprint (movable and fixed).
    let tree = RTree::bulk_load(
        design
            .cell_ids()
            .map(|id| (design.cell(id).rect(rh), id))
            .collect(),
    );
    for id in design.cell_ids() {
        let c = design.cell(id);
        let r = c.rect(rh);
        for (_, &other) in tree.query(&r) {
            // Report each unordered pair once; skip fixed-fixed pairs (macro
            // overlap is an input property, not a legalization failure).
            if other > id && !(c.fixed && design.cell(other).fixed) {
                out.push(Violation::Overlap { a: id, b: other });
            }
        }
    }

    // Edge spacing: per row, examine horizontally adjacent pairs.
    out.extend(check_edge_spacing(design));
    if !telemetry::disabled() {
        telemetry::counter("design.drc.checks").inc();
        telemetry::counter("design.drc.cells_checked").add(design.num_cells() as u64);
        telemetry::counter("design.drc.violations").add(out.len() as u64);
    }
    out
}

fn check_edge_spacing(design: &Design) -> Vec<Violation> {
    let mut out = Vec::new();
    let rh = design.tech.row_height;
    let rows = design.num_rows().max(0) as usize;
    let mut per_row: Vec<Vec<(Dbu, Dbu, CellId)>> = vec![Vec::new(); rows];
    for id in design.cell_ids() {
        let c = design.cell(id);
        let r = c.rect(rh);
        let first = design.row_of(r.lo.y).max(0);
        // A cell on row boundary [y, y+h) covers rows first..first+height.
        let last = design.row_of(r.hi.y - 1).min(rows as i64 - 1);
        for row in first..=last {
            per_row[row as usize].push((r.lo.x, r.hi.x, id));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for row in &mut per_row {
        row.sort_unstable();
        for w in row.windows(2) {
            let (_, ax_hi, a) = w[0];
            let (bx_lo, _, b) = w[1];
            let gap = bx_lo - ax_hi;
            if gap < 0 {
                continue; // overlap, reported separately
            }
            let ca = design.cell(a);
            let cb = design.cell(b);
            let required = design.tech.edge_spacing(ca.edge_right, cb.edge_left);
            if gap < required && seen.insert((a, b)) {
                out.push(Violation::EdgeSpacing {
                    left: a,
                    right: b,
                    required,
                    actual: gap,
                });
            }
        }
    }
    out
}

/// `true` when the placement has no violations (committed flags included).
pub fn is_legal(design: &Design) -> bool {
    check(design, true).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::cell::{EdgeType, RailParity};
    use crate::tech::Technology;
    use rlleg_geom::Point;

    fn base() -> DesignBuilder {
        DesignBuilder::new("t", Technology::contest(), 20, 6)
    }

    fn commit_all(d: &mut Design) {
        for i in 0..d.cells.len() {
            d.cells[i].legalized = true;
        }
    }

    #[test]
    fn clean_design_is_legal() {
        let mut b = base();
        b.add_cell("a", 2, 1, Point::new(0, 0));
        b.add_cell("b", 2, 2, Point::new(400, 0));
        let mut d = b.build();
        commit_all(&mut d);
        assert!(is_legal(&d), "{:?}", check(&d, true));
    }

    #[test]
    fn detects_overlap_once_per_pair() {
        let mut b = base();
        b.add_cell("a", 3, 1, Point::new(0, 0));
        b.add_cell("b", 3, 1, Point::new(400, 0));
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert_eq!(
            v,
            vec![Violation::Overlap {
                a: CellId(0),
                b: CellId(1)
            }]
        );
    }

    #[test]
    fn fixed_fixed_overlap_is_not_reported() {
        let mut b = base();
        b.add_fixed_cell("m1", 3, 2, Point::new(0, 0));
        b.add_fixed_cell("m2", 3, 2, Point::new(200, 0));
        let d = b.build();
        assert!(check(&d, false).is_empty());
    }

    #[test]
    fn movable_fixed_overlap_is_reported() {
        let mut b = base();
        b.add_cell("a", 3, 1, Point::new(0, 0));
        b.add_fixed_cell("m", 3, 2, Point::new(200, 0));
        let mut d = b.build();
        commit_all(&mut d);
        assert_eq!(check(&d, true).len(), 1);
    }

    #[test]
    fn detects_misalignment_and_core_escape() {
        let mut b = base();
        b.add_cell("a", 1, 1, Point::new(37, 0));
        b.add_cell("b", 1, 1, Point::new(0, 1_234));
        b.add_cell("c", 2, 1, Point::new(3_800, 0)); // 2 sites wide at last site
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert!(v.contains(&Violation::OffSite { cell: CellId(0) }));
        assert!(v.contains(&Violation::OffRow { cell: CellId(1) }));
        assert!(v.contains(&Violation::OutsideCore { cell: CellId(2) }));
    }

    #[test]
    fn negative_misaligned_positions_fire_offsite_offrow() {
        // Left of / below the core origin with a non-lattice offset: the
        // euclidean remainder is nonzero, so OffSite/OffRow must fire in
        // addition to OutsideCore.
        let mut b = base();
        b.add_cell("a", 1, 1, Point::new(-37, 0));
        b.add_cell("b", 1, 1, Point::new(0, -1_234));
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert!(v.contains(&Violation::OffSite { cell: CellId(0) }));
        assert!(v.contains(&Violation::OutsideCore { cell: CellId(0) }));
        assert!(v.contains(&Violation::OffRow { cell: CellId(1) }));
        assert!(v.contains(&Violation::OutsideCore { cell: CellId(1) }));
    }

    #[test]
    fn negative_aligned_positions_fire_outside_core_only() {
        // A whole number of sites/rows left of / below the origin is still
        // on the lattice: OutsideCore only, never OffSite/OffRow.
        let mut b = base();
        b.add_cell("a", 1, 1, Point::new(-200, 0));
        b.add_cell("b", 1, 1, Point::new(0, -2_000));
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert_eq!(
            v,
            vec![
                Violation::OutsideCore { cell: CellId(0) },
                Violation::OutsideCore { cell: CellId(1) },
            ]
        );
    }

    #[test]
    fn detects_rail_parity() {
        let mut b = base();
        let a = b.add_cell("a", 1, 2, Point::new(0, 2_000)); // row 1
        b.set_rail(a, RailParity::Even);
        let mut d = b.build();
        commit_all(&mut d);
        assert!(check(&d, true).contains(&Violation::RailParity { cell: a }));
        // Odd parity accepts row 1.
        d.cell_mut(a).rail = RailParity::Odd;
        assert!(is_legal(&d));
    }

    #[test]
    fn odd_height_cells_ignore_parity() {
        let mut b = base();
        let a = b.add_cell("a", 1, 3, Point::new(0, 2_000));
        b.set_rail(a, RailParity::Even);
        let mut d = b.build();
        commit_all(&mut d);
        assert!(is_legal(&d));
    }

    #[test]
    fn detects_edge_spacing() {
        let mut b = base();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("b", 2, 1, Point::new(600, 0)); // 1-site gap
        b.set_edges(a, EdgeType(2), EdgeType(2));
        b.set_edges(c, EdgeType(2), EdgeType(2));
        let mut d = b.build();
        commit_all(&mut d);
        // type2-type2 requires 2 sites = 400; gap is 200.
        let v = check(&d, true);
        assert_eq!(
            v,
            vec![Violation::EdgeSpacing {
                left: a,
                right: c,
                required: 400,
                actual: 200
            }]
        );
        // Widen the gap to 2 sites: legal.
        d.cell_mut(c).pos = Point::new(800, 0);
        assert!(is_legal(&d));
    }

    #[test]
    fn edge_spacing_only_on_shared_rows() {
        let mut b = base();
        let a = b.add_cell("a", 2, 1, Point::new(0, 0));
        let c = b.add_cell("b", 2, 1, Point::new(600, 2_000)); // different row
        b.set_edges(a, EdgeType(2), EdgeType(2));
        b.set_edges(c, EdgeType(2), EdgeType(2));
        let mut d = b.build();
        commit_all(&mut d);
        assert!(is_legal(&d));
    }

    #[test]
    fn off_core_macro_below_core_creates_no_row0_adjacency() {
        // A fixed macro entirely below the core (rect [-4000, 0) in y) must
        // not be bucketed into row 0: `row_of(hi.y - 1)` is negative, so the
        // clamped row range is empty.
        let mut b = base();
        let m = b.add_fixed_cell("m", 2, 2, Point::new(0, -4_000));
        let a = b.add_cell("a", 2, 1, Point::new(600, 0));
        b.set_edges(m, EdgeType(2), EdgeType(2));
        b.set_edges(a, EdgeType(2), EdgeType(2));
        let mut d = b.build();
        commit_all(&mut d);
        // Gap on row 0 would be 200 < 400 if the macro were (wrongly)
        // bucketed there.
        assert!(is_legal(&d), "{:?}", check(&d, true));
    }

    #[test]
    fn macro_straddling_core_bottom_pairs_with_row0_cells() {
        // A fixed macro straddling y = 0 (rect [-2000, 2000)) occupies row 0
        // and must participate in edge spacing against row-0 cells.
        let mut b = base();
        let m = b.add_fixed_cell("m", 2, 2, Point::new(0, -2_000));
        let a = b.add_cell("a", 2, 1, Point::new(600, 0));
        b.set_edges(m, EdgeType(2), EdgeType(2));
        b.set_edges(a, EdgeType(2), EdgeType(2));
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert!(
            v.contains(&Violation::EdgeSpacing {
                left: m,
                right: a,
                required: 400,
                actual: 200
            }),
            "{v:?}"
        );
    }

    #[test]
    fn multi_row_adjacent_pair_reported_once() {
        // Two double-height cells adjacent on rows 0 and 1: the pair is
        // deduplicated to a single EdgeSpacing violation.
        let mut b = base();
        let a = b.add_cell("a", 2, 2, Point::new(0, 0));
        let c = b.add_cell("b", 2, 2, Point::new(600, 0));
        b.set_edges(a, EdgeType(2), EdgeType(2));
        b.set_edges(c, EdgeType(2), EdgeType(2));
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert_eq!(
            v,
            vec![Violation::EdgeSpacing {
                left: a,
                right: c,
                required: 400,
                actual: 200
            }]
        );
    }

    #[test]
    fn detects_fence_violations() {
        let mut b = base();
        let fenced = b.add_cell("in", 1, 1, Point::new(3_000, 0)); // outside region
        let intruder = b.add_cell("out", 1, 1, Point::new(200, 0)); // inside region
        let r = b.add_region("f", vec![rlleg_geom::Rect::new(0, 0, 2_000, 4_000)]);
        b.assign_region(fenced, r);
        let mut d = b.build();
        commit_all(&mut d);
        let v = check(&d, true);
        assert!(v.contains(&Violation::FenceInside { cell: fenced }));
        assert!(v.contains(&Violation::FenceOutside {
            cell: intruder,
            region: r
        }));
        // Fix both.
        d.cell_mut(fenced).pos = Point::new(0, 0);
        d.cell_mut(intruder).pos = Point::new(2_000, 0);
        assert!(is_legal(&d));
    }

    #[test]
    fn detects_max_displacement() {
        let mut b = base();
        let a = b.add_cell("a", 1, 1, Point::new(0, 0));
        b.max_displacement(1_000);
        let mut d = b.build();
        commit_all(&mut d);
        d.cell_mut(a).pos = Point::new(1_200, 0);
        assert_eq!(
            check(&d, true),
            vec![Violation::MaxDisplacement {
                cell: a,
                displacement: 1_200,
                limit: 1_000
            }]
        );
    }

    #[test]
    fn uncommitted_cells_flagged_only_when_required() {
        let mut b = base();
        b.add_cell("a", 1, 1, Point::new(0, 0));
        let d = b.build();
        assert!(check(&d, false).is_empty());
        assert_eq!(
            check(&d, true),
            vec![Violation::NotLegalized { cell: CellId(0) }]
        );
    }
}
