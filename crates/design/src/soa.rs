//! Struct-of-arrays snapshot of the immutable per-cell hot attributes.
//!
//! Legalization's inner loops (size-ordered sort keys, diamond-search shape
//! parameters, phase-2 merge bookkeeping) only read a handful of *immutable*
//! cell fields — width, height, area, global-placement position, rail/fence
//! flags. Pulling them out of the pointer-rich [`Cell`](crate::Cell) structs
//! (which also carry a heap-allocated name and master string) into dense
//! parallel arrays lets million-cell scans walk contiguous memory instead of
//! striding over ~100-byte structs.
//!
//! [`HotCells`] is a *snapshot*: build it once per run with
//! [`Design::hot_cells`] and share it freely across threads (everything it
//! holds is immutable for the lifetime of a legalization run — only `pos`
//! and `legalized` change, and those stay on the [`Cell`](crate::Cell)).

use rlleg_geom::{Dbu, Point};

use crate::cell::{CellId, EdgeType, RailParity};
use crate::design::{Design, RegionId};

/// Bit of [`HotCells::flags`]: the cell is fixed (macro / obstacle).
pub const FLAG_FIXED: u8 = 1;
/// Bit of [`HotCells::flags`]: rail parity is [`RailParity::Odd`].
pub const FLAG_RAIL_ODD: u8 = 2;
/// Bit of [`HotCells::flags`]: even row height, so rail parity applies.
pub const FLAG_RAIL_CONSTRAINED: u8 = 4;

/// Sentinel in the region column for "no fence region".
const NO_REGION: u16 = u16::MAX;

/// Struct-of-arrays view of the immutable hot fields of every cell.
///
/// Indexing follows [`CellId`]: column `i` describes `CellId(i)`.
#[derive(Debug, Clone, Default)]
pub struct HotCells {
    width: Vec<Dbu>,
    w_sites: Vec<i64>,
    height_rows: Vec<u8>,
    area: Vec<i64>,
    gp_x: Vec<Dbu>,
    gp_y: Vec<Dbu>,
    /// Packed `FLAG_*` bits.
    flags: Vec<u8>,
    edge_left: Vec<u8>,
    edge_right: Vec<u8>,
    region: Vec<u16>,
}

impl HotCells {
    /// Builds the snapshot for `design` (also available as
    /// [`Design::hot_cells`]).
    pub fn new(design: &Design) -> Self {
        let n = design.num_cells();
        let sw = design.tech.site_width;
        let rh = design.tech.row_height;
        let mut hot = Self {
            width: Vec::with_capacity(n),
            w_sites: Vec::with_capacity(n),
            height_rows: Vec::with_capacity(n),
            area: Vec::with_capacity(n),
            gp_x: Vec::with_capacity(n),
            gp_y: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            edge_left: Vec::with_capacity(n),
            edge_right: Vec::with_capacity(n),
            region: Vec::with_capacity(n),
        };
        for c in &design.cells {
            hot.width.push(c.width);
            hot.w_sites.push(c.width / sw);
            hot.height_rows.push(c.height_rows);
            hot.area.push(c.area(rh));
            hot.gp_x.push(c.gp_pos.x);
            hot.gp_y.push(c.gp_pos.y);
            let mut flags = 0u8;
            if c.fixed {
                flags |= FLAG_FIXED;
            }
            if c.rail == RailParity::Odd {
                flags |= FLAG_RAIL_ODD;
            }
            if c.is_rail_constrained() {
                flags |= FLAG_RAIL_CONSTRAINED;
            }
            hot.flags.push(flags);
            hot.edge_left.push(c.edge_left.0);
            hot.edge_right.push(c.edge_right.0);
            hot.region.push(c.region.map_or(NO_REGION, |r| r.0));
        }
        hot
    }

    /// Number of cells in the snapshot.
    pub fn len(&self) -> usize {
        self.width.len()
    }

    /// `true` when the snapshot holds no cells.
    pub fn is_empty(&self) -> bool {
        self.width.is_empty()
    }

    /// Cell width in dbu.
    pub fn width(&self, id: CellId) -> Dbu {
        self.width[id.index()]
    }

    /// Cell width in sites.
    pub fn w_sites(&self, id: CellId) -> i64 {
        self.w_sites[id.index()]
    }

    /// Cell height in rows.
    pub fn height_rows(&self, id: CellId) -> u8 {
        self.height_rows[id.index()]
    }

    /// Cell height in rows as the `i64` the grid math wants.
    pub fn h_rows(&self, id: CellId) -> i64 {
        i64::from(self.height_rows[id.index()])
    }

    /// Cell area in dbu².
    pub fn area(&self, id: CellId) -> i64 {
        self.area[id.index()]
    }

    /// Global-placement position (lower-left).
    pub fn gp_pos(&self, id: CellId) -> Point {
        let i = id.index();
        Point::new(self.gp_x[i], self.gp_y[i])
    }

    /// Global-placement x (the `XAscending` sort key).
    pub fn gp_x(&self, id: CellId) -> Dbu {
        self.gp_x[id.index()]
    }

    /// `true` for cells a legalizer may move.
    pub fn is_movable(&self, id: CellId) -> bool {
        self.flags[id.index()] & FLAG_FIXED == 0
    }

    /// `true` when the rail-parity constraint applies (even row height).
    pub fn is_rail_constrained(&self, id: CellId) -> bool {
        self.flags[id.index()] & FLAG_RAIL_CONSTRAINED != 0
    }

    /// Rail parity of the cell.
    pub fn rail(&self, id: CellId) -> RailParity {
        if self.flags[id.index()] & FLAG_RAIL_ODD != 0 {
            RailParity::Odd
        } else {
            RailParity::Even
        }
    }

    /// Left edge class.
    pub fn edge_left(&self, id: CellId) -> EdgeType {
        EdgeType(self.edge_left[id.index()])
    }

    /// Right edge class.
    pub fn edge_right(&self, id: CellId) -> EdgeType {
        EdgeType(self.edge_right[id.index()])
    }

    /// Fence region membership, if any.
    pub fn region(&self, id: CellId) -> Option<RegionId> {
        let r = self.region[id.index()];
        (r != NO_REGION).then_some(RegionId(r))
    }

    /// Ids of all movable cells, in id order.
    pub fn movable_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.flags
            .iter()
            .enumerate()
            .filter(|(_, &f)| f & FLAG_FIXED == 0)
            .map(|(i, _)| CellId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::tech::Technology;
    use rlleg_geom::Rect;

    #[test]
    fn snapshot_matches_cells() {
        let mut b = DesignBuilder::new("soa", Technology::contest(), 30, 8);
        let a = b.add_cell("a", 2, 1, Point::new(350, 70));
        let c = b.add_cell("c", 3, 2, Point::new(2_000, 4_000));
        let m = b.add_fixed_cell("m", 4, 4, Point::new(4_000, 0));
        let r = b.add_region("f", vec![Rect::new(0, 0, 2_000, 8_000)]);
        b.assign_region(a, r);
        b.set_rail(c, RailParity::Odd);
        b.set_edges(c, EdgeType(1), EdgeType(2));
        let d = b.build();
        let hot = d.hot_cells();
        assert_eq!(hot.len(), 3);
        for id in d.cell_ids() {
            let cell = d.cell(id);
            assert_eq!(hot.width(id), cell.width, "{id} width");
            assert_eq!(hot.w_sites(id), cell.width / d.tech.site_width);
            assert_eq!(hot.height_rows(id), cell.height_rows);
            assert_eq!(hot.area(id), cell.area(d.tech.row_height));
            assert_eq!(hot.gp_pos(id), cell.gp_pos);
            assert_eq!(hot.is_movable(id), cell.is_movable());
            assert_eq!(hot.is_rail_constrained(id), cell.is_rail_constrained());
            assert_eq!(hot.rail(id), cell.rail);
            assert_eq!(hot.edge_left(id), cell.edge_left);
            assert_eq!(hot.edge_right(id), cell.edge_right);
            assert_eq!(hot.region(id), cell.region);
        }
        assert_eq!(hot.movable_ids().collect::<Vec<_>>(), vec![a, c]);
        assert!(!hot.is_movable(m));
    }
}
