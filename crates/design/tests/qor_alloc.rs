//! Regression: `Qor::measure` must not allocate proportionally to the
//! design — it used to buffer every displacement into a `Vec<f64>` before
//! bucketing. Observations now stream into the histogram, so measuring a
//! 64× larger design performs the same number of allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rlleg_design::metrics::Qor;
use rlleg_design::{Design, DesignBuilder, Technology};
use rlleg_geom::Point;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn chain(cells: usize) -> Design {
    let mut b = DesignBuilder::new("alloc", Technology::contest(), 4 * cells as i64, 16);
    let ids: Vec<_> = (0..cells)
        .map(|i| b.add_cell(format!("c{i}"), 2, 1, Point::new(4 * i as i64, 0)))
        .collect();
    for w in ids.windows(2) {
        b.add_net(format!("n{}", w[0].0), vec![(w[0], 0, 0), (w[1], 0, 0)]);
    }
    let mut d = b.build();
    // Displace every cell so the histogram sees a non-trivial spread.
    for (i, &id) in ids.iter().enumerate() {
        let c = d.cell_mut(id);
        c.pos = Point::new(c.pos.x + (i % 7) as i64 * 10, c.pos.y);
    }
    d
}

fn allocations_during_measure(d: &Design) -> u64 {
    let start = ALLOCS.load(Ordering::Relaxed);
    let q = Qor::measure(d);
    std::hint::black_box(q);
    ALLOCS.load(Ordering::Relaxed) - start
}

#[test]
fn measure_allocations_do_not_grow_with_design_size() {
    let small = chain(64);
    let large = chain(4096);
    // Warm up lazy telemetry state (span registry, histogram names) so the
    // measured passes only see steady-state behavior.
    let _ = Qor::measure(&small);
    let _ = Qor::measure(&large);

    let a_small = allocations_during_measure(&small);
    let a_large = allocations_during_measure(&large);
    assert!(
        a_large <= a_small,
        "Qor::measure allocations grew with design size: {a_small} (64 cells) \
         -> {a_large} (4096 cells)"
    );
}
