//! Property-based tests: DEF round-trip fidelity and metric invariants.

use proptest::prelude::*;
use rlleg_design::{def, metrics, CellId, DesignBuilder, EdgeType, RailParity, Technology};
use rlleg_geom::Point;

#[derive(Debug, Clone)]
struct CellSpec {
    w: i64,
    h: u8,
    x: i64,
    y: i64,
    el: u8,
    er: u8,
    odd_rail: bool,
    fixed: bool,
}

fn arb_cell() -> impl Strategy<Value = CellSpec> {
    (
        1i64..6,
        1u8..=4,
        0i64..30_000,
        0i64..20_000,
        0u8..3,
        0u8..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(w, h, x, y, el, er, odd_rail, fixed)| CellSpec {
            w,
            h,
            x,
            y,
            el,
            er,
            odd_rail,
            fixed,
        })
}

fn build(cells: &[CellSpec], net_spec: &[Vec<u8>]) -> rlleg_design::Design {
    let mut b = DesignBuilder::new("prop", Technology::contest(), 200, 20);
    let mut ids = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        let id = if c.fixed {
            b.add_fixed_cell(format!("f{i}"), c.w, c.h, Point::new(c.x, c.y))
        } else {
            b.add_cell(format!("u{i}"), c.w, c.h, Point::new(c.x, c.y))
        };
        b.set_edges(id, EdgeType(c.el), EdgeType(c.er));
        b.set_rail(
            id,
            if c.odd_rail {
                RailParity::Odd
            } else {
                RailParity::Even
            },
        );
        ids.push(id);
    }
    for (i, members) in net_spec.iter().enumerate() {
        let pins: Vec<_> = members
            .iter()
            .map(|&m| (ids[m as usize % ids.len()], i64::from(m) * 10, 0))
            .collect();
        if !pins.is_empty() {
            b.add_net(format!("n{i}"), pins);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn def_round_trip_is_lossless(
        cells in prop::collection::vec(arb_cell(), 1..30),
        nets in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..5), 0..20),
    ) {
        let d = build(&cells, &nets);
        let text = def::write_def(&d);
        let back = def::parse_def(&text, Technology::contest()).expect("round trip parses");
        prop_assert_eq!(back.num_cells(), d.num_cells());
        prop_assert_eq!(back.num_nets(), d.num_nets());
        prop_assert_eq!(&back.nets, &d.nets);
        for (a, b) in d.cells.iter().zip(back.cells.iter()) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.width, b.width);
            prop_assert_eq!(a.height_rows, b.height_rows);
            prop_assert_eq!(a.gp_pos, b.gp_pos);
            prop_assert_eq!(a.fixed, b.fixed);
            prop_assert_eq!(a.edge_left, b.edge_left);
            prop_assert_eq!(a.edge_right, b.edge_right);
            prop_assert_eq!(a.rail, b.rail);
        }
        // Same HPWL after round trip.
        prop_assert_eq!(metrics::total_hpwl(&back), metrics::total_hpwl(&d));
    }

    #[test]
    fn hot_cells_snapshot_is_field_exact_after_def_round_trip(
        cells in prop::collection::vec(arb_cell(), 1..30),
    ) {
        // The SoA snapshot the legalizer's inner loops read must agree with
        // the Cell structs field-for-field — including on a design that has
        // been through a DEF write/parse cycle.
        let d = build(&cells, &[]);
        let text = def::write_def(&d);
        let back = def::parse_def(&text, Technology::contest()).expect("round trip parses");
        let hot = back.hot_cells();
        prop_assert_eq!(hot.len(), back.num_cells());
        let rh = back.tech.row_height;
        let sw = back.tech.site_width;
        for id in back.cell_ids() {
            let c = back.cell(id);
            prop_assert_eq!(hot.width(id), c.width);
            prop_assert_eq!(hot.w_sites(id), c.width / sw);
            prop_assert_eq!(hot.height_rows(id), c.height_rows);
            prop_assert_eq!(hot.h_rows(id), i64::from(c.height_rows));
            prop_assert_eq!(hot.area(id), c.area(rh));
            prop_assert_eq!(hot.gp_pos(id), c.gp_pos);
            prop_assert_eq!(hot.gp_x(id), c.gp_pos.x);
            prop_assert_eq!(hot.is_movable(id), c.is_movable());
            prop_assert_eq!(hot.is_rail_constrained(id), c.is_rail_constrained());
            prop_assert_eq!(hot.rail(id), c.rail);
            prop_assert_eq!(hot.edge_left(id), c.edge_left);
            prop_assert_eq!(hot.edge_right(id), c.edge_right);
            prop_assert_eq!(hot.region(id), c.region);
        }
        prop_assert_eq!(
            hot.movable_ids().collect::<Vec<_>>(),
            back.movable_ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn hpwl_is_translation_dominated(
        cells in prop::collection::vec(arb_cell(), 2..20),
        dx in 0i64..5_000,
        dy in 0i64..5_000,
    ) {
        // Moving a single cell by (dx, dy) changes each incident net's HPWL
        // by at most dx + dy, so total HPWL changes by at most deg * (dx+dy).
        let nets: Vec<Vec<u8>> = (0..cells.len() as u8).map(|i| vec![i, i.wrapping_add(1)]).collect();
        let mut d = build(&cells, &nets);
        let before = metrics::total_hpwl(&d);
        let deg = d.nets_of(CellId(0)).len() as i64;
        let p = d.cell(CellId(0)).pos;
        d.cell_mut(CellId(0)).pos = Point::new(p.x + dx, p.y + dy);
        let after = metrics::total_hpwl(&d);
        prop_assert!((after - before).abs() <= deg * (dx + dy));
    }

    #[test]
    fn qor_max_bounds_avg(cells in prop::collection::vec(arb_cell(), 1..25)) {
        let mut d = build(&cells, &[]);
        // Shift every movable cell by a random-ish amount derived from index.
        let ids: Vec<CellId> = d.movable_ids().collect();
        for (i, id) in ids.iter().enumerate() {
            let p = d.cell(*id).pos;
            d.cell_mut(*id).pos = Point::new(p.x + (i as i64 * 37) % 2_000, p.y);
        }
        let q = metrics::Qor::measure(&d);
        prop_assert!(q.avg_displacement <= q.max_displacement as f64 + 1e-9);
        prop_assert!(q.total_displacement >= q.max_displacement);
    }
}
