//! Greedy design minimizer: given a failing design and a predicate that
//! re-runs the broken oracle, repeatedly tries structural simplifications
//! (drop cell chunks, drop nets, drop regions, clear the displacement
//! limit, shrink the core) and keeps each one that still fails. Bounded by
//! a predicate-call budget so a stubborn case cannot stall the harness.

use rlleg_design::{Design, DesignBuilder, Pin};

/// Minimizes `orig` against `fails` (which must return `true` for the
/// original design). Performs at most `max_calls` predicate evaluations and
/// returns the smallest failing design found.
pub fn shrink_design(
    orig: &Design,
    fails: &mut dyn FnMut(&Design) -> bool,
    max_calls: usize,
) -> Design {
    let mut best = orig.clone();
    let mut calls = 0usize;
    let mut try_candidate = |cand: Design, best: &mut Design, calls: &mut usize| -> bool {
        if *calls >= max_calls {
            return false;
        }
        *calls += 1;
        if fails(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    };

    // 1. Drop cells in halving chunks (classic ddmin flavour).
    let mut chunk = best.num_cells().div_ceil(2);
    while chunk >= 1 && calls < max_calls {
        let mut progressed = false;
        let mut start = 0;
        while start < best.num_cells() && calls < max_calls {
            let n = best.num_cells();
            let end = (start + chunk).min(n);
            let keep: Vec<bool> = (0..n).map(|i| i < start || i >= end).collect();
            if keep.iter().filter(|k| **k).count() == 0 {
                start += chunk;
                continue;
            }
            let cand = rebuild(&best, &keep, None, true, true);
            if try_candidate(cand, &mut best, &mut calls) {
                progressed = true;
                // Indices shifted: retry the same offset against the new,
                // smaller design.
            } else {
                start += chunk;
            }
        }
        if !progressed {
            chunk /= 2;
        }
    }

    // 2. Drop all nets at once (they rarely matter to legality bugs).
    if best.num_nets() > 0 {
        let keep: Vec<bool> = vec![true; best.num_cells()];
        let cand = rebuild(&best, &keep, None, false, true);
        try_candidate(cand, &mut best, &mut calls);
    }

    // 3. Drop regions one at a time (dropping one unassigns its cells).
    let mut r = 0;
    while r < best.regions.len() && calls < max_calls {
        let keep: Vec<bool> = vec![true; best.num_cells()];
        let keep_regions: Vec<bool> = (0..best.regions.len()).map(|i| i != r).collect();
        let cand = rebuild_with_regions(&best, &keep, None, true, &keep_regions);
        if !try_candidate(cand, &mut best, &mut calls) {
            r += 1;
        }
    }

    // 4. Clear the displacement limit.
    if best.max_displacement.is_some() && calls < max_calls {
        let keep: Vec<bool> = vec![true; best.num_cells()];
        let cand = rebuild(&best, &keep, Some(None), true, true);
        try_candidate(cand, &mut best, &mut calls);
    }

    // 5. Shrink the core by halving each axis while the failure persists.
    loop {
        if calls >= max_calls {
            break;
        }
        let sx = best.num_sites_x();
        let ry = best.num_rows();
        let mut shrunk = false;
        if sx >= 2 {
            let keep: Vec<bool> = vec![true; best.num_cells()];
            let cand = rebuild_sized(&best, &keep, sx / 2, ry);
            shrunk |= try_candidate(cand, &mut best, &mut calls);
        }
        if ry >= 2 && calls < max_calls {
            let keep: Vec<bool> = vec![true; best.num_cells()];
            let cand = rebuild_sized(&best, &keep, best.num_sites_x(), ry / 2);
            shrunk |= try_candidate(cand, &mut best, &mut calls);
        }
        if !shrunk {
            break;
        }
    }

    best
}

/// Rebuilds `design` keeping only the cells where `keep[i]`, optionally
/// overriding the displacement limit, keeping or dropping nets/regions.
fn rebuild(
    design: &Design,
    keep: &[bool],
    max_disp_override: Option<Option<i64>>,
    keep_nets: bool,
    keep_all_regions: bool,
) -> Design {
    let keep_regions: Vec<bool> = vec![keep_all_regions; design.regions.len()];
    rebuild_full(
        design,
        keep,
        max_disp_override,
        keep_nets,
        &keep_regions,
        design.num_sites_x(),
        design.num_rows(),
    )
}

fn rebuild_with_regions(
    design: &Design,
    keep: &[bool],
    max_disp_override: Option<Option<i64>>,
    keep_nets: bool,
    keep_regions: &[bool],
) -> Design {
    rebuild_full(
        design,
        keep,
        max_disp_override,
        keep_nets,
        keep_regions,
        design.num_sites_x(),
        design.num_rows(),
    )
}

fn rebuild_sized(design: &Design, keep: &[bool], sites_x: i64, rows: i64) -> Design {
    let keep_regions: Vec<bool> = vec![true; design.regions.len()];
    rebuild_full(design, keep, None, true, &keep_regions, sites_x, rows)
}

fn rebuild_full(
    design: &Design,
    keep: &[bool],
    max_disp_override: Option<Option<i64>>,
    keep_nets: bool,
    keep_regions: &[bool],
    sites_x: i64,
    rows: i64,
) -> Design {
    let mut b = DesignBuilder::new(
        design.name.clone(),
        design.tech.clone(),
        sites_x.max(1),
        rows.max(1),
    );
    let max_disp = match max_disp_override {
        Some(over) => over,
        None => design.max_displacement,
    };
    if let Some(md) = max_disp {
        b.max_displacement(md);
    }

    let mut region_map = vec![None; design.regions.len()];
    for (i, r) in design.regions.iter().enumerate() {
        if keep_regions.get(i).copied().unwrap_or(true) {
            region_map[i] = Some(b.add_region(r.name.clone(), r.rects.clone()));
        }
    }

    let mut cell_map = vec![None; design.cells.len()];
    for (i, c) in design.cells.iter().enumerate() {
        if !keep.get(i).copied().unwrap_or(true) {
            continue;
        }
        let w_sites = (c.width / design.tech.site_width).max(1);
        let id = if c.fixed {
            b.add_fixed_cell(c.name.clone(), w_sites, c.height_rows, c.pos)
        } else {
            b.add_cell(c.name.clone(), w_sites, c.height_rows, c.gp_pos)
        };
        b.set_edges(id, c.edge_left, c.edge_right);
        b.set_rail(id, c.rail);
        if let Some(reg) = c.region {
            if let Some(Some(new_reg)) = region_map.get(reg.index()) {
                b.assign_region(id, *new_reg);
            }
        }
        cell_map[i] = Some(id);
    }

    if keep_nets {
        for net in &design.nets {
            let mut pins = Vec::new();
            let mut fixed = Vec::new();
            for p in &net.pins {
                match p {
                    Pin::OnCell { cell, offset } => {
                        if let Some(Some(id)) = cell_map.get(cell.0 as usize) {
                            pins.push((*id, offset.x, offset.y));
                        }
                    }
                    Pin::Fixed(pt) => fixed.push(*pt),
                }
            }
            if !pins.is_empty() && pins.len() + fixed.len() >= 2 {
                b.add_net_with_fixed(net.name.clone(), pins, fixed);
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    /// A failure that depends on exactly one cell: the shrinker must strip
    /// everything else.
    #[test]
    fn shrinks_to_the_single_culprit() {
        let mut b = DesignBuilder::new("s", Technology::contest(), 40, 8);
        for i in 0..30i64 {
            b.add_cell(format!("u{i}"), 1, 1, Point::new(i * 220, (i % 4) * 2_000));
        }
        let culprit = b.add_cell("bad", 3, 2, Point::new(1_000, 1_000));
        let c0 = b.add_cell("x", 1, 1, Point::new(0, 0));
        b.add_net("n", vec![(culprit, 0, 0), (c0, 0, 0)]);
        b.max_displacement(100_000);
        let d = b.build();

        let mut calls = 0;
        let small = shrink_design(
            &d,
            &mut |cand| {
                calls += 1;
                cand.cells.iter().any(|c| c.name == "bad")
            },
            500,
        );
        assert!(small.cells.iter().any(|c| c.name == "bad"));
        assert_eq!(small.num_cells(), 1, "kept {} cells", small.num_cells());
        assert_eq!(small.num_nets(), 0);
        assert!(small.max_displacement.is_none());
        assert!(calls <= 500);
    }

    /// Core shrinking keeps failing designs failing and shrinks dims.
    #[test]
    fn shrinks_the_core_when_irrelevant() {
        let mut b = DesignBuilder::new("c", Technology::contest(), 64, 8);
        b.add_cell("only", 1, 1, Point::new(37, 0));
        let d = b.build();
        let small = shrink_design(
            &d,
            &mut |cand| cand.num_cells() == 1 && cand.cell(rlleg_design::CellId(0)).pos.x == 37,
            200,
        );
        assert!(small.num_sites_x() < 64 || small.num_rows() < 8);
    }
}
