//! Seeded scenario generation: half the iterations reuse the
//! [`rlleg_benchgen`] table specs (scaled to their 60-cell floor), half
//! build deliberately hostile designs the spec generator would never emit —
//! off-core fixed macros, degenerate fences, cells wider than a Gcell
//! window, off-grid and off-core global placements, tight displacement
//! limits.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use rlleg_benchgen::{test_suite, training_suite};
use rlleg_design::{Design, DesignBuilder, EdgeType, RailParity, Technology};
use rlleg_geom::{Point, Rect};

/// One fuzz scenario: a design plus the label describing how it was built.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Generator family and parameters, for failure reports.
    pub label: String,
    /// The design under test, at its global placement (nothing legalized).
    pub design: Design,
}

/// Draws one scenario from `rng`.
pub fn generate_scenario(rng: &mut ChaCha8Rng) -> Scenario {
    if rng.gen_bool(0.5) {
        spec_scenario(rng)
    } else {
        hostile_scenario(rng)
    }
}

/// Alias used by the harness ([`crate::run_iteration`]).
pub fn generate(rng: &mut ChaCha8Rng) -> Scenario {
    generate_scenario(rng)
}

/// A table-spec design at the 60-cell scaling floor with a fuzzed seed.
fn spec_scenario(rng: &mut ChaCha8Rng) -> Scenario {
    let mut suite = training_suite();
    suite.extend(test_suite());
    let mut spec = suite.choose(rng).expect("suites are nonempty").scaled(0.0);
    spec.seed = rng.gen();
    let design = rlleg_benchgen::generate(&spec);
    Scenario {
        label: format!("spec:{}#{}", spec.name, spec.seed),
        design,
    }
}

/// A hostile design built directly through [`DesignBuilder`], with shapes
/// outside the spec generator's envelope.
fn hostile_scenario(rng: &mut ChaCha8Rng) -> Scenario {
    let tech = if rng.gen_bool(0.5) {
        Technology::contest()
    } else {
        Technology::nangate45()
    };
    let sites_x = rng.gen_range(8..=48i64);
    let rows = rng.gen_range(3..=10i64);
    let sw = tech.site_width;
    let rh = tech.row_height;
    let core_w = sites_x * sw;
    let core_h = rows * rh;
    let max_h = tech.max_height_rows;
    let has_edges = tech.edge_spacing_sites.len() > 1;

    let tag: u32 = rng.gen();
    let mut b = DesignBuilder::new(format!("hostile_{tag:08x}"), tech.clone(), sites_x, rows);

    // Fence regions, sometimes degenerate (zero-area) or partly off-core.
    let mut regions = Vec::new();
    for r in 0..rng.gen_range(0..=2usize) {
        let rect = if rng.gen_bool(0.25) {
            // Zero-area fence: no cell can ever satisfy it.
            let x = rng.gen_range(0..core_w);
            let y = rng.gen_range(0..core_h);
            Rect::new(x, y, x, y)
        } else {
            let x1 = rng.gen_range(-core_w / 4..core_w / 2);
            let y1 = rng.gen_range(-core_h / 4..core_h / 2);
            let x2 = x1 + rng.gen_range(sw..=core_w / 2 + sw);
            let y2 = y1 + rng.gen_range(rh..=core_h / 2 + rh);
            Rect::new(x1, y1, x2, y2)
        };
        regions.push(b.add_region(format!("f{r}"), vec![rect]));
    }

    // Fixed macros: on-core, straddling, or fully off-core.
    for m in 0..rng.gen_range(0..=3usize) {
        let w = rng.gen_range(1..=(sites_x / 2).max(2));
        let h = rng.gen_range(1..=max_h);
        let pos = match rng.gen_range(0..3u32) {
            0 => Point::new(
                rng.gen_range(0..core_w.max(1)),
                rng.gen_range(0..core_h.max(1)),
            ),
            // Straddling a core edge.
            1 => Point::new(
                rng.gen_range(-w * sw..core_w),
                rng.gen_range(-i64::from(h) * rh..core_h),
            ),
            // Fully outside (negative side).
            _ => Point::new(
                -rng.gen_range(1..=4i64) * core_w.max(1),
                -rng.gen_range(1..=4i64) * rh,
            ),
        };
        b.add_fixed_cell(format!("m{m}"), w, h, pos);
    }

    // Movable cells up to a target utilization (cap keeps debug-mode fuzz
    // iterations fast).
    let target_util = rng.gen_range(0.3..0.9);
    let core_area = (core_w as f64) * (core_h as f64);
    let mut used = 0.0f64;
    let mut ids = Vec::new();
    for i in 0..120usize {
        if used > target_util * core_area {
            break;
        }
        // ~4% of cells are wider than the die (and so than any Gcell
        // window): they must fail cleanly everywhere.
        let w = if rng.gen_bool(0.04) {
            sites_x + rng.gen_range(1..=4i64)
        } else {
            rng.gen_range(1..=4i64)
        };
        let h = if rng.gen_bool(0.3) {
            rng.gen_range(2..=max_h.max(2))
        } else {
            1
        };
        // Mostly in-core off-grid positions; a tail of off-core outliers.
        let pos = if rng.gen_bool(0.85) {
            Point::new(rng.gen_range(0..core_w), rng.gen_range(0..core_h))
        } else {
            Point::new(
                rng.gen_range(-core_w..2 * core_w),
                rng.gen_range(-core_h..2 * core_h),
            )
        };
        let id = b.add_cell(format!("u{i}"), w, h, pos);
        used += (w * sw) as f64 * (i64::from(h) * rh) as f64;
        if has_edges && rng.gen_bool(0.5) {
            let n = tech.edge_spacing_sites.len() as u8;
            b.set_edges(
                id,
                EdgeType(rng.gen_range(0..n)),
                EdgeType(rng.gen_range(0..n)),
            );
        }
        if h % 2 == 0 && rng.gen_bool(0.3) {
            b.set_rail(
                id,
                if rng.gen_bool(0.5) {
                    RailParity::Even
                } else {
                    RailParity::Odd
                },
            );
        }
        if !regions.is_empty() && rng.gen_bool(0.15) {
            b.assign_region(id, *regions.choose(rng).expect("nonempty"));
        }
        ids.push(id);
    }

    // A few small nets (duplicated pins on one cell are allowed).
    if !ids.is_empty() {
        for n in 0..rng.gen_range(0..=6usize) {
            let arity = rng.gen_range(2..=4usize);
            let pins = (0..arity)
                .map(|_| {
                    let c = *ids.choose(rng).expect("nonempty");
                    (c, rng.gen_range(0..=sw), rng.gen_range(0..=rh / 2))
                })
                .collect();
            b.add_net(format!("n{n}"), pins);
        }
    }

    if rng.gen_bool(0.3) {
        b.max_displacement(rh * rng.gen_range(1..=6i64));
    }

    Scenario {
        label: format!("hostile:{tag:08x}:{sites_x}x{rows}:{}", tech.name),
        design: b.build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scenarios_are_deterministic_and_buildable() {
        for seed in 0..8 {
            let mut r1 = ChaCha8Rng::seed_from_u64(seed);
            let mut r2 = ChaCha8Rng::seed_from_u64(seed);
            let a = generate_scenario(&mut r1);
            let b = generate_scenario(&mut r2);
            assert_eq!(a.label, b.label);
            assert_eq!(a.design.num_cells(), b.design.num_cells());
            assert!(a.design.num_cells() > 0);
        }
    }

    #[test]
    fn hostile_scenarios_cover_hostile_shapes() {
        // Across a fixed batch of seeds the generator must actually emit
        // the hostile features the oracles are there to exercise.
        let mut off_core = false;
        let mut overwide = false;
        let mut fenced = false;
        for seed in 0..64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let sc = hostile_scenario(&mut rng);
            let d = &sc.design;
            for id in d.cell_ids() {
                let c = d.cell(id);
                if c.pos.x < 0 || c.pos.y < 0 {
                    off_core = true;
                }
                if c.width > d.core.width() {
                    overwide = true;
                }
            }
            if !d.regions.is_empty() {
                fenced = true;
            }
        }
        assert!(off_core, "no off-core positions generated");
        assert!(overwide, "no overwide cells generated");
        assert!(fenced, "no fences generated");
    }
}
