//! Oracle 8: the analytical global placer's output contract.
//!
//! For every scenario, [`rlleg_gplace::place`] must produce a placement
//! that is finite (integer positions, finite stats), keeps fixed cells
//! exactly where they were, keeps every movable cell that fits the core
//! fully on-die, reports a non-increasing overflow trajectory, and is
//! bit-deterministic for a fixed seed. For benchmark-spec scenarios
//! (`spec:` labels — realistic netlists inside the generator envelope) the
//! output must additionally legalize with zero failed cells and an empty
//! [`legality::check`]; hostile scenarios (cells wider than the core,
//! degenerate fences) are exempt from that last clause, matching the
//! legalizer oracle's "explained failure" stance.

use rlleg_design::legality;
use rlleg_gplace::{place, GpConfig};
use rlleg_legalize::{GcellGrid, Legalizer, Ordering};

use crate::scenario::Scenario;
use crate::Failure;

/// Runs the placer invariants on clones of the scenario design.
/// Deterministic in `seed`.
pub fn check(sc: &Scenario, seed: u64) -> Vec<Failure> {
    let mut failures = Vec::new();
    let fail = |message: String| {
        vec![Failure {
            oracle: "gplace",
            scenario: sc.label.clone(),
            message,
            artifact: None,
        }]
    };

    let cfg = GpConfig {
        seed,
        ..GpConfig::default()
    };
    let mut a = sc.design.clone();
    let sa = place(&mut a, &cfg);

    // Finite stats and a non-increasing overflow trajectory.
    if sa.hpwl < 0 {
        return fail(format!("negative placement hpwl {}", sa.hpwl));
    }
    for w in sa.overflow.windows(2) {
        if w[1] > w[0] || !w[1].is_finite() {
            return fail(format!(
                "overflow trajectory not monotone/finite: {:?}",
                sa.overflow
            ));
        }
    }

    let rh = a.tech.row_height;
    for (before, after) in sc.design.cells.iter().zip(a.cells.iter()) {
        if !before.is_movable() {
            if before.pos != after.pos || before.gp_pos != after.gp_pos {
                return fail(format!("fixed cell {} moved to {}", before.name, after.pos));
            }
            continue;
        }
        let r = after.rect(rh);
        let fits = r.width() <= a.core.width() && r.height() <= a.core.height();
        if fits && !a.core.contains(&r) {
            return fail(format!(
                "movable cell {} at {} off-die",
                after.name, after.pos
            ));
        }
    }

    // Bit-deterministic for the same seed: positions and stats identical.
    let mut b = sc.design.clone();
    let sb = place(&mut b, &cfg);
    if sa.hpwl != sb.hpwl || sa.overflow != sb.overflow {
        return fail(format!(
            "stats diverge across identical runs: hpwl {} vs {}, overflow {:?} vs {:?}",
            sa.hpwl, sb.hpwl, sa.overflow, sb.overflow
        ));
    }
    for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
        if ca.pos != cb.pos || ca.gp_pos != cb.gp_pos {
            return fail(format!(
                "cell {} position diverges across identical runs: {} vs {}",
                ca.name, ca.pos, cb.pos
            ));
        }
    }

    // Realistic netlists must stay fully legalizable after placement.
    if sc.label.starts_with("spec:") {
        let gcells = GcellGrid::auto(&a);
        let run =
            Legalizer::new(&a).run_gcells_parallel(&mut a, &Ordering::SizeDescending, &gcells, 2);
        if !run.failed.is_empty() {
            failures.extend(fail(format!(
                "gplace output failed {} cells under legalization",
                run.failed.len()
            )));
        } else {
            let violations = legality::check(&a, true);
            if !violations.is_empty() {
                failures.extend(fail(format!(
                    "gplace output legalized with {} violations (first: {:?})",
                    violations.len(),
                    violations[0]
                )));
            }
        }
    }
    failures
}
