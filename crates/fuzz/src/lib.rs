//! Differential fuzzing and invariant audit across the legalization
//! pipeline.
//!
//! The paper's headline claim rests on a legality guarantee ("no design rule
//! violations occur for all benchmarks"); this crate stress-tests that
//! guarantee under adversarial inputs instead of the curated bench designs.
//! Each iteration draws one seeded [`scenario`] (half benchmark-spec-based,
//! half deliberately hostile: off-core macros, degenerate fences, cells
//! wider than a Gcell window) and drives four differential oracles over it:
//!
//! 1. [`oracle_legalize`] — every legalizer configuration (three orderings ×
//!    flat/Gcell/parallel × threads {1, 2, 4}) must leave an empty
//!    [`rlleg_design::legality::check`] or an *explained* failure set
//!    (every violation involves a cell the run reported as failed), with
//!    parallel runs bit-identical to `threads = 1`;
//! 2. [`oracle_parse`] — DEF/LEF round-trips are lossless, and mutated or
//!    truncated inputs return `Err`, never panic (there is deliberately no
//!    `catch_unwind` anywhere: a panic crashes the harness and *is* the
//!    detection);
//! 3. [`oracle_grid`] — randomized place/remove/search/window op sequences
//!    on [`rlleg_legalize::PixelGrid`] cross-checked against the kept
//!    `*_reference` oracles and the [`rlleg_legalize::SubGrid`] snapshot;
//! 4. [`oracle_nn`] — trainer/inference invariants: priorities form a
//!    probability simplex, `values_batch` equals the per-state forward
//!    pass bit-for-bit, and short training runs produce finite losses and
//!    parameters;
//! 5. [`oracle_fault`] — deterministic fault injection: solver panics,
//!    corrupted checkpoints, NaN-poisoned weights, and stalled inference
//!    must all end in a completed run with the documented recovery
//!    behaviour, never a process abort;
//! 6. [`oracle_proto`] — the serving wire protocol: valid frames
//!    round-trip and reassemble from adversarial chunk sizes, while
//!    mutated, truncated, spliced, or garbage byte streams return `Err`
//!    — never panic, hang, or mis-frame;
//! 7. [`oracle_params`] — the asynchronous trainer's
//!    [`rl_legalizer::ParamStore`] seqlock under writer/reader thread
//!    contention: snapshots are never torn, the reported epoch always
//!    names the publish actually read (no ABA), and epochs are monotone;
//! 8. [`oracle_gplace`] — the analytical global placer: output positions
//!    are finite and on-die, fixed cells never move, the overflow
//!    trajectory is non-increasing, runs are bit-deterministic for a
//!    fixed seed, and benchmark-spec scenarios always legalize with zero
//!    failed cells and an empty legality check;
//! 9. [`oracle_wal`] — crash-durability of the serving write-ahead job
//!    journal: after a kill at a seeded point (torn tail, garbage tail,
//!    or mid-rotation), every durably acknowledged job is either
//!    recovered for re-run or its persisted result served bit-identically
//!    — checked differentially against an independent replay model.
//!
//! Failing designs are minimized by the greedy [`shrink`]er and written to
//! `crates/fuzz/corpus/`, which doubles as the regression suite replayed by
//! `tests/corpus.rs`.

#![warn(missing_docs)]

pub mod oracle_fault;
pub mod oracle_gplace;
pub mod oracle_grid;
pub mod oracle_legalize;
pub mod oracle_nn;
pub mod oracle_params;
pub mod oracle_parse;
pub mod oracle_proto;
pub mod oracle_wal;
pub mod scenario;
pub mod shrink;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Repro material a failing oracle leaves behind.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// The failing design (shrunk when the minimizer could) as
    /// [`rlleg_design::Design::to_json`].
    DesignJson(String),
    /// The DEF text that triggered the failure.
    Def(String),
    /// The LEF text that triggered the failure.
    Lef(String),
    /// A hex dump of the protocol bytes that triggered the failure.
    FrameHex(String),
    /// A `key=value` [`oracle_params::Case`] that triggered the failure.
    ParamsCase(String),
    /// A hex dump of a write-ahead-journal segment left by a failing
    /// crash-recovery run.
    WalSegmentHex(String),
}

impl Artifact {
    /// File extension the artifact should be written with.
    pub fn extension(&self) -> &'static str {
        match self {
            Artifact::DesignJson(_) => "json",
            Artifact::Def(_) => "def",
            Artifact::Lef(_) => "lef",
            Artifact::FrameHex(_) => "hex",
            Artifact::ParamsCase(_) => "params",
            Artifact::WalSegmentHex(_) => "wal",
        }
    }

    /// The artifact payload.
    pub fn contents(&self) -> &str {
        match self {
            Artifact::DesignJson(s)
            | Artifact::Def(s)
            | Artifact::Lef(s)
            | Artifact::FrameHex(s)
            | Artifact::ParamsCase(s)
            | Artifact::WalSegmentHex(s) => s,
        }
    }
}

/// One oracle failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle fired (`legalize`, `parse`, `grid`, `nn`, `fault`,
    /// `proto`, `params`, `gplace`, `wal`).
    pub oracle: &'static str,
    /// Scenario label (generator family + parameters).
    pub scenario: String,
    /// Human-readable description of the broken invariant.
    pub message: String,
    /// Repro input, when one can be serialized.
    pub artifact: Option<Artifact>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.oracle, self.scenario, self.message)
    }
}

/// Budget for shrinker predicate evaluations per failing iteration.
const SHRINK_BUDGET: usize = 200;

/// Runs one full fuzz iteration (scenario + all nine oracles) and returns
/// every invariant failure. Deterministic in `(seed, iter)`.
pub fn run_iteration(seed: u64, iter: u64) -> Vec<Failure> {
    run_iteration_filtered(seed, iter, None)
}

/// [`run_iteration`], restricted to the oracle named by `only` when given
/// (`legalize`, `parse`, `grid`, `nn`, `fault`, `proto`, `params`,
/// `gplace`, `wal`). Seed
/// derivation is shared with the unfiltered run, so `--only` repros match
/// full-run failures.
pub fn run_iteration_filtered(seed: u64, iter: u64, only: Option<&str>) -> Vec<Failure> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let sc = scenario::generate(&mut rng);
    telemetry::counter("fuzz.iters").inc();
    let wants = |name: &str| only.is_none_or(|o| o == name);

    let mut failures = Vec::new();

    let order_seed: u64 = rng.gen();
    let mut leg = if wants("legalize") {
        timed("legalize", || oracle_legalize::check(&sc, order_seed))
    } else {
        Vec::new()
    };
    if !leg.is_empty() {
        let json = minimized_json(&sc, &mut |d| {
            let probe = scenario::Scenario {
                label: sc.label.clone(),
                design: d.clone(),
            };
            !oracle_legalize::check(&probe, order_seed).is_empty()
        });
        for f in &mut leg {
            f.artifact
                .get_or_insert_with(|| Artifact::DesignJson(json.clone()));
        }
        failures.extend(leg);
    }

    // Each remaining oracle gets its own seed drawn unconditionally, so a
    // `--only` run reproduces exactly what the full run fed that oracle.
    let parse_seed: u64 = rng.gen();
    if wants("parse") {
        let mut parse_rng = ChaCha8Rng::seed_from_u64(parse_seed);
        failures.extend(timed("parse", || oracle_parse::check(&sc, &mut parse_rng)));
    }

    let grid_seed: u64 = rng.gen();
    let mut grd = if wants("grid") {
        timed("grid", || oracle_grid::check(&sc, grid_seed))
    } else {
        Vec::new()
    };
    if !grd.is_empty() {
        let json = minimized_json(&sc, &mut |d| {
            let probe = scenario::Scenario {
                label: sc.label.clone(),
                design: d.clone(),
            };
            !oracle_grid::check(&probe, grid_seed).is_empty()
        });
        for f in &mut grd {
            f.artifact
                .get_or_insert_with(|| Artifact::DesignJson(json.clone()));
        }
        failures.extend(grd);
    }

    let nn_seed: u64 = rng.gen();
    // The (slower) end-to-end training invariants run on a sampled subset
    // of iterations; the cheap inference invariants run every time.
    let deep = iter.is_multiple_of(16);
    if wants("nn") {
        failures.extend(timed("nn", || oracle_nn::check(&sc, nn_seed, deep)));
    }

    let fault_seed: u64 = rng.gen();
    // The stall case sleeps for real wall clock; sample it like the deep
    // nn check. The panic/checkpoint/NaN cases run every iteration.
    let fault_deep = iter.is_multiple_of(8);
    if wants("fault") {
        failures.extend(timed("fault", || {
            oracle_fault::check(&sc, fault_seed, fault_deep)
        }));
    }

    let proto_seed: u64 = rng.gen();
    if wants("proto") {
        failures.extend(timed("proto", || oracle_proto::check(&sc, proto_seed)));
    }

    let params_seed: u64 = rng.gen();
    if wants("params") {
        failures.extend(timed("params", || oracle_params::check(&sc, params_seed)));
    }

    let gplace_seed: u64 = rng.gen();
    let mut gpl = if wants("gplace") {
        timed("gplace", || oracle_gplace::check(&sc, gplace_seed))
    } else {
        Vec::new()
    };
    if !gpl.is_empty() {
        let json = minimized_json(&sc, &mut |d| {
            let probe = scenario::Scenario {
                label: sc.label.clone(),
                design: d.clone(),
            };
            !oracle_gplace::check(&probe, gplace_seed).is_empty()
        });
        for f in &mut gpl {
            f.artifact
                .get_or_insert_with(|| Artifact::DesignJson(json.clone()));
        }
        failures.extend(gpl);
    }

    let wal_seed: u64 = rng.gen();
    if wants("wal") {
        failures.extend(timed("wal", || oracle_wal::check(&sc, wal_seed)));
    }

    if !failures.is_empty() {
        telemetry::counter("fuzz.failures").add(failures.len() as u64);
    }
    failures
}

/// Shrinks the scenario design against `fails` and serializes the result.
fn minimized_json(
    sc: &scenario::Scenario,
    fails: &mut dyn FnMut(&rlleg_design::Design) -> bool,
) -> String {
    let small = shrink::shrink_design(&sc.design, fails, SHRINK_BUDGET);
    small
        .to_json()
        .unwrap_or_else(|e| format!("{{\"serialize_error\":\"{e}\"}}"))
}

/// Runs `f`, recording its wall time and failure count under
/// `fuzz.oracle.<name>.*`.
fn timed(name: &'static str, f: impl FnOnce() -> Vec<Failure>) -> Vec<Failure> {
    let t0 = std::time::Instant::now();
    let out = f();
    if !telemetry::disabled() {
        telemetry::histogram(
            &format!("fuzz.oracle.{name}.seconds"),
            telemetry::buckets::SECONDS,
        )
        .record(t0.elapsed().as_secs_f64());
        if !out.is_empty() {
            telemetry::counter(&format!("fuzz.oracle.{name}.failures")).add(out.len() as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_are_deterministic() {
        let a = run_iteration(7, 3);
        let b = run_iteration(7, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.message, y.message);
        }
    }

    #[test]
    fn fixed_seed_iterations_find_nothing_at_head() {
        for iter in 0..4 {
            let failures = run_iteration(99, iter);
            assert!(
                failures.is_empty(),
                "iteration {iter} failed: {}",
                failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
}
