//! Oracle 9: crash-durability of the serve write-ahead job journal
//! ([`rlleg_serve::wal`]).
//!
//! Simulates a SIGKILL at a seeded point: drives a random job-lifecycle
//! record sequence through a real [`Wal`], tracking a *shadow log* of every
//! record with the segment offset where it ends and whether the append was
//! durably acknowledged (fsynced). The "crash" drops the journal handle
//! and truncates — or truncates and appends garbage to — the final segment
//! at a seeded cut no earlier than the durability watermark (an fsynced
//! record can never be lost by a process kill), then reopens and asserts:
//!
//! 1. **No acknowledged loss, no divergent re-run** — the recovered live
//!    set equals an independent replay of exactly the records that
//!    survived the cut: non-terminal jobs come back `QUEUED` (they will
//!    re-run), terminal undelivered jobs come back with a bit-identical
//!    outcome (they will be *served*, never run a second time), cancelled
//!    and delivered jobs are forgotten. The expected set is computed by a
//!    second, independent implementation of the replay semantics, so this
//!    is a differential check, not a self-check.
//! 2. **Mid-rotation crash window** — a crash after the compacted segment
//!    is written but before the old segments are deleted (the widest
//!    window rotation has) recovers to the identical live set, and a
//!    second reopen right after is idempotent.
//!
//! Failing runs leave the surviving segment bytes as a hex artifact
//! ([`Artifact::WalSegmentHex`]), replayable by `tests/corpus.rs` (`.wal`
//! corpus entries are decoded, written back as a segment, and reopened —
//! recovery must succeed without error).

use std::collections::BTreeMap;
use std::path::Path;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rlleg_serve::job::{state, JobOutcome};
use rlleg_serve::proto::JobSpec;
use rlleg_serve::wal::{LiveJob, Wal};

use crate::oracle_proto::to_hex;
use crate::scenario::Scenario;
use crate::{Artifact, Failure};

/// Jobs whose lifecycles are journalled per iteration.
const JOBS: u64 = 8;

fn fail(sc: &Scenario, message: String, segment: &[u8]) -> Failure {
    Failure {
        oracle: "wal",
        scenario: sc.label.clone(),
        message,
        artifact: Some(Artifact::WalSegmentHex(to_hex(segment))),
    }
}

/// One journalled transition, as the shadow model sees it.
#[derive(Debug, Clone)]
enum SRec {
    Accepted { id: u64, unix_ms: u64, def: String },
    Running { id: u64, attempt: u32 },
    Requeued { id: u64, attempt: u32 },
    Done { id: u64, outcome: JobOutcome },
    Failed { id: u64, error: String },
    Cancelled { id: u64 },
    Delivered { id: u64 },
}

/// The shadow model's view of one recovered job.
#[derive(Debug, Clone, PartialEq)]
struct SJob {
    unix_ms: u64,
    attempt: u32,
    state: u8,
    def: Option<String>,
    outcome: Option<JobOutcome>,
    error: Option<String>,
}

/// Independent reimplementation of the journal's replay semantics: the
/// differential half of the oracle. Kept deliberately separate from
/// `wal::apply` — agreement between two implementations is the invariant.
fn shadow_replay(records: &[SRec]) -> BTreeMap<u64, SJob> {
    let mut live: BTreeMap<u64, SJob> = BTreeMap::new();
    for r in records {
        match r {
            SRec::Accepted { id, unix_ms, def } => {
                live.insert(
                    *id,
                    SJob {
                        unix_ms: *unix_ms,
                        attempt: 0,
                        state: state::QUEUED,
                        def: Some(def.clone()),
                        outcome: None,
                        error: None,
                    },
                );
            }
            SRec::Running { id, attempt } | SRec::Requeued { id, attempt } => {
                if let Some(j) = live.get_mut(id) {
                    j.attempt = *attempt;
                    // A crash mid-run and a crash mid-backoff recover the
                    // same way: the job goes back in the queue.
                    j.state = state::QUEUED;
                }
            }
            SRec::Done { id, outcome } => {
                if let Some(j) = live.get_mut(id) {
                    j.state = state::DONE;
                    j.outcome = Some(outcome.clone());
                    j.def = None;
                }
            }
            SRec::Failed { id, error } => {
                if let Some(j) = live.get_mut(id) {
                    j.state = state::FAILED;
                    j.error = Some(error.clone());
                    j.def = None;
                }
            }
            SRec::Cancelled { id } => {
                live.remove(id);
            }
            SRec::Delivered { id } => {
                let terminal = live
                    .get(id)
                    .is_some_and(|j| matches!(j.state, state::DONE | state::FAILED));
                if terminal {
                    live.remove(id);
                }
            }
        }
    }
    live
}

/// Compares the journal's recovered jobs against the shadow model.
fn diff(recovered: &[LiveJob], expected: &BTreeMap<u64, SJob>) -> Option<String> {
    if recovered.len() != expected.len() {
        return Some(format!(
            "recovered {} jobs, shadow model expects {} (recovered ids {:?}, expected ids {:?})",
            recovered.len(),
            expected.len(),
            recovered.iter().map(|j| j.id).collect::<Vec<_>>(),
            expected.keys().collect::<Vec<_>>(),
        ));
    }
    for job in recovered {
        let Some(want) = expected.get(&job.id) else {
            return Some(format!(
                "job {} recovered but never durably journalled",
                job.id
            ));
        };
        if job.state != want.state {
            return Some(format!(
                "job {} recovered in state {} but shadow model says {}",
                job.id, job.state, want.state
            ));
        }
        if job.accepted_unix_ms != want.unix_ms || job.attempt != want.attempt {
            return Some(format!(
                "job {} stamps diverge: recovered (ms {}, attempt {}) vs shadow (ms {}, attempt {})",
                job.id, job.accepted_unix_ms, job.attempt, want.unix_ms, want.attempt
            ));
        }
        let got_def = job.spec.as_ref().map(|s| s.def.clone());
        if got_def != want.def {
            return Some(format!(
                "job {} spec diverges after recovery: {:?} vs {:?}",
                job.id, got_def, want.def
            ));
        }
        if job.outcome != want.outcome {
            return Some(format!(
                "job {} would re-run to a divergent result: recovered outcome {:?} vs acknowledged {:?}",
                job.id, job.outcome, want.outcome
            ));
        }
        if job.error != want.error {
            return Some(format!(
                "job {} error text diverges: {:?} vs {:?}",
                job.id, job.error, want.error
            ));
        }
    }
    None
}

/// Drives `JOBS` random lifecycles through `wal`, mirroring every append
/// into a shadow log of `(end_offset, fsynced, record)`.
fn drive(wal: &Wal, rng: &mut ChaCha8Rng, base_ms: u64) -> Vec<(u64, bool, SRec)> {
    let mut log: Vec<(u64, bool, SRec)> = Vec::new();
    let push = |wal: &Wal, fsynced: bool, r: SRec, log: &mut Vec<(u64, bool, SRec)>| {
        log.push((wal.current_segment_len(), fsynced, r));
    };
    for id in 1..=JOBS {
        let unix_ms = base_ms + id;
        let spec = JobSpec {
            def: format!("DEF job-{id} seed-{}", rng.gen::<u32>()),
            deadline_ms: rng.gen_range(0..5_000),
            max_retries: rng.gen_range(0..3),
            seed: rng.gen(),
            ..JobSpec::default()
        };
        if wal.append_accepted(id, unix_ms, &spec).is_err() {
            continue;
        }
        push(
            wal,
            true,
            SRec::Accepted {
                id,
                unix_ms,
                def: spec.def.clone(),
            },
            &mut log,
        );
        let mut attempt = 0u32;
        // Walk a random number of claim/requeue rounds before the final
        // disposition so RUNNING/REQUEUED records land between the
        // fsynced ones.
        for _ in 0..rng.gen_range(0..3u32) {
            attempt += 1;
            wal.append_running(id, attempt);
            push(wal, false, SRec::Running { id, attempt }, &mut log);
            if rng.gen_bool(0.5) {
                wal.append_requeued(id, attempt);
                push(wal, false, SRec::Requeued { id, attempt }, &mut log);
            }
        }
        match rng.gen_range(0..5u32) {
            // Still queued at the crash.
            0 => {}
            1 | 2 => {
                let outcome = JobOutcome {
                    ok: rng.gen_bool(0.8),
                    def: format!("RESULT job-{id} {}", rng.gen::<u32>()),
                    stats: format!("{{\"job\":{id},\"n\":{}}}", rng.gen::<u16>()),
                };
                wal.append_done(id, &outcome);
                push(wal, true, SRec::Done { id, outcome }, &mut log);
                if rng.gen_bool(0.4) {
                    wal.append_delivered(id);
                    push(wal, false, SRec::Delivered { id }, &mut log);
                }
            }
            3 => {
                let error = format!("injected failure {}", rng.gen::<u16>());
                wal.append_failed(id, &error);
                push(wal, true, SRec::Failed { id, error }, &mut log);
                if rng.gen_bool(0.4) {
                    wal.append_delivered(id);
                    push(wal, false, SRec::Delivered { id }, &mut log);
                }
            }
            _ => {
                wal.append_cancelled(id);
                push(wal, true, SRec::Cancelled { id }, &mut log);
            }
        }
        // A stray DELIVERED for a non-terminal (or unknown) job must be
        // ignored by replay.
        if rng.gen_bool(0.1) {
            let stray = rng.gen_range(1..=JOBS + 2);
            wal.append_delivered(stray);
            push(wal, false, SRec::Delivered { id: stray }, &mut log);
        }
    }
    log
}

/// A scratch directory unique to this (seed, phase) so concurrent fuzz
/// processes never collide.
fn scratch_dir(seed: u64, phase: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "rlleg-fuzz-wal-{}-{seed:016x}-{phase}",
        std::process::id()
    ))
}

fn read_segment(dir: &Path) -> (std::path::PathBuf, Vec<u8>) {
    // The final (highest-numbered) segment is the only one a crash can
    // tear; earlier segments were sealed by a completed rotation.
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "wal"))
                .collect()
        })
        .unwrap_or_default();
    segs.sort();
    let path = segs.pop().unwrap_or_else(|| dir.join("seg-000000.wal"));
    let bytes = std::fs::read(&path).unwrap_or_default();
    (path, bytes)
}

/// Runs the crash-durability oracle for one scenario.
pub fn check(sc: &Scenario, seed: u64) -> Vec<Failure> {
    let mut failures = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base_ms = 1_700_000_000_000 + (seed % 1_000_000);

    // ---- Phase 1: kill at a seeded point; torn / garbage tail. ----
    let dir = scratch_dir(seed, "tail");
    let _ = std::fs::remove_dir_all(&dir);
    let log = match Wal::open(&dir, 1 << 20) {
        Ok((wal, recovered, _)) => {
            if !recovered.is_empty() {
                failures.push(fail(
                    sc,
                    format!("fresh journal recovered {} jobs", recovered.len()),
                    &[],
                ));
            }
            drive(&wal, &mut rng, base_ms)
        }
        Err(e) => {
            failures.push(fail(sc, format!("journal open failed: {e}"), &[]));
            let _ = std::fs::remove_dir_all(&dir);
            return failures;
        }
    };
    // The durability watermark: nothing at or below the last fsynced
    // record's end offset may be lost by a kill.
    let watermark = log
        .iter()
        .filter(|(_, fsynced, _)| *fsynced)
        .map(|(end, _, _)| *end)
        .max()
        .unwrap_or(0);
    let (seg_path, seg_bytes) = read_segment(&dir);
    let len = seg_bytes.len() as u64;
    let cut = rng.gen_range(watermark..=len);
    let mut survived = seg_bytes[..cut as usize].to_vec();
    if rng.gen_bool(0.5) {
        // Garbage past the cut: a torn rewrite instead of a clean
        // truncation. Replay must discard it just the same.
        let garbage: Vec<u8> = (0..rng.gen_range(1..48)).map(|_| rng.gen()).collect();
        survived.extend_from_slice(&garbage);
    }
    std::fs::write(&seg_path, &survived).expect("rewrite torn segment");

    let expected = shadow_replay(
        &log.iter()
            .filter(|(end, _, _)| *end <= cut)
            .map(|(_, _, r)| r.clone())
            .collect::<Vec<_>>(),
    );
    match Wal::open(&dir, 1 << 20) {
        Ok((_, recovered, _)) => {
            if let Some(msg) = diff(&recovered, &expected) {
                failures.push(fail(
                    sc,
                    format!("kill at byte {cut}/{len} (watermark {watermark}): {msg}"),
                    &survived,
                ));
            }
        }
        Err(e) => failures.push(fail(
            sc,
            format!("recovery open failed after kill at byte {cut}/{len}: {e}"),
            &survived,
        )),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Phase 2: kill inside the rotation crash window. ----
    let dir = scratch_dir(seed, "rot");
    let _ = std::fs::remove_dir_all(&dir);
    match Wal::open(&dir, 4096) {
        Ok((wal, _, _)) => {
            let log = drive(&wal, &mut rng, base_ms);
            let expected =
                shadow_replay(&log.iter().map(|(_, _, r)| r.clone()).collect::<Vec<_>>());
            // Crash window: the compacted segment exists, the old ones
            // were never deleted.
            if let Err(e) = wal.rotate(false) {
                failures.push(fail(sc, format!("rotation failed: {e}"), &[]));
            }
            drop(wal);
            for reopen in 0..2 {
                match Wal::open(&dir, 4096) {
                    Ok((w, recovered, report)) => {
                        if let Some(msg) = diff(&recovered, &expected) {
                            failures.push(fail(
                                sc,
                                format!("mid-rotation crash, reopen {reopen}: {msg}"),
                                &read_segment(&dir).1,
                            ));
                        }
                        if report.corrupt > 0 {
                            failures.push(fail(
                                sc,
                                format!(
                                    "mid-rotation crash, reopen {reopen}: {} corrupt records in a clean journal",
                                    report.corrupt
                                ),
                                &read_segment(&dir).1,
                            ));
                        }
                        drop(w);
                    }
                    Err(e) => {
                        failures.push(fail(
                            sc,
                            format!("mid-rotation recovery open failed (reopen {reopen}): {e}"),
                            &read_segment(&dir).1,
                        ));
                        break;
                    }
                }
            }
        }
        Err(e) => failures.push(fail(sc, format!("journal open failed: {e}"), &[])),
    }
    let _ = std::fs::remove_dir_all(&dir);

    failures
}
