//! Oracle 4: trainer/inference invariants.
//!
//! Cheap (every iteration): priorities form a probability simplex,
//! `values_batch` equals the per-state forward pass bit-for-bit,
//! `forward_policy` equals `forward_inference` logits, and environment
//! steps yield finite rewards. Deep (sampled iterations): a short A3C
//! training run must produce finite episode costs and finite parameters.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rl_legalizer::{train, CellWiseNet, LegalizeEnv, RlConfig};
use rlleg_design::{DesignBuilder, Technology};
use rlleg_geom::Point;

use crate::scenario::Scenario;
use crate::Failure;

/// Runs the network/trainer invariants. Deterministic in `nn_seed`.
pub fn check(sc: &Scenario, nn_seed: u64, deep: bool) -> Vec<Failure> {
    let mut rng = ChaCha8Rng::seed_from_u64(nn_seed);
    let mut failures = Vec::new();
    let fail = |msg: String, failures: &mut Vec<Failure>| {
        failures.push(Failure {
            oracle: "nn",
            scenario: sc.label.clone(),
            message: msg,
            artifact: None,
        });
    };

    let mut env = LegalizeEnv::new(sc.design.clone());
    let order = env.subepisode_order();
    let Some(&g0) = order.first() else {
        return failures;
    };
    let cells = env.remaining_in(g0);
    if cells.is_empty() {
        return failures;
    }
    let state = env.state(&cells);
    let net = CellWiseNet::new(rng.gen_range(8..=24usize), &mut rng);

    // Policy simplex: finite, non-negative, sums to 1.
    let p = net.priorities(&state);
    if p.len() != cells.len() {
        fail(
            format!("priorities length {} != {} cells", p.len(), cells.len()),
            &mut failures,
        );
    }
    if p.iter().any(|v| !v.is_finite() || *v < 0.0) {
        fail(format!("priorities not a simplex: {p:?}"), &mut failures);
    } else {
        let sum: f32 = p.iter().sum();
        if (sum - 1.0).abs() > 1e-4 {
            fail(format!("priorities sum to {sum}"), &mut failures);
        }
    }

    // Batched value evaluation must equal the per-state forward pass
    // exactly (same kernels, same accumulation order).
    let states = [&state, &state];
    let batched = net.values_batch(&states);
    for (i, s) in states.iter().enumerate() {
        let single = net.forward_inference(s).value;
        if batched[i] != single {
            fail(
                format!(
                    "values_batch[{i}] = {} != forward_inference value {single}",
                    batched[i]
                ),
                &mut failures,
            );
        }
    }

    // Policy-only path must match the full inference logits bit-for-bit.
    let logits_full = net.forward_inference(&state).logits;
    let logits_policy = net.forward_policy(&state);
    if logits_full != logits_policy {
        fail(
            "forward_policy diverges from forward_inference logits".into(),
            &mut failures,
        );
    }

    // Environment steps: rewards stay finite whatever cell is picked.
    let mut remaining = cells;
    for _ in 0..remaining.len().min(8) {
        let idx = rng.gen_range(0..remaining.len());
        let cell = remaining.swap_remove(idx);
        let outcome = env.step(cell);
        if !outcome.reward().is_finite() {
            fail(format!("non-finite reward stepping {cell}"), &mut failures);
            break;
        }
        if remaining.is_empty() {
            break;
        }
    }

    if deep {
        failures.extend(deep_train_check(sc, &mut rng));
    }
    failures
}

/// A short end-to-end training run on a tiny design: every recorded cost
/// and every final parameter must be finite.
fn deep_train_check(sc: &Scenario, rng: &mut ChaCha8Rng) -> Vec<Failure> {
    let mut failures = Vec::new();
    let mut b = DesignBuilder::new("fuzz_train", Technology::contest(), 20, 5);
    for i in 0..10i64 {
        b.add_cell(
            format!("t{i}"),
            1 + i % 2,
            1 + (i % 2) as u8,
            Point::new(i * 330 + 40, (i % 3) * 1_800 + 90),
        );
    }
    let design = b.build();
    let cfg = RlConfig {
        hidden_dim: 8,
        agents: 1,
        episodes: 2,
        pretrain_episodes: 0,
        seed: rng.gen(),
        ..RlConfig::small()
    };
    let result = train(std::slice::from_ref(&design), &cfg);
    for s in &result.history {
        if !s.cost.is_finite() {
            failures.push(Failure {
                oracle: "nn",
                scenario: sc.label.clone(),
                message: format!("non-finite training cost in episode {}", s.episode),
                artifact: None,
            });
        }
    }
    let mut model = result.model;
    if model.params_flat().iter().any(|v| !v.is_finite()) {
        failures.push(Failure {
            oracle: "nn",
            scenario: sc.label.clone(),
            message: "non-finite parameter after training".into(),
            artifact: None,
        });
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invariants_hold_on_a_small_design() {
        let mut b = DesignBuilder::new("nn", Technology::contest(), 20, 5);
        for i in 0..8i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 2,
                1,
                Point::new(i * 400, (i % 2) * 2_000),
            );
        }
        let sc = Scenario {
            label: "test:nn".into(),
            design: b.build(),
        };
        let failures = check(&sc, 17, true);
        assert!(failures.is_empty(), "{failures:?}");
    }
}
