//! Oracle 3: randomized op sequences on [`PixelGrid`] / [`SubGrid`]
//! cross-checked against the kept `*_reference` implementations.
//!
//! Ops: differential `check_place` (fast bitmap path vs per-pixel
//! reference, error-for-error), `place`/`remove` with occupancy
//! spot-checks, differential `find_position` (span-walk vs ring
//! enumeration), `extract_window` parity (the same window-restricted
//! search on a [`SubGrid`] snapshot and on the full grid must return the
//! identical position), and differential `for_each_free_span` (the u64×4
//! block scan vs a per-pixel scalar sweep, with window edges biased onto
//! 64-bit word boundaries).

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rlleg_design::CellId;
use rlleg_geom::Point;
use rlleg_legalize::{
    find_position, find_position_reference, GridPos, GridWindow, PixelGrid, SearchConfig,
};

use crate::scenario::Scenario;
use crate::Failure;

/// Ops per sequence.
const OPS: usize = 120;

/// Runs one randomized op sequence. Deterministic in `op_seed`.
pub fn check(sc: &Scenario, op_seed: u64) -> Vec<Failure> {
    let design = &sc.design;
    let mut rng = ChaCha8Rng::seed_from_u64(op_seed);
    let mut grid = PixelGrid::new(design);
    let movable: Vec<CellId> = design.movable_ids().collect();
    if movable.is_empty() {
        return Vec::new();
    }
    let mut unplaced = movable;
    let mut placed: Vec<(CellId, GridPos)> = Vec::new();
    let mut failures = Vec::new();
    let core_w = design.core.width();
    let core_h = design.core.height();

    let fail = |msg: String, failures: &mut Vec<Failure>| {
        failures.push(Failure {
            oracle: "grid",
            scenario: sc.label.clone(),
            message: msg,
            artifact: None,
        });
    };

    for op in 0..OPS {
        if !failures.is_empty() {
            break; // one sequence failure is enough; the shrinker takes over
        }
        match rng.gen_range(0..7u32) {
            // Differential check_place, then commit when legal.
            0 | 1 => {
                let Some(&cell) = unplaced.choose(&mut rng) else {
                    continue;
                };
                let pos = GridPos {
                    site: rng.gen_range(-2..grid.sites_x() + 2),
                    row: rng.gen_range(-2..grid.rows() + 2),
                };
                let fast = grid.check_place(design, cell, pos);
                let slow = grid.check_place_reference(design, cell, pos);
                if fast != slow {
                    fail(
                        format!(
                            "op {op}: check_place({cell}, {pos:?}) fast={fast:?} reference={slow:?}"
                        ),
                        &mut failures,
                    );
                    continue;
                }
                if fast.is_ok() {
                    grid.place(design, cell, pos);
                    unplaced.retain(|&c| c != cell);
                    placed.push((cell, pos));
                    if grid.occupant(pos.site, pos.row) != Some(cell) {
                        fail(
                            format!("op {op}: occupant after place({cell}) is not {cell}"),
                            &mut failures,
                        );
                    }
                }
            }
            // Remove a placed cell; its anchor pixel must free up.
            2 => {
                if placed.is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..placed.len());
                let (cell, pos) = placed.swap_remove(idx);
                grid.remove(design, cell, pos);
                unplaced.push(cell);
                if !grid.is_free(pos.site, pos.row) {
                    fail(
                        format!("op {op}: pixel still occupied after remove({cell})"),
                        &mut failures,
                    );
                }
            }
            // Differential diamond search from an arbitrary (possibly
            // off-core) start point.
            3 | 4 => {
                let Some(&cell) = unplaced.choose(&mut rng) else {
                    continue;
                };
                let from = Point::new(
                    rng.gen_range(-core_w / 2..=core_w + core_w / 2),
                    rng.gen_range(-core_h / 2..=core_h + core_h / 2),
                );
                let cfg = SearchConfig {
                    max_radius: if rng.gen_bool(0.5) {
                        Some(rng.gen_range(1..=10i64))
                    } else {
                        None
                    },
                    displacement_limit: if rng.gen_bool(0.3) {
                        Some(rng.gen_range(0..=4i64) * design.tech.row_height)
                    } else {
                        None
                    },
                    window: None,
                };
                let a = find_position(&grid, design, cell, from, cfg);
                let b = find_position_reference(&grid, design, cell, from, cfg);
                if a != b {
                    fail(
                        format!(
                            "op {op}: find_position({cell}, from=({}, {}), {cfg:?}) \
                             span-walk={a:?} reference={b:?}",
                            from.x, from.y
                        ),
                        &mut failures,
                    );
                }
            }
            // Differential band scan: the u64x4 block walk behind
            // for_each_free_span vs a per-pixel scalar sweep. Edges are
            // biased onto 64-bit word boundaries so lane clamps and
            // partial first/last words get exercised.
            5 => {
                let row = rng.gen_range(0..grid.rows());
                let h_rows = rng.gen_range(1..=(grid.rows() - row).min(4));
                let edge = |rng: &mut ChaCha8Rng| {
                    if rng.gen_bool(0.7) {
                        // Straddle a word boundary by a few sites.
                        let words = (grid.sites_x() / 64).max(1);
                        64 * rng.gen_range(0..=words) + rng.gen_range(-3..=3i64)
                    } else {
                        rng.gen_range(-4..grid.sites_x() + 4)
                    }
                };
                let (a, b) = (edge(&mut rng), edge(&mut rng));
                let (lo, hi) = (a.min(b), a.max(b) + 1);
                let mut fast = Vec::new();
                grid.for_each_free_span(row, h_rows, lo, hi, |s, e| fast.push((s, e)));
                let mut slow = Vec::new();
                let mut run: Option<i64> = None;
                for site in lo.max(0)..hi.min(grid.sites_x()) {
                    let free = (row..row + h_rows).all(|r| grid.is_free(site, r));
                    match (free, run) {
                        (true, None) => run = Some(site),
                        (false, Some(s)) => {
                            slow.push((s, site));
                            run = None;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = run {
                    slow.push((s, hi.min(grid.sites_x())));
                }
                if fast != slow {
                    fail(
                        format!(
                            "op {op}: free spans row={row} h={h_rows} [{lo}, {hi}) \
                             block-scan={fast:?} scalar={slow:?}"
                        ),
                        &mut failures,
                    );
                }
            }
            // SubGrid window snapshot parity: the same window-restricted
            // search must land on the identical pixel.
            _ => {
                let Some(&cell) = unplaced.choose(&mut rng) else {
                    continue;
                };
                let lo_site = rng.gen_range(0..grid.sites_x());
                let hi_site = rng.gen_range(lo_site + 1..=grid.sites_x());
                let lo_row = rng.gen_range(0..grid.rows());
                let hi_row = rng.gen_range(lo_row + 1..=grid.rows());
                let win = GridWindow {
                    lo_site,
                    lo_row,
                    hi_site,
                    hi_row,
                };
                let sub = grid.extract_window(design, win);
                let from = Point::new(rng.gen_range(0..core_w), rng.gen_range(0..core_h));
                let cfg = SearchConfig {
                    max_radius: None,
                    displacement_limit: None,
                    window: Some(win),
                };
                let a = find_position(&sub, design, cell, from, cfg);
                let b = find_position(&grid, design, cell, from, cfg);
                if a != b {
                    fail(
                        format!(
                            "op {op}: windowed search ({win:?}) on SubGrid={a:?} \
                             vs full grid={b:?}"
                        ),
                        &mut failures,
                    );
                }
            }
        }
    }

    let fr = grid.free_ratio();
    if !(0.0..=1.0).contains(&fr) {
        fail(format!("free_ratio {fr} outside [0, 1]"), &mut failures);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};

    #[test]
    fn op_sequences_hold_on_a_mixed_design() {
        let mut b = DesignBuilder::new("grid", Technology::contest(), 24, 6);
        for i in 0..16i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 3,
                1 + (i % 2) as u8,
                Point::new(i * 290, (i % 4) * 1_700),
            );
        }
        b.add_fixed_cell("m", 4, 2, Point::new(2_000, 2_000));
        let sc = Scenario {
            label: "test:grid".into(),
            design: b.build(),
        };
        for seed in 0..6 {
            let failures = check(&sc, seed);
            assert!(failures.is_empty(), "seed {seed}: {failures:?}");
        }
    }
}
