//! Oracle 7: the [`ParamStore`] seqlock protocol under real contention.
//!
//! The asynchronous trainer's correctness rests on two store guarantees
//! that no unit test can exercise as hard as a fuzzer: snapshots are never
//! **torn** (a mix of two published vectors), and the epoch returned with a
//! snapshot is never **stale or recycled** (no ABA — the epoch always names
//! exactly the publish whose bytes were read). The oracle runs writer and
//! reader threads against one store:
//!
//! - every publish fills the whole vector with one uniform stamp drawn from
//!   a shared counter incremented *inside* the publish closure — writers
//!   are serialized by the store, so stamp `k` is exactly epoch `k`;
//! - every reader snapshot must be uniform (torn reads show up as two
//!   distinct stamps in one vector), must carry `epoch == stamp` (ABA /
//!   version-coherence), and epochs must be monotone per reader.
//!
//! Case parameters (vector length, writer/reader counts, publish budget)
//! are drawn from the iteration RNG; failing cases serialize to a tiny
//! `key=value` text format replayed from `crates/fuzz/corpus/*.params`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rl_legalizer::ParamStore;

use crate::scenario::Scenario;
use crate::{Artifact, Failure};

/// One stress-case configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case {
    /// Parameter-vector length (off word boundaries on purpose sometimes).
    pub n: usize,
    /// Concurrent publisher threads (serialized inside the store).
    pub writers: usize,
    /// Concurrent snapshot threads.
    pub readers: usize,
    /// Total publishes across all writers.
    pub publishes: u64,
}

impl Case {
    /// Draws a case from the iteration RNG.
    pub fn draw(rng: &mut impl Rng) -> Self {
        Self {
            n: rng.gen_range(1..400),
            writers: rng.gen_range(1..3),
            readers: rng.gen_range(1..4),
            publishes: rng.gen_range(64..1_500),
        }
    }

    /// Serializes to the `.params` corpus format.
    pub fn to_text(self) -> String {
        format!(
            "n={}\nwriters={}\nreaders={}\npublishes={}\n",
            self.n, self.writers, self.readers, self.publishes
        )
    }

    /// Parses the `.params` corpus format (one `key=value` per line; `#`
    /// comments and blank lines ignored).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut case = Self {
            n: 0,
            writers: 1,
            readers: 1,
            publishes: 0,
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("bad line (expected key=value): {line:?}"))?;
            let value = value.trim();
            let parsed: u64 = value
                .parse()
                .map_err(|e| format!("bad value for {key}: {e}"))?;
            match key.trim() {
                "n" => case.n = parsed as usize,
                "writers" => case.writers = parsed as usize,
                "readers" => case.readers = parsed as usize,
                "publishes" => case.publishes = parsed,
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if case.n == 0 || case.writers == 0 || case.readers == 0 {
            return Err("n, writers, and readers must all be nonzero".into());
        }
        Ok(case)
    }
}

/// Runs the store invariants for one fuzz iteration. Deterministic in
/// `params_seed` up to thread scheduling — which is the point: the
/// *invariants* must hold under every interleaving.
pub fn check(sc: &Scenario, params_seed: u64) -> Vec<Failure> {
    let mut rng = ChaCha8Rng::seed_from_u64(params_seed);
    let case = Case::draw(&mut rng);
    stress(case)
        .into_iter()
        .map(|message| Failure {
            oracle: "params",
            scenario: sc.label.clone(),
            message,
            artifact: Some(Artifact::ParamsCase(case.to_text())),
        })
        .collect()
}

/// Replays a corpus `.params` case. A parse error is itself a failure (a
/// corrupted corpus file must not silently pass).
pub fn replay(text: &str) -> Vec<Failure> {
    let case = match Case::parse(text) {
        Ok(c) => c,
        Err(e) => {
            return vec![Failure {
                oracle: "params",
                scenario: "corpus".into(),
                message: format!("unparseable .params case: {e}"),
                artifact: None,
            }]
        }
    };
    stress(case)
        .into_iter()
        .map(|message| Failure {
            oracle: "params",
            scenario: format!("corpus:{case:?}"),
            message,
            artifact: Some(Artifact::ParamsCase(case.to_text())),
        })
        .collect()
}

/// The actual stress run: returns invariant-violation messages.
fn stress(case: Case) -> Vec<String> {
    let store = ParamStore::new(vec![0.0; case.n]);
    // Stamp source shared by all writers; incremented inside the publish
    // closure (under the store's writer lock), so stamp k ⇔ epoch k.
    let next_stamp = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let per_writer = case.publishes / case.writers as u64;

    std::thread::scope(|scope| {
        let store = &store;
        let next_stamp = &next_stamp;
        let done = &done;
        let violations = &violations;
        for w in 0..case.writers {
            scope.spawn(move || {
                for _ in 0..per_writer {
                    let epoch = store.update(|p| {
                        let stamp = next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
                        p.fill(stamp as f32);
                    });
                    // `update` holds the writer lock around the closure, so
                    // the epoch it returns must be the stamp just written.
                    let expected = next_stamp.load(Ordering::Relaxed);
                    if epoch > expected {
                        violations
                            .lock()
                            .unwrap()
                            .push(format!("writer {w}: epoch {epoch} beyond stamp {expected}"));
                    }
                }
                if w == 0 {
                    // Writer 0 waits for its siblings' stamps to settle
                    // before releasing the readers' final pass.
                    done.store(true, Ordering::Release);
                }
            });
        }
        for r in 0..case.readers {
            scope.spawn(move || {
                let mut snap = Vec::new();
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let epoch = store.read_into(&mut snap);
                    reads += 1;
                    let first = snap[0];
                    if snap.iter().any(|&x| x != first) {
                        violations.lock().unwrap().push(format!(
                            "reader {r}: torn snapshot at epoch {epoch}: \
                             {first} vs {:?}",
                            snap.iter().find(|&&x| x != first)
                        ));
                        break;
                    }
                    if first as u64 != epoch {
                        violations.lock().unwrap().push(format!(
                            "reader {r}: epoch {epoch} does not match stamp {first} (ABA)"
                        ));
                        break;
                    }
                    if epoch < last_epoch {
                        violations.lock().unwrap().push(format!(
                            "reader {r}: epoch went backwards: {last_epoch} -> {epoch}"
                        ));
                        break;
                    }
                    last_epoch = epoch;
                }
            });
        }
    });

    // Final state coherence: after all threads join, the snapshot must be
    // the very last stamp published.
    let last = next_stamp.load(Ordering::Relaxed);
    let mut v = violations.into_inner().unwrap();
    let final_snap = store.snapshot();
    if last > 0 && final_snap.iter().any(|&x| x as u64 != last) {
        v.push(format!(
            "final snapshot is not the last publish {last}: {:?}",
            &final_snap[..final_snap.len().min(4)]
        ));
    }
    if store.version() != last {
        v.push(format!(
            "final version {} != {} publishes",
            store.version(),
            last
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_text_round_trips() {
        let case = Case {
            n: 257,
            writers: 2,
            readers: 3,
            publishes: 1_000,
        };
        assert_eq!(Case::parse(&case.to_text()), Ok(case));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Case::parse("n=0\n").is_err());
        assert!(Case::parse("nonsense\n").is_err());
        assert!(Case::parse("n=1\nwhat=3\n").is_err());
    }

    #[test]
    fn clean_store_passes_the_stress() {
        let v = stress(Case {
            n: 65,
            writers: 2,
            readers: 2,
            publishes: 400,
        });
        assert!(v.is_empty(), "{v:?}");
    }
}
