//! Oracle 2: DEF/LEF round-trips are lossless, and mutated or truncated
//! inputs must return `Err` — never panic, hang, or index out of bounds.
//!
//! There is deliberately no `catch_unwind` here: the whole harness runs
//! panic-free by construction, so a parser panic aborts the fuzzer and is
//! itself the bug report (with the seed reproducing it).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use rlleg_design::def::{parse_def, parse_def_with_library, write_def};
use rlleg_design::lef::{Library, MacroDef, PinDef};
use rlleg_design::{Design, EdgeType, RailParity};
use rlleg_geom::Point;

use crate::scenario::Scenario;
use crate::{Artifact, Failure};

/// Mutated DEF inputs per iteration (×200 iterations ⇒ the 10k-input
/// acceptance budget).
const DEF_MUTATIONS: usize = 50;
/// Mutated LEF inputs per iteration.
const LEF_MUTATIONS: usize = 20;
/// Mutated library-backed DEF inputs per iteration.
const LIB_DEF_MUTATIONS: usize = 10;

/// Runs the round-trip and mutation checks for one scenario.
pub fn check(sc: &Scenario, rng: &mut ChaCha8Rng) -> Vec<Failure> {
    let mut failures = Vec::new();
    let tech = sc.design.tech.clone();

    // --- DEF round-trip: parse(write(d)) must reproduce d exactly. ---
    let def_text = write_def(&sc.design);
    match parse_def(&def_text, tech.clone()) {
        Err(e) => failures.push(Failure {
            oracle: "parse",
            scenario: sc.label.clone(),
            message: format!("round-trip DEF failed to parse: {e}"),
            artifact: Some(Artifact::Def(def_text.clone())),
        }),
        Ok(back) => {
            if let Some(msg) = design_mismatch(&sc.design, &back) {
                failures.push(Failure {
                    oracle: "parse",
                    scenario: sc.label.clone(),
                    message: format!("DEF round-trip lost information: {msg}"),
                    artifact: Some(Artifact::Def(def_text.clone())),
                });
            }
        }
    }

    // --- LEF round-trip on a library with fuzzed macros. ---
    let lib = random_library(&sc.design, rng);
    let lef_text = lib.to_lef();
    match Library::parse(&lef_text) {
        Err(e) => failures.push(Failure {
            oracle: "parse",
            scenario: sc.label.clone(),
            message: format!("round-trip LEF failed to parse: {e}"),
            artifact: Some(Artifact::Lef(lef_text.clone())),
        }),
        Ok(back) => {
            // `name` is informational and not round-tripped.
            if back.dbu_per_micron != lib.dbu_per_micron
                || back.site_width != lib.site_width
                || back.row_height != lib.row_height
                || back.macros != lib.macros
            {
                failures.push(Failure {
                    oracle: "parse",
                    scenario: sc.label.clone(),
                    message: "LEF round-trip lost information".into(),
                    artifact: Some(Artifact::Lef(lef_text.clone())),
                });
            }
        }
    }

    // --- Mutation / truncation fuzzing: any outcome but a panic is fine.
    for _ in 0..DEF_MUTATIONS {
        let mutated = mutate(&def_text, rng);
        let _ = parse_def(&mutated, tech.clone());
        telemetry::counter("fuzz.parse.def_inputs").inc();
    }
    for _ in 0..LEF_MUTATIONS {
        let mutated = mutate(&lef_text, rng);
        let _ = Library::parse(&mutated);
        telemetry::counter("fuzz.parse.lef_inputs").inc();
    }
    for _ in 0..LIB_DEF_MUTATIONS {
        let mutated = mutate(&def_text, rng);
        let _ = parse_def_with_library(&mutated, &lib, &tech);
        telemetry::counter("fuzz.parse.libdef_inputs").inc();
    }

    failures
}

/// Field-by-field comparison of a design and its DEF round-trip (the
/// scenario design is pre-legalization, so `pos == gp_pos` on both sides).
fn design_mismatch(orig: &Design, back: &Design) -> Option<String> {
    if orig.name != back.name {
        return Some("name".into());
    }
    if orig.core != back.core {
        return Some("core".into());
    }
    if orig.max_displacement != back.max_displacement {
        return Some("max_displacement".into());
    }
    if orig.regions != back.regions {
        return Some("regions".into());
    }
    if orig.num_cells() != back.num_cells() {
        return Some(format!(
            "cell count {} vs {}",
            orig.num_cells(),
            back.num_cells()
        ));
    }
    for (a, b) in orig.cells.iter().zip(back.cells.iter()) {
        if a.name != b.name
            || a.width != b.width
            || a.height_rows != b.height_rows
            || a.pos != b.pos
            || a.fixed != b.fixed
            || a.region != b.region
            || a.edge_left != b.edge_left
            || a.edge_right != b.edge_right
            || a.rail != b.rail
        {
            return Some(format!("cell `{}`", a.name));
        }
    }
    if orig.nets != back.nets {
        return Some("nets".into());
    }
    None
}

/// A library for the scenario's technology with a few randomized macros.
fn random_library(design: &Design, rng: &mut ChaCha8Rng) -> Library {
    let tech = &design.tech;
    let mut lib = Library::for_technology(tech);
    for i in 0..rng.gen_range(1..=3usize) {
        let h = rng.gen_range(1..=tech.max_height_rows);
        let pins = (0..rng.gen_range(0..=2usize))
            .map(|p| PinDef {
                name: format!("P{p}"),
                offset: Point::new(
                    rng.gen_range(0..=tech.site_width),
                    rng.gen_range(0..=tech.row_height / 2),
                ),
            })
            .collect();
        lib.add_macro(MacroDef {
            name: format!("FZ{i}"),
            width: rng.gen_range(1..=5i64) * tech.site_width,
            height_rows: h,
            edge_left: EdgeType(rng.gen_range(0..tech.edge_spacing_sites.len() as u8)),
            edge_right: EdgeType(rng.gen_range(0..tech.edge_spacing_sites.len() as u8)),
            rail: if rng.gen_bool(0.5) {
                RailParity::Even
            } else {
                RailParity::Odd
            },
            pins,
        });
    }
    lib
}

/// Junk tokens spliced into inputs: numeric extremes, non-finite floats,
/// structural tokens, degenerate master encodings, a stray quote.
const JUNK: &[&str] = &[
    "NaN",
    "inf",
    "-inf",
    "999999999999999999999999",
    "-9223372036854775808",
    "9223372036854775807",
    "1e308",
    "-0.00001",
    "(",
    ")",
    ";",
    "END",
    "DESIGN",
    "DIEAREA",
    "COMPONENTS",
    "MH_W0_H0",
    "MH_W-3_H1",
    "MH_W99999999999999999_H1",
    "MH_W1_H200",
    "\"unterminated",
    "#",
];

/// Applies 1–3 random corruption operators to `text`.
pub fn mutate(text: &str, rng: &mut ChaCha8Rng) -> String {
    let mut out = text.to_owned();
    for _ in 0..rng.gen_range(1..=3usize) {
        out = mutate_once(&out, rng);
    }
    out
}

fn mutate_once(text: &str, rng: &mut ChaCha8Rng) -> String {
    if text.is_empty() {
        return JUNK.choose(rng).expect("nonempty").to_string();
    }
    match rng.gen_range(0..6u32) {
        // Byte truncation (walked back to a char boundary).
        0 => {
            let mut k = rng.gen_range(0..text.len());
            while k > 0 && !text.is_char_boundary(k) {
                k -= 1;
            }
            text[..k].to_owned()
        }
        // Token deletion / duplication / replacement / swap / insertion.
        op => {
            let mut toks: Vec<String> = text.split_whitespace().map(str::to_owned).collect();
            if toks.is_empty() {
                return JUNK.choose(rng).expect("nonempty").to_string();
            }
            let i = rng.gen_range(0..toks.len());
            match op {
                1 => {
                    toks.remove(i);
                }
                2 => {
                    let t = toks[i].clone();
                    toks.insert(i, t);
                }
                3 => {
                    toks[i] = JUNK.choose(rng).expect("nonempty").to_string();
                }
                4 => {
                    let j = rng.gen_range(0..toks.len());
                    toks.swap(i, j);
                }
                _ => {
                    toks.insert(i, JUNK.choose(rng).expect("nonempty").to_string());
                }
            }
            toks.join(" ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rlleg_design::{DesignBuilder, Technology};

    fn tiny_scenario() -> Scenario {
        let mut b = DesignBuilder::new("rt", Technology::contest(), 16, 4);
        let a = b.add_cell("a", 2, 1, Point::new(70, 30));
        let c = b.add_cell("c", 1, 2, Point::new(900, 2_100));
        b.add_net("n0", vec![(a, 0, 0), (c, 100, 0)]);
        b.max_displacement(4_000);
        Scenario {
            label: "test:tiny".into(),
            design: b.build(),
        }
    }

    #[test]
    fn round_trips_and_mutations_hold_on_a_tiny_design() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let failures = check(&tiny_scenario(), &mut rng);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn mutate_always_changes_or_preserves_valid_utf8() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let base = write_def(&tiny_scenario().design);
        for _ in 0..200 {
            // The mutator must itself never panic and must produce strings
            // the tokenizer can walk.
            let m = mutate(&base, &mut rng);
            let _ = m.split_whitespace().count();
        }
    }
}
