//! Oracle 6: the serving wire protocol ([`rlleg_serve::proto`]) survives
//! hostile bytes.
//!
//! Invariants:
//!
//! 1. **Round-trip** — `decode(encode(f)) == f` for every frame shape,
//!    with the scenario's own DEF as the `Submit` payload;
//! 2. **Reassembly** — a [`FrameReader`] fed the concatenated encodings in
//!    adversarial chunk sizes (including byte-at-a-time) yields exactly
//!    the original frames, in order;
//! 3. **Truncation** — every strict prefix of a valid encoding decodes as
//!    [`ProtoError::Truncated`] (the one recoverable variant), so a slow
//!    sender can never be misread;
//! 4. **Corruption** — a single flipped payload byte is always caught by
//!    the CRC; arbitrary header/payload mutations, splices, and random
//!    garbage must return `Err` or a re-encodable `Ok` — never panic,
//!    hang, or over-read (no `catch_unwind`: a panic aborts the harness
//!    and *is* the bug report);
//! 5. **Caps** — a header declaring more than the reader's cap is
//!    rejected as [`ProtoError::Oversized`] without buffering the
//!    declared length.
//!
//! Failing inputs are written to the corpus as hex dumps
//! ([`Artifact::FrameHex`]) and replayed by `tests/corpus.rs`.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rlleg_design::def::write_def;
use rlleg_serve::proto::{
    decode_frame, encode_frame, Frame, FrameReader, JobKind, JobSpec, ProtoError, HEADER_LEN,
    MAX_FRAME,
};

use crate::scenario::Scenario;
use crate::{Artifact, Failure};

/// Mutated frame inputs per iteration.
const MUTATIONS: usize = 40;
/// Random-garbage inputs per iteration.
const GARBAGE: usize = 10;

/// Hex-encodes repro bytes for the corpus.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a corpus hex dump (whitespace tolerated).
pub fn from_hex(text: &str) -> Option<Vec<u8>> {
    let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.len().is_multiple_of(2) {
        return None;
    }
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).ok())
        .collect()
}

fn fail(sc: &Scenario, message: String, bytes: &[u8]) -> Failure {
    Failure {
        oracle: "proto",
        scenario: sc.label.clone(),
        message,
        artifact: Some(Artifact::FrameHex(to_hex(bytes))),
    }
}

/// The frame menagerie: every shape, with the scenario design riding in
/// the `Submit` payload so frame sizes track scenario sizes.
fn sample_frames(sc: &Scenario, rng: &mut ChaCha8Rng) -> Vec<Frame> {
    let spec = JobSpec {
        kind: match rng.gen_range(0..3) {
            0 => JobKind::Legalize,
            1 => JobKind::RlLegalize,
            _ => JobKind::Train,
        },
        tech: rng.gen_range(0..2),
        ordering: rng.gen_range(0..3),
        threads: rng.gen_range(0..5),
        hidden: rng.gen_range(1..64),
        episodes: rng.gen_range(0..100),
        seed: rng.gen(),
        max_steps: rng.gen_range(0..1_000),
        max_wall_ms: rng.gen_range(0..10_000),
        job_key: rng.gen(),
        def: write_def(&sc.design),
        ..JobSpec::default()
    };
    vec![
        Frame::Submit(spec),
        Frame::Query(rng.gen()),
        Frame::Cancel(rng.gen()),
        Frame::Ping,
        Frame::Shutdown,
        Frame::Accepted { job: rng.gen() },
        Frame::Rejected {
            code: rng.gen_range(1..5),
            reason: "shard full".into(),
        },
        Frame::Progress {
            job: rng.gen(),
            chunk: "{\"kind\":\"job.start\"}\n".into(),
        },
        Frame::Result {
            job: rng.gen(),
            ok: rng.gen(),
            def: "DESIGN d ; END DESIGN".into(),
            stats: "{\"cells\":1}".into(),
        },
        Frame::Error {
            message: "poisoned".into(),
        },
        Frame::Pong,
        Frame::Status {
            job: rng.gen(),
            state: rng.gen_range(0..6),
        },
    ]
}

/// Runs the protocol checks for one scenario, seeded by `seed`.
pub fn check(sc: &Scenario, seed: u64) -> Vec<Failure> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut failures = Vec::new();
    let frames = sample_frames(sc, &mut rng);
    let encodings: Vec<Vec<u8>> = frames.iter().map(encode_frame).collect();

    round_trip(sc, &frames, &encodings, &mut failures);
    reassembly(sc, &frames, &encodings, &mut rng, &mut failures);
    truncation(sc, &encodings, &mut rng, &mut failures);
    corruption(sc, &encodings, &mut rng, &mut failures);
    caps(sc, &encodings, &mut failures);
    failures
}

fn round_trip(sc: &Scenario, frames: &[Frame], encodings: &[Vec<u8>], out: &mut Vec<Failure>) {
    for (frame, bytes) in frames.iter().zip(encodings) {
        match decode_frame(bytes, MAX_FRAME) {
            Ok((back, n)) => {
                if &back != frame {
                    out.push(fail(sc, "frame round-trip changed the frame".into(), bytes));
                }
                if n != bytes.len() {
                    out.push(fail(
                        sc,
                        format!("decode consumed {n} of {} bytes", bytes.len()),
                        bytes,
                    ));
                }
            }
            Err(e) => out.push(fail(
                sc,
                format!("valid frame failed to decode: {e}"),
                bytes,
            )),
        }
    }
}

fn reassembly(
    sc: &Scenario,
    frames: &[Frame],
    encodings: &[Vec<u8>],
    rng: &mut ChaCha8Rng,
    out: &mut Vec<Failure>,
) {
    let stream: Vec<u8> = encodings.iter().flatten().copied().collect();
    let mut reader = FrameReader::new();
    let mut got = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        // Adversarial chunking: 1 byte, a few bytes, or a big gulp.
        let n = match rng.gen_range(0..3) {
            0 => 1,
            1 => rng.gen_range(1..=16),
            _ => rng.gen_range(1..=4096),
        }
        .min(stream.len() - pos);
        reader.push(&stream[pos..pos + n]);
        pos += n;
        loop {
            match reader.next_frame(MAX_FRAME) {
                Ok(Some(f)) => got.push(f),
                Ok(None) => break,
                Err(e) => {
                    out.push(fail(sc, format!("reassembly errored: {e}"), &stream));
                    return;
                }
            }
        }
    }
    if got.len() != frames.len() || got.iter().zip(frames).any(|(a, b)| a != b) {
        out.push(fail(
            sc,
            format!("reassembled {} frames, sent {}", got.len(), frames.len()),
            &stream,
        ));
    }
}

fn truncation(sc: &Scenario, encodings: &[Vec<u8>], rng: &mut ChaCha8Rng, out: &mut Vec<Failure>) {
    for bytes in encodings {
        // Exhaustive prefixes for small frames, sampled cuts for big ones
        // (the Submit frame carries the whole DEF).
        let cuts: Vec<usize> = if bytes.len() <= 64 {
            (0..bytes.len()).collect()
        } else {
            let mut c: Vec<usize> = (0..12).map(|_| rng.gen_range(0..bytes.len())).collect();
            c.extend([0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1]);
            c
        };
        for cut in cuts {
            match decode_frame(&bytes[..cut], MAX_FRAME) {
                Err(ProtoError::Truncated { needed }) => {
                    if needed <= cut {
                        out.push(fail(
                            sc,
                            format!("prefix {cut}: Truncated claims only {needed} bytes needed"),
                            &bytes[..cut],
                        ));
                    }
                }
                Err(e) => out.push(fail(
                    sc,
                    format!("prefix {cut} must read as Truncated, got {e}"),
                    &bytes[..cut],
                )),
                Ok(_) => out.push(fail(
                    sc,
                    format!("strict prefix {cut} decoded as a complete frame"),
                    &bytes[..cut],
                )),
            }
        }
    }
}

fn corruption(sc: &Scenario, encodings: &[Vec<u8>], rng: &mut ChaCha8Rng, out: &mut Vec<Failure>) {
    for _ in 0..MUTATIONS {
        let base = encodings.choose(rng).expect("non-empty");
        let mut bytes = base.clone();
        let kind = rng.gen_range(0..4);
        match kind {
            // Single payload-byte flip: the CRC must catch it.
            0 if bytes.len() > HEADER_LEN => {
                let i = rng.gen_range(HEADER_LEN..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8);
                if decode_frame(&bytes, MAX_FRAME).is_ok() {
                    out.push(fail(sc, format!("payload flip at {i} not caught"), &bytes));
                }
                continue;
            }
            // Header mutation (may produce a different *valid* frame —
            // the type byte is outside the CRC — so only require sanity).
            0 | 1 => {
                let i = rng.gen_range(0..HEADER_LEN.min(bytes.len()));
                bytes[i] ^= 1 << rng.gen_range(0..8);
            }
            // Truncate plus splice another frame's tail.
            2 => {
                let keep = rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
                let donor = encodings.choose(rng).expect("non-empty");
                let from = rng.gen_range(0..donor.len());
                bytes.extend_from_slice(&donor[from..]);
            }
            // Random insert.
            _ => {
                let at = rng.gen_range(0..=bytes.len());
                let junk: Vec<u8> = (0..rng.gen_range(1..16)).map(|_| rng.gen()).collect();
                bytes.splice(at..at, junk);
            }
        }
        // Any outcome but a panic/hang is fine; an `Ok` must re-encode to
        // something that decodes back equal (codec stays self-consistent).
        if let Ok((frame, _)) = decode_frame(&bytes, MAX_FRAME) {
            let re = encode_frame(&frame);
            match decode_frame(&re, MAX_FRAME) {
                Ok((back, _)) if back == frame => {}
                _ => out.push(fail(
                    sc,
                    "mutated-accepted frame not idempotent".into(),
                    &bytes,
                )),
            }
        }
        telemetry::counter("fuzz.proto.inputs").inc();
    }

    // Pure garbage through the streaming reader: must terminate with an
    // error or starvation, never a parsed frame of nonsense lengths.
    for _ in 0..GARBAGE {
        let junk: Vec<u8> = (0..rng.gen_range(1..512)).map(|_| rng.gen()).collect();
        let mut reader = FrameReader::new();
        reader.push(&junk);
        while let Ok(Some(_)) = reader.next_frame(MAX_FRAME) {}
        telemetry::counter("fuzz.proto.inputs").inc();
    }
}

fn caps(sc: &Scenario, encodings: &[Vec<u8>], out: &mut Vec<Failure>) {
    // Declare more than the cap: the reader must refuse before buffering.
    let big = encodings.iter().max_by_key(|b| b.len()).expect("non-empty");
    let small_cap = (big.len() - HEADER_LEN).saturating_sub(1).max(1);
    match decode_frame(big, small_cap) {
        Err(ProtoError::Oversized { declared, cap }) => {
            if declared <= cap {
                out.push(fail(sc, "Oversized with declared <= cap".into(), big));
            }
        }
        other => out.push(fail(
            sc,
            format!("over-cap frame must read as Oversized, got {other:?}"),
            big,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes = vec![0x00, 0x7f, 0xff, 0x52];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("52 4c\n53 46").unwrap(), b"RLSF".to_vec());
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }
}
