//! Oracle 1: every legalizer configuration must produce an empty
//! [`legality::check`] or an *explained* failure set, and parallel runs
//! must be bit-identical to `threads = 1`.
//!
//! "Explained" means every reported violation involves at least one cell
//! the run itself flagged as failed — a failed cell is left at its global
//! placement, so any overlap/off-grid/fence trouble it causes is an
//! expected consequence of the reported failure, while a violation among
//! *successfully legalized* cells is a legalizer bug.

use std::collections::HashSet;

use rlleg_design::{legality, CellId, Design};
use rlleg_legalize::{GcellGrid, Legalizer, Ordering, RunStats};

use crate::scenario::Scenario;
use crate::Failure;

/// Runs every (ordering × execution mode × thread count) configuration on
/// clones of the scenario design. Deterministic in `order_seed`.
pub fn check(sc: &Scenario, order_seed: u64) -> Vec<Failure> {
    let mut failures = Vec::new();
    let orderings = [
        ("size_desc", Ordering::SizeDescending),
        ("x_asc", Ordering::XAscending),
        ("random", Ordering::Random(order_seed)),
    ];

    for (oname, ordering) in &orderings {
        // Flat sequential run.
        {
            let mut d = sc.design.clone();
            let stats = Legalizer::new(&d).run(&mut d, ordering);
            explain(sc, &d, &stats, &format!("{oname}/flat"), &mut failures);
        }

        // Sequential per-Gcell run.
        let (nx, ny) = sc.design.default_gcell_grid();
        {
            let mut d = sc.design.clone();
            let gcells = GcellGrid::new(&d, nx, ny);
            let stats = Legalizer::new(&d).run_gcells(&mut d, ordering, &gcells);
            explain(sc, &d, &stats, &format!("{oname}/gcell"), &mut failures);
        }

        // Parallel runs: each must be explained AND bit-identical to the
        // single-threaded run (positions, legalized flags, failed set).
        let mut reference: Option<(Design, RunStats)> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut d = sc.design.clone();
            let gcells = GcellGrid::new(&d, nx, ny);
            let stats = Legalizer::new(&d).run_gcells_parallel(&mut d, ordering, &gcells, threads);
            explain(
                sc,
                &d,
                &stats,
                &format!("{oname}/parallel{threads}"),
                &mut failures,
            );
            match &reference {
                None => reference = Some((d, stats)),
                Some((d1, s1)) => {
                    if let Some(msg) = divergence(d1, s1, &d, &stats) {
                        failures.push(Failure {
                            oracle: "legalize",
                            scenario: sc.label.clone(),
                            message: format!(
                                "{oname}: parallel threads={threads} diverges from threads=1: {msg}"
                            ),
                            artifact: None,
                        });
                    }
                }
            }
        }
    }
    failures
}

/// Flags every violation that does not involve a failed cell.
fn explain(sc: &Scenario, d: &Design, stats: &RunStats, cfg: &str, failures: &mut Vec<Failure>) {
    let failed: HashSet<CellId> = stats.failed.iter().copied().collect();
    // Sanity: every movable cell is either legalized or reported failed.
    let accounted = stats.legalized + failed.len();
    if accounted != d.num_movable() {
        failures.push(Failure {
            oracle: "legalize",
            scenario: sc.label.clone(),
            message: format!(
                "{cfg}: stats account for {accounted} of {} movable cells",
                d.num_movable()
            ),
            artifact: None,
        });
    }
    for v in legality::check(d, true) {
        let involved_failed = match &v {
            legality::Violation::Overlap { a, b } => failed.contains(a) || failed.contains(b),
            legality::Violation::EdgeSpacing { left, right, .. } => {
                failed.contains(left) || failed.contains(right)
            }
            legality::Violation::OffSite { cell }
            | legality::Violation::OffRow { cell }
            | legality::Violation::OutsideCore { cell }
            | legality::Violation::RailParity { cell }
            | legality::Violation::FenceInside { cell }
            | legality::Violation::FenceOutside { cell, .. }
            | legality::Violation::MaxDisplacement { cell, .. }
            | legality::Violation::NotLegalized { cell } => failed.contains(cell),
        };
        if !involved_failed {
            failures.push(Failure {
                oracle: "legalize",
                scenario: sc.label.clone(),
                message: format!("{cfg}: unexplained violation: {v}"),
                artifact: None,
            });
        }
    }
}

/// First difference between two finished runs, if any.
fn divergence(d1: &Design, s1: &RunStats, d2: &Design, s2: &RunStats) -> Option<String> {
    if s1.legalized != s2.legalized || s1.failed != s2.failed {
        return Some(format!(
            "stats ({}, {} failed) vs ({}, {} failed)",
            s1.legalized,
            s1.failed.len(),
            s2.legalized,
            s2.failed.len()
        ));
    }
    for id in d1.cell_ids() {
        let a = d1.cell(id);
        let b = d2.cell(id);
        if a.pos != b.pos || a.legalized != b.legalized {
            return Some(format!(
                "cell {id} at ({}, {}) legalized={} vs ({}, {}) legalized={}",
                a.pos.x, a.pos.y, a.legalized, b.pos.x, b.pos.y, b.legalized
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlleg_design::{DesignBuilder, Technology};
    use rlleg_geom::Point;

    #[test]
    fn clean_small_design_passes_every_configuration() {
        let mut b = DesignBuilder::new("ok", Technology::contest(), 24, 6);
        for i in 0..12i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 2,
                1,
                Point::new(i * 350, (i % 3) * 1_900),
            );
        }
        let sc = Scenario {
            label: "test:clean".into(),
            design: b.build(),
        };
        assert!(check(&sc, 5).is_empty());
    }

    #[test]
    fn unexplained_violation_is_detected() {
        // A design whose "run" we fake: one overlap between two cells the
        // stats claim were both legalized.
        let mut b = DesignBuilder::new("bad", Technology::contest(), 20, 4);
        b.add_cell("a", 3, 1, Point::new(0, 0));
        b.add_cell("b", 3, 1, Point::new(200, 0));
        let mut d = b.build();
        for c in d.cells.iter_mut() {
            c.legalized = true;
        }
        let sc = Scenario {
            label: "test:bad".into(),
            design: d.clone(),
        };
        let stats = RunStats {
            legalized: 2,
            failed: Vec::new(),
            quarantined: Vec::new(),
        };
        let mut failures = Vec::new();
        explain(&sc, &d, &stats, "fake", &mut failures);
        assert!(
            failures.iter().any(|f| f.message.contains("unexplained")),
            "{failures:?}"
        );
    }
}
