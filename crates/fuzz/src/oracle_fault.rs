//! Oracle 5: fault injection — every injected fault must end in a
//! *completed* run, never a process abort.
//!
//! The other oracles establish what the pipeline does on hostile *inputs*;
//! this one establishes what it does when the pipeline *itself* misbehaves.
//! Each iteration injects one deterministic fault from each family and
//! checks the documented recovery contract:
//!
//! - **panic-at-Gcell** — a solver panic in the parallel Gcell path must be
//!   quarantined and retried on the sequential fallback, with every movable
//!   cell still accounted for;
//! - **checkpoint corruption** — a truncated / bit-flipped / version-skewed
//!   newest generation must make [`CheckpointStore::load_latest`] fall back
//!   to the previous valid one, and training must resume from it;
//! - **NaN-poisoned weights** — RL inference with a non-finite network must
//!   degrade to the size-ordered fallback and still legalize;
//! - **slow-solve stall** (sampled iterations — it costs real wall clock) —
//!   an injected inference stall must trip the wall-clock watchdog, not
//!   hang the run.
//!
//! The harness deliberately keeps no `catch_unwind` of its own: if recovery
//! fails and a panic (or abort) escapes, the fuzz process dies and *that*
//! is the signal.

use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use rl_legalizer::{
    CheckpointStore, DegradeReason, InferenceBudget, RlConfig, RlLegalizer, Trainer,
};
use rlleg_design::{legality, DesignBuilder, Technology};
use rlleg_geom::Point;
use rlleg_legalize::{fault, FaultPlan, GcellGrid, InferStall, Legalizer, Ordering};

use rl_legalizer::CellWiseNet;

use crate::scenario::Scenario;
use crate::Failure;

/// Runs the fault-injection invariants. Deterministic in `fault_seed`;
/// `deep` additionally runs the wall-clock stall case (real sleeps).
pub fn check(sc: &Scenario, fault_seed: u64, deep: bool) -> Vec<Failure> {
    let mut rng = ChaCha8Rng::seed_from_u64(fault_seed);
    let mut failures = Vec::new();
    check_panic_quarantine(sc, &mut rng, &mut failures);
    check_checkpoint_recovery(sc, &mut rng, &mut failures);
    check_nan_weights_degrade(sc, &mut rng, &mut failures);
    if deep {
        check_stall_watchdog(sc, &mut failures);
    }
    failures
}

fn fail(sc: &Scenario, msg: String, failures: &mut Vec<Failure>) {
    failures.push(Failure {
        oracle: "fault",
        scenario: sc.label.clone(),
        message: msg,
        artifact: None,
    });
}

/// Runs `f` with panic traces suppressed: the injected panics are expected
/// and would otherwise drown the fuzz log. The fault guard held by every
/// caller already serializes this process-global hook swap.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A panicking Gcell solve must be quarantined, retried sequentially, and
/// leave a complete, deterministic accounting of every movable cell.
fn check_panic_quarantine(sc: &Scenario, rng: &mut ChaCha8Rng, failures: &mut Vec<Failure>) {
    if sc.design.num_movable() == 0 {
        return;
    }
    let grid = GcellGrid::auto(&sc.design);
    let populated: Vec<usize> = (0..grid.len())
        .filter(|&g| !grid.cells_of(g).is_empty())
        .collect();
    let Some(&target) = populated.get(rng.gen_range(0..populated.len().max(1))) else {
        return;
    };
    let threads = [1usize, 2, 4][rng.gen_range(0..3)];

    let guard = fault::arm(FaultPlan {
        panic_at_gcell: Some(target),
        ..FaultPlan::default()
    });
    let (stats, design) = with_quiet_panics(|| {
        let mut d = sc.design.clone();
        let stats = Legalizer::new(&d).run_gcells_parallel(
            &mut d,
            &Ordering::SizeDescending,
            &grid,
            threads,
        );
        (stats, d)
    });
    drop(guard);

    if stats.quarantined != vec![target] {
        fail(
            sc,
            format!(
                "panic at gcell {target} (threads {threads}): quarantined {:?}",
                stats.quarantined
            ),
            failures,
        );
    }
    if stats.legalized + stats.failed.len() != design.num_movable() {
        fail(
            sc,
            format!(
                "panic at gcell {target}: {} legalized + {} failed != {} movable",
                stats.legalized,
                stats.failed.len(),
                design.num_movable()
            ),
            failures,
        );
    }
    if stats.is_complete() && !legality::is_legal(&design) {
        fail(
            sc,
            format!(
                "panic at gcell {target}: complete but illegal: {:?}",
                legality::check(&design, true).first()
            ),
            failures,
        );
    }
}

/// Corrupting the newest checkpoint generation (torn tail, bit flip, or
/// version skew) must leave the store recoverable from the previous one —
/// and training must actually resume from what was recovered.
fn check_checkpoint_recovery(sc: &Scenario, rng: &mut ChaCha8Rng, failures: &mut Vec<Failure>) {
    let mut b = DesignBuilder::new("fuzz_ckpt", Technology::contest(), 20, 5);
    for i in 0..8i64 {
        b.add_cell(
            format!("c{i}"),
            1 + i % 2,
            1,
            Point::new(i * 360 + 60, (i % 3) * 1_800 + 90),
        );
    }
    let designs = [b.build()];
    let cfg = RlConfig {
        hidden_dim: 8,
        agents: 1,
        episodes: 3,
        pretrain_episodes: 0,
        seed: rng.gen(),
        ..RlConfig::default()
    };
    let dir = std::env::temp_dir().join(format!(
        "rlleg-fuzz-ckpt-{}-{:x}",
        std::process::id(),
        rng.gen::<u64>()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = match CheckpointStore::new(&dir, 3) {
        Ok(s) => s,
        Err(e) => {
            fail(
                sc,
                format!("checkpoint store creation failed: {e}"),
                failures,
            );
            return;
        }
    };

    let mut t = Trainer::new(&designs, &cfg);
    t.run_episode();
    let good_state = t.state();
    if let Err(e) = store.save(&good_state) {
        fail(sc, format!("checkpoint save failed: {e}"), failures);
        return;
    }
    t.run_episode();
    if let Err(e) = store.save(&t.state()) {
        fail(sc, format!("checkpoint save failed: {e}"), failures);
        return;
    }

    // Corrupt the newest generation, one of three ways.
    let gens = store.generations();
    let Some((newest_seq, newest_path)) = gens.last().cloned() else {
        fail(sc, "no generations after two saves".into(), failures);
        return;
    };
    let mut bytes = std::fs::read(&newest_path).unwrap_or_default();
    let kind = rng.gen_range(0..3u8);
    match kind {
        0 => bytes.truncate(rng.gen_range(0..bytes.len())), // torn write
        1 => {
            let pos = rng.gen_range(20..bytes.len()); // body bit flip
            bytes[pos] ^= 1 << rng.gen_range(0..8u8);
        }
        _ => bytes[4] = bytes[4].wrapping_add(1), // version skew
    }
    if std::fs::write(&newest_path, &bytes).is_err() {
        fail(sc, "could not plant corrupt checkpoint".into(), failures);
        return;
    }

    match store.load_latest() {
        None => fail(
            sc,
            format!("corruption kind {kind} of gen {newest_seq} lost ALL generations"),
            failures,
        ),
        Some((seq, recovered)) => {
            if recovered != good_state {
                fail(
                    sc,
                    format!(
                        "corruption kind {kind}: recovered gen {seq} differs from what was saved"
                    ),
                    failures,
                );
            } else if let Ok(mut resumed) = Trainer::restore(&designs, &recovered) {
                while resumed.run_episode() {}
                if !resumed.done() {
                    fail(sc, "resumed trainer did not finish".into(), failures);
                }
            } else {
                fail(
                    sc,
                    format!("corruption kind {kind}: recovered state fails to restore"),
                    failures,
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A network whose weights are all NaN must degrade to the size-ordered
/// fallback — and still account for and legalize the design's cells.
fn check_nan_weights_degrade(sc: &Scenario, rng: &mut ChaCha8Rng, failures: &mut Vec<Failure>) {
    if sc.design.num_movable() == 0 {
        return;
    }
    let mut net = CellWiseNet::new(rng.gen_range(8..=16usize), rng);
    let poisoned = vec![f32::NAN; net.num_params()];
    net.set_params_flat(&poisoned);
    let mut d = sc.design.clone();
    let report = RlLegalizer::new(net).legalize(&mut d);
    if report.degraded != Some(DegradeReason::NonFiniteOutput) {
        fail(
            sc,
            format!("NaN weights: degraded = {:?}", report.degraded),
            failures,
        );
    }
    if report.legalized + report.failed.len() != d.num_movable() {
        fail(
            sc,
            format!(
                "NaN weights: {} legalized + {} failed != {} movable",
                report.legalized,
                report.failed.len(),
                d.num_movable()
            ),
            failures,
        );
    }
    if report.is_complete() && !legality::is_legal(&d) {
        fail(
            sc,
            format!(
                "NaN weights: complete but illegal: {:?}",
                legality::check(&d, true).first()
            ),
            failures,
        );
    }
}

/// An injected per-step stall must trip the wall-clock watchdog instead of
/// hanging; the run still finishes on the fallback path.
fn check_stall_watchdog(sc: &Scenario, failures: &mut Vec<Failure>) {
    let mut b = DesignBuilder::new("fuzz_stall", Technology::contest(), 24, 6);
    for i in 0..10i64 {
        b.add_cell(format!("s{i}"), 1 + i % 2, 1, Point::new(i * 320, 500));
    }
    let mut d = b.build();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let net = CellWiseNet::new(8, &mut rng);
    let _guard = fault::arm(FaultPlan {
        infer_stall: Some(InferStall {
            from_step: 1,
            sleep: Duration::from_millis(25),
        }),
        ..FaultPlan::default()
    });
    let report = RlLegalizer::new(net)
        .with_budget(InferenceBudget::wall(Duration::from_millis(10)))
        .legalize(&mut d);
    if report.degraded != Some(DegradeReason::WallClock) {
        fail(
            sc,
            format!("stalled inference: degraded = {:?}", report.degraded),
            failures,
        );
    }
    if !report.is_complete() {
        fail(
            sc,
            format!("stalled inference left failures: {:?}", report.failed),
            failures,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_scenario() -> Scenario {
        let mut b = DesignBuilder::new("fault", Technology::contest(), 20, 5);
        for i in 0..8i64 {
            b.add_cell(
                format!("u{i}"),
                1 + i % 2,
                1,
                Point::new(i * 400, (i % 2) * 2_000),
            );
        }
        Scenario {
            label: "test:fault".into(),
            design: b.build(),
        }
    }

    #[test]
    fn all_injected_faults_recover() {
        let sc = toy_scenario();
        for seed in 0..3u64 {
            let failures = check(&sc, seed, true);
            assert!(failures.is_empty(), "seed {seed}: {failures:?}");
        }
    }
}
