//! `rlleg-fuzz` CLI: seeded differential fuzzing across the pipeline.
//!
//! ```text
//! cargo run -p rlleg-fuzz -- --iters 200 --seed 1
//! cargo run -p rlleg-fuzz -- --iters 50 --seed 1 --corpus crates/fuzz/corpus
//! ```
//!
//! Exit code 0 when every iteration holds all invariants, 1 otherwise.
//! Failing iterations write their minimized repro artifacts into the
//! corpus directory (committed cases there double as regression tests via
//! `crates/fuzz/tests/corpus.rs`).

use std::io::Write as _;
use std::path::PathBuf;

use rlleg_fuzz::run_iteration_filtered;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("--help") || args.flag("-h") {
        eprintln!(
            "rlleg-fuzz: differential fuzzing across the legalization pipeline\n\
             \n\
             USAGE: rlleg-fuzz [--iters N] [--seed S] [--corpus DIR] [--only ORACLE] [--quiet]\n\
             \n\
             --iters N     iterations to run (default 100)\n\
             --seed S      base seed (default 1)\n\
             --corpus DIR  where failing repros are written (default crates/fuzz/corpus)\n\
             --only ORACLE run a single oracle: legalize|parse|grid|nn|fault|proto|params|gplace\n\
             --quiet       suppress the per-failure log lines"
        );
        return;
    }
    let iters: u64 = args.get("--iters", 100);
    let seed: u64 = args.get("--seed", 1);
    let corpus: PathBuf = PathBuf::from(args.get(
        "--corpus",
        String::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")),
    ));
    let quiet = args.flag("--quiet");
    let only = args.get("--only", String::new());
    let only = (!only.is_empty()).then_some(only);
    if let Some(o) = &only {
        if ![
            "legalize", "parse", "grid", "nn", "fault", "proto", "params", "gplace",
        ]
        .contains(&o.as_str())
        {
            eprintln!(
                "rlleg-fuzz: unknown oracle `{o}` (legalize|parse|grid|nn|fault|proto|params|gplace)"
            );
            std::process::exit(2);
        }
    }

    telemetry::enable();
    let t0 = std::time::Instant::now();
    let mut total_failures = 0usize;
    let mut failing_iters = 0u64;

    for iter in 0..iters {
        let failures = run_iteration_filtered(seed, iter, only.as_deref());
        if failures.is_empty() {
            continue;
        }
        failing_iters += 1;
        for (n, f) in failures.iter().enumerate() {
            total_failures += 1;
            if !quiet {
                eprintln!("iter {iter}: {f}");
            }
            if let Some(artifact) = &f.artifact {
                let stem = format!("fuzz_s{seed}_i{iter}_{n}");
                if let Err(e) = write_artifact(&corpus, &stem, f, artifact) {
                    eprintln!("iter {iter}: could not write repro {stem}: {e}");
                }
            }
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let per_oracle: Vec<String> = [
        "legalize", "parse", "grid", "nn", "fault", "proto", "params", "gplace",
    ]
    .iter()
    .map(|o| {
        let h = telemetry::histogram(
            &format!("fuzz.oracle.{o}.seconds"),
            telemetry::buckets::SECONDS,
        )
        .snapshot();
        format!("{o} p50 {:.1}ms", h.quantile(0.5) * 1e3)
    })
    .collect();
    println!(
        "rlleg-fuzz: {iters} iterations, seed {seed}, {elapsed:.1}s ({})",
        per_oracle.join(", ")
    );
    if total_failures == 0 {
        println!("rlleg-fuzz: all invariants held");
    } else {
        println!(
            "rlleg-fuzz: {total_failures} failures across {failing_iters} iterations; \
             repros in {}",
            corpus.display()
        );
        std::process::exit(1);
    }
}

fn write_artifact(
    dir: &std::path::Path,
    stem: &str,
    f: &rlleg_fuzz::Failure,
    artifact: &rlleg_fuzz::Artifact,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.{}", artifact.extension()));
    std::fs::write(&path, artifact.contents())?;
    let mut meta = std::fs::File::create(dir.join(format!("{stem}.txt")))?;
    writeln!(meta, "oracle: {}", f.oracle)?;
    writeln!(meta, "scenario: {}", f.scenario)?;
    writeln!(meta, "message: {}", f.message)?;
    Ok(())
}
