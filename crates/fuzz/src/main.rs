//! `rlleg-fuzz` CLI: seeded differential fuzzing across the pipeline.
//!
//! ```text
//! cargo run -p rlleg-fuzz -- --iters 200 --seed 1
//! cargo run -p rlleg-fuzz -- --iters 50 --seed 1 --corpus crates/fuzz/corpus
//! ```
//!
//! Exit code 0 when every iteration holds all invariants, 1 otherwise.
//! Failing iterations write their minimized repro artifacts into the
//! corpus directory (committed cases there double as regression tests via
//! `crates/fuzz/tests/corpus.rs`).

use std::io::Write as _;
use std::path::PathBuf;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rlleg_fuzz::{run_iteration_filtered, Artifact, Failure};
use rlleg_serve::job::{state, JobOutcome};
use rlleg_serve::proto::JobSpec;
use rlleg_serve::wal::Wal;

struct Args {
    raw: Vec<String>,
}

impl Args {
    fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }
}

fn main() {
    let args = Args::from_env();
    if args.flag("--help") || args.flag("-h") {
        eprintln!(
            "rlleg-fuzz: differential fuzzing across the legalization pipeline\n\
             \n\
             USAGE: rlleg-fuzz [--iters N] [--seed S] [--corpus DIR] [--only ORACLE] [--quiet]\n\
             \n\
             --iters N     iterations to run (default 100)\n\
             --seed S      base seed (default 1)\n\
             --corpus DIR  where failing repros are written (default crates/fuzz/corpus)\n\
             --only ORACLE run a single oracle: legalize|parse|grid|nn|fault|proto|params|gplace|wal\n\
             --quiet       suppress the per-failure log lines"
        );
        return;
    }
    if args.raw.iter().any(|a| a == "--wal-victim") {
        wal_victim_main(&args);
    }
    let iters: u64 = args.get("--iters", 100);
    let seed: u64 = args.get("--seed", 1);
    let corpus: PathBuf = PathBuf::from(args.get(
        "--corpus",
        String::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")),
    ));
    let quiet = args.flag("--quiet");
    let only = args.get("--only", String::new());
    let only = (!only.is_empty()).then_some(only);
    if let Some(o) = &only {
        if ![
            "legalize", "parse", "grid", "nn", "fault", "proto", "params", "gplace", "wal",
        ]
        .contains(&o.as_str())
        {
            eprintln!(
                "rlleg-fuzz: unknown oracle `{o}` \
                 (legalize|parse|grid|nn|fault|proto|params|gplace|wal)"
            );
            std::process::exit(2);
        }
    }

    telemetry::enable();
    let t0 = std::time::Instant::now();
    let mut total_failures = 0usize;
    let mut failing_iters = 0u64;

    for iter in 0..iters {
        let mut failures = run_iteration_filtered(seed, iter, only.as_deref());
        // The in-process wal oracle simulates kills; a sampled subset of
        // iterations also SIGKILLs a real child process mid-append and
        // audits the journal it left behind.
        let wants_wal = only.as_deref().is_none_or(|o| o == "wal");
        if wants_wal && iter.is_multiple_of(16) {
            failures.extend(wal_kill_check(seed, iter));
        }
        if failures.is_empty() {
            continue;
        }
        failing_iters += 1;
        for (n, f) in failures.iter().enumerate() {
            total_failures += 1;
            if !quiet {
                eprintln!("iter {iter}: {f}");
            }
            if let Some(artifact) = &f.artifact {
                let stem = format!("fuzz_s{seed}_i{iter}_{n}");
                if let Err(e) = write_artifact(&corpus, &stem, f, artifact) {
                    eprintln!("iter {iter}: could not write repro {stem}: {e}");
                }
            }
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let per_oracle: Vec<String> = [
        "legalize", "parse", "grid", "nn", "fault", "proto", "params", "gplace", "wal",
    ]
    .iter()
    .map(|o| {
        let h = telemetry::histogram(
            &format!("fuzz.oracle.{o}.seconds"),
            telemetry::buckets::SECONDS,
        )
        .snapshot();
        format!("{o} p50 {:.1}ms", h.quantile(0.5) * 1e3)
    })
    .collect();
    println!(
        "rlleg-fuzz: {iters} iterations, seed {seed}, {elapsed:.1}s ({})",
        per_oracle.join(", ")
    );
    if total_failures == 0 {
        println!("rlleg-fuzz: all invariants held");
    } else {
        println!(
            "rlleg-fuzz: {total_failures} failures across {failing_iters} iterations; \
             repros in {}",
            corpus.display()
        );
        std::process::exit(1);
    }
}

/// The deterministic result a victim job `id` produces — the parent
/// recomputes it to detect a divergent re-run after recovery.
fn victim_outcome(id: u64, seed: u64) -> JobOutcome {
    JobOutcome {
        ok: true,
        def: format!("RESULT-{id}-{seed}"),
        stats: format!("{{\"id\":{id}}}"),
    }
}

/// Child half of the kill test: journals job lifecycles as fast as it can,
/// reporting each *durably acknowledged* transition on stdout (`A`/`D`/`F`
/// after the fsynced append returns, `c` *before* a cancel append so the
/// parent can tell an unreported-but-persisted cancel from a lost job).
/// The parent SIGKILLs it at an arbitrary point; everything this process
/// printed must be recoverable from the journal it left behind.
fn wal_victim_main(args: &Args) -> ! {
    let dir = PathBuf::from(args.get("--wal-victim", String::new()));
    let seed: u64 = args.get("--seed", 1);
    let (wal, _, _) = Wal::open(&dir, 8192).expect("victim: journal open");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut say = |line: String| {
        // Line-by-line flush: anything the parent reads back was written
        // strictly after the corresponding fsync returned.
        writeln!(out, "{line}").expect("victim stdout");
        out.flush().expect("victim stdout flush");
    };
    for id in 1..=100_000u64 {
        let spec = JobSpec {
            def: format!("VICTIM-{id}-{seed}"),
            ..JobSpec::default()
        };
        wal.append_accepted(id, 1_700_000_000_000 + id, &spec)
            .expect("victim: accepted append");
        say(format!("A {id}"));
        wal.append_running(id, 1);
        match rng.gen_range(0..4u32) {
            0 => {} // left running: recovery must re-queue it
            1 => {
                wal.append_done(id, &victim_outcome(id, seed));
                say(format!("D {id}"));
            }
            2 => {
                wal.append_failed(id, "victim failure");
                say(format!("F {id}"));
            }
            _ => {
                say(format!("c {id}"));
                wal.append_cancelled(id);
                say(format!("C {id}"));
            }
        }
        wal.maybe_rotate();
    }
    std::process::exit(0);
}

/// Parent half: spawn the victim, SIGKILL it mid-stream at a seeded delay,
/// replay the journal it left, and hold the durability invariant — every
/// acknowledged job is re-queued or served with a bit-identical result;
/// none disappears, none diverges.
fn wal_kill_check(seed: u64, iter: u64) -> Vec<Failure> {
    let fail = |message: String, segment: Vec<u8>| Failure {
        oracle: "wal",
        scenario: format!("kill-victim i{iter}"),
        message,
        artifact: Some(Artifact::WalSegmentHex(rlleg_fuzz::oracle_proto::to_hex(
            &segment,
        ))),
    };
    let dir = std::env::temp_dir().join(format!(
        "rlleg-fuzz-walkill-{}-{seed}-{iter}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let child_seed = seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => return vec![fail(format!("current_exe: {e}"), Vec::new())],
    };
    let mut child = match std::process::Command::new(exe)
        .arg("--wal-victim")
        .arg(&dir)
        .arg("--seed")
        .arg(child_seed.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return vec![fail(format!("spawn victim: {e}"), Vec::new())],
    };
    // A seeded few milliseconds of journalling, then SIGKILL — no drain,
    // no flush, exactly the crash the journal exists for.
    std::thread::sleep(std::time::Duration::from_millis(2 + child_seed % 40));
    let _ = child.kill();
    let output = match child.wait_with_output() {
        Ok(o) => o,
        Err(e) => return vec![fail(format!("reap victim: {e}"), Vec::new())],
    };
    let ledger = String::from_utf8_lossy(&output.stdout).into_owned();
    let mut acked: Vec<u64> = Vec::new();
    let mut done = std::collections::BTreeSet::new();
    let mut failed = std::collections::BTreeSet::new();
    let mut cancel_intent = std::collections::BTreeSet::new();
    for line in ledger.lines() {
        let mut w = line.split_whitespace();
        let (Some(tag), Some(id)) = (w.next(), w.next().and_then(|s| s.parse::<u64>().ok())) else {
            continue;
        };
        match tag {
            "A" => acked.push(id),
            "D" => {
                done.insert(id);
            }
            "F" => {
                failed.insert(id);
            }
            "c" | "C" => {
                cancel_intent.insert(id);
            }
            _ => {}
        }
    }
    let segment = || {
        std::fs::read_dir(&dir)
            .ok()
            .and_then(|rd| {
                let mut segs: Vec<_> = rd.filter_map(Result::ok).map(|e| e.path()).collect();
                segs.sort();
                segs.pop()
            })
            .and_then(|p| std::fs::read(p).ok())
            .unwrap_or_default()
    };
    let mut failures = Vec::new();
    match Wal::open(&dir, 8192) {
        Ok((_, recovered, _)) => {
            let live: std::collections::BTreeMap<u64, _> =
                recovered.into_iter().map(|j| (j.id, j)).collect();
            for id in &acked {
                let Some(job) = live.get(id) else {
                    if !cancel_intent.contains(id) {
                        failures.push(fail(
                            format!("acknowledged job {id} lost after SIGKILL"),
                            segment(),
                        ));
                    }
                    continue;
                };
                if done.contains(id)
                    && (job.state != state::DONE
                        || job.outcome.as_ref() != Some(&victim_outcome(*id, child_seed)))
                {
                    failures.push(fail(
                        format!(
                            "job {id}: acknowledged result lost or divergent after SIGKILL \
                             (state {}, outcome {:?})",
                            job.state, job.outcome
                        ),
                        segment(),
                    ));
                }
                if failed.contains(id) && job.state != state::FAILED {
                    failures.push(fail(
                        format!(
                            "job {id}: acknowledged failure forgotten after SIGKILL (state {})",
                            job.state
                        ),
                        segment(),
                    ));
                }
                // Even when the DONE ack never reached the parent, a
                // recovered result must be the deterministic one — a
                // different outcome means the job ran twice and diverged.
                if job.state == state::DONE
                    && job.outcome.as_ref() != Some(&victim_outcome(*id, child_seed))
                {
                    failures.push(fail(
                        format!("job {id}: recovered outcome diverges: {:?}", job.outcome),
                        segment(),
                    ));
                }
            }
        }
        Err(e) => failures.push(fail(
            format!("recovery open failed after SIGKILL: {e}"),
            segment(),
        )),
    }
    let _ = std::fs::remove_dir_all(&dir);
    failures
}

fn write_artifact(
    dir: &std::path::Path,
    stem: &str,
    f: &rlleg_fuzz::Failure,
    artifact: &rlleg_fuzz::Artifact,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.{}", artifact.extension()));
    std::fs::write(&path, artifact.contents())?;
    let mut meta = std::fs::File::create(dir.join(format!("{stem}.txt")))?;
    writeln!(meta, "oracle: {}", f.oracle)?;
    writeln!(meta, "scenario: {}", f.scenario)?;
    writeln!(meta, "message: {}", f.message)?;
    Ok(())
}
