//! Replays every committed corpus case through the pipeline.
//!
//! - `*.def` — must parse to `Ok` or `Err` without panicking (these pin the
//!   parser bugs fixed by the fuzz PR: inverted region rects, degenerate /
//!   overtall / overflowing masters, truncated sections, zero-row dies);
//! - `*.lef` — same contract for `Library::parse` (truncated UNITS/SITE
//!   sections used to hang, overtall macros used to truncate silently);
//! - `*.json` — minimized failing designs; the legalize and grid oracles
//!   must hold on them at HEAD.

use std::path::PathBuf;

use rlleg_design::def::parse_def;
use rlleg_design::lef::Library;
use rlleg_design::{Design, Technology};
use rlleg_fuzz::{oracle_grid, oracle_legalize, scenario::Scenario};

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

fn corpus_files(ext: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|s| s.to_str()) == Some(ext))
        .collect();
    out.sort();
    out
}

#[test]
fn def_corpus_never_panics() {
    let files = corpus_files("def");
    assert!(!files.is_empty(), "no .def corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        // Every historical DEF repro must stay a clean `Err` (or a valid
        // design) under both technologies — panicking here reintroduces
        // the original bug.
        for tech in [Technology::contest(), Technology::nangate45()] {
            let _ = parse_def(&text, tech);
        }
    }
}

#[test]
fn def_corpus_cases_are_rejected_not_accepted() {
    // The committed DEF cases all encode *invalid* inputs; the parser must
    // reject them (an `Ok` would mean the validation regressed to silently
    // accepting garbage).
    for path in corpus_files("def") {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        assert!(
            parse_def(&text, Technology::contest()).is_err(),
            "{} unexpectedly parsed",
            path.display()
        );
    }
}

#[test]
fn lef_corpus_never_panics_or_hangs() {
    let files = corpus_files("lef");
    assert!(!files.is_empty(), "no .lef corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        assert!(
            Library::parse(&text).is_err(),
            "{} unexpectedly parsed",
            path.display()
        );
    }
}

#[test]
fn json_corpus_designs_hold_all_oracles() {
    for path in corpus_files("json") {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let design = Design::from_json(&text)
            .unwrap_or_else(|e| panic!("{} is not a design: {e}", path.display()));
        let sc = Scenario {
            label: format!("corpus:{}", path.display()),
            design,
        };
        for seed in [1u64, 2] {
            let mut failures = oracle_legalize::check(&sc, seed);
            failures.extend(oracle_grid::check(&sc, seed));
            assert!(
                failures.is_empty(),
                "{}: {:?}",
                path.display(),
                failures
                    .iter()
                    .map(|f| f.message.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
}
