//! Replays every committed corpus case through the pipeline.
//!
//! - `*.def` — must parse to `Ok` or `Err` without panicking (these pin the
//!   parser bugs fixed by the fuzz PR: inverted region rects, degenerate /
//!   overtall / overflowing masters, truncated sections, zero-row dies);
//! - `*.lef` — same contract for `Library::parse` (truncated UNITS/SITE
//!   sections used to hang, overtall macros used to truncate silently);
//! - `*.json` — minimized failing designs; the legalize, grid, and gplace
//!   oracles must hold on them at HEAD (`regress_gplace_fence_offdie`
//!   pins the placer writing fenced cells into an off-core fence rect,
//!   `regress_gplace_overwide_spread` pins the inverted-clamp panic on
//!   cells wider than the spreading grid); `regress_metrics_saturation`
//!   is exempt from the oracles and instead pins `Qor::measure` /
//!   `total_hpwl` saturating (not wrapping) on adversarial coordinates;
//! - `*.rlc` — damaged training checkpoints (torn write, body bit flip
//!   behind a valid header, version skew); `rl_legalizer::decode` must
//!   classify each one as the matching error, and a [`CheckpointStore`]
//!   containing one must fall back to the previous valid generation;
//! - `*.hex` — hostile serving-protocol byte streams (truncated headers,
//!   bad magic, CRC flips, declared-length overflows, trailing garbage);
//!   `decode_frame` must classify each as its pinned [`ProtoError`], and
//!   a byte-at-a-time [`FrameReader`] feed must never yield a frame;
//! - `*.params` — `ParamStore` contention cases (writer/reader counts,
//!   vector length, publish budget); the seqlock invariants — untorn
//!   snapshots, epoch/stamp coherence, monotone epochs — must hold on
//!   each replay;
//! - `*.wal` — hex dumps of write-ahead-journal segments left behind by a
//!   kill (`wal_truncated_tail.wal` pins a final record torn mid-payload);
//!   recovery must succeed without error, discard only the torn tail, and
//!   be idempotent across a second open.

use std::path::PathBuf;

use rl_legalizer::{decode, CheckpointError, CheckpointStore};
use rlleg_design::def::parse_def;
use rlleg_design::lef::Library;
use rlleg_design::{Design, Technology};
use rlleg_fuzz::{
    oracle_gplace, oracle_grid, oracle_legalize, oracle_params, oracle_proto, scenario::Scenario,
};
use rlleg_serve::proto::{decode_frame, FrameReader, ProtoError, MAX_FRAME};

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

fn corpus_files(ext: &str) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|s| s.to_str()) == Some(ext))
        .collect();
    out.sort();
    out
}

#[test]
fn def_corpus_never_panics() {
    let files = corpus_files("def");
    assert!(!files.is_empty(), "no .def corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        // Every historical DEF repro must stay a clean `Err` (or a valid
        // design) under both technologies — panicking here reintroduces
        // the original bug.
        for tech in [Technology::contest(), Technology::nangate45()] {
            let _ = parse_def(&text, tech);
        }
    }
}

#[test]
fn def_corpus_cases_are_rejected_not_accepted() {
    // The committed DEF cases all encode *invalid* inputs; the parser must
    // reject them (an `Ok` would mean the validation regressed to silently
    // accepting garbage).
    for path in corpus_files("def") {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        assert!(
            parse_def(&text, Technology::contest()).is_err(),
            "{} unexpectedly parsed",
            path.display()
        );
    }
}

#[test]
fn lef_corpus_never_panics_or_hangs() {
    let files = corpus_files("lef");
    assert!(!files.is_empty(), "no .lef corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        assert!(
            Library::parse(&text).is_err(),
            "{} unexpectedly parsed",
            path.display()
        );
    }
}

#[test]
fn rlc_corpus_checkpoints_are_classified_not_accepted() {
    let files = corpus_files("rlc");
    assert!(!files.is_empty(), "no .rlc corpus cases committed");
    for path in files {
        let bytes = std::fs::read(&path).expect("readable corpus file");
        let err = decode(&bytes).expect_err("damaged checkpoint must not decode");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        // Each committed case pins its specific failure classification: a
        // torn tail must read as truncation (not a CRC accident), a body
        // flip as a CRC mismatch, a future format as version skew.
        let ok = match name.as_str() {
            "ckpt_truncated.rlc" => matches!(err, CheckpointError::Truncated { .. }),
            "ckpt_bitflip_body.rlc" => matches!(err, CheckpointError::CrcMismatch { .. }),
            "ckpt_version_skew.rlc" => matches!(err, CheckpointError::VersionSkew { .. }),
            _ => true, // future cases: rejection alone is the contract
        };
        assert!(ok, "{name}: unexpected classification {err}");
    }
}

#[test]
fn rlc_corpus_never_defeats_generation_fallback() {
    // Plant each damaged corpus checkpoint as the *newest* generation on
    // top of one valid save: recovery must come back with the valid state.
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(3);
    let mut b = rlleg_design::DesignBuilder::new("corpus_ckpt", Technology::contest(), 20, 5);
    for i in 0..6i64 {
        b.add_cell(
            format!("c{i}"),
            1 + i % 2,
            1,
            rlleg_geom::Point::new(i * 400 + 60, 90),
        );
    }
    let designs = [b.build()];
    let cfg = rl_legalizer::RlConfig {
        hidden_dim: 8,
        agents: 1,
        episodes: 2,
        seed: rand::Rng::gen(&mut rng),
        ..rl_legalizer::RlConfig::default()
    };
    let mut t = rl_legalizer::Trainer::new(&designs, &cfg);
    t.run_episode();
    let saved = t.state();

    for path in corpus_files("rlc") {
        let dir = std::env::temp_dir().join(format!(
            "rlleg-corpus-rlc-{}-{}",
            std::process::id(),
            path.file_stem().unwrap().to_string_lossy()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 4).expect("store");
        store.save(&saved).expect("valid gen 1");
        std::fs::copy(&path, dir.join("ckpt-000002.rlc")).expect("plant corrupt gen 2");
        let (seq, recovered) = store
            .load_latest()
            .unwrap_or_else(|| panic!("{}: fallback lost all generations", path.display()));
        assert_eq!(seq, 1, "{}", path.display());
        assert_eq!(recovered, saved, "{}", path.display());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn hex_corpus_frames_are_classified_not_accepted() {
    let files = corpus_files("hex");
    assert!(!files.is_empty(), "no .hex corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let bytes = oracle_proto::from_hex(&text)
            .unwrap_or_else(|| panic!("{} is not valid hex", path.display()));
        let err = decode_frame(&bytes, MAX_FRAME).expect_err("hostile bytes must not decode");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        // Each committed case pins its classification: a cut header must
        // read as recoverable truncation, a payload flip as a CRC
        // mismatch, a 4 GiB declared length as Oversized (refused before
        // buffering), and structurally-broken payloads as Malformed.
        let ok = match name.as_str() {
            "proto_truncated_header.hex" => matches!(err, ProtoError::Truncated { .. }),
            "proto_bad_magic.hex" => matches!(err, ProtoError::BadMagic),
            "proto_unknown_type.hex" => matches!(err, ProtoError::UnknownType(0x7f)),
            "proto_crc_bitflip.hex" => matches!(err, ProtoError::CrcMismatch { .. }),
            "proto_len_overflow.hex" => matches!(err, ProtoError::Oversized { .. }),
            "proto_trailing_garbage.hex"
            | "proto_spec_version_skew.hex"
            | "proto_unknown_job_kind.hex" => {
                matches!(err, ProtoError::Malformed(_))
            }
            _ => true, // future cases: rejection alone is the contract
        };
        assert!(ok, "{name}: unexpected classification {err}");

        // Byte-at-a-time through the streaming reader: may starve or
        // error, must never produce a frame (or panic / spin).
        let mut reader = FrameReader::new();
        let mut poisoned = false;
        for b in &bytes {
            if poisoned {
                break;
            }
            reader.push(std::slice::from_ref(b));
            match reader.next_frame(MAX_FRAME) {
                Ok(Some(f)) => panic!("{name}: streamed a frame out of garbage: {f:?}"),
                Ok(None) => {}
                Err(_) => poisoned = true,
            }
        }
    }
}

#[test]
fn wal_corpus_segments_recover_without_error_and_idempotently() {
    let files = corpus_files("wal");
    assert!(!files.is_empty(), "no .wal corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let bytes = oracle_proto::from_hex(&text)
            .unwrap_or_else(|| panic!("{} is not valid hex", path.display()));
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let dir = std::env::temp_dir().join(format!(
            "rlleg-corpus-wal-{}-{}",
            std::process::id(),
            path.file_stem().unwrap().to_string_lossy()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("corpus scratch dir");
        std::fs::write(dir.join("seg-000001.wal"), &bytes).expect("plant segment");
        let (wal, recovered, report) = rlleg_serve::wal::Wal::open(&dir, 1 << 20)
            .unwrap_or_else(|e| panic!("{name}: recovery must not error: {e}"));
        if name == "wal_truncated_tail.wal" {
            // The committed case ends in a record cut mid-payload: exactly
            // one torn tail, no corrupt records, and the complete prefix
            // replays.
            assert_eq!(report.torn_tail, 1, "{name}: torn tail not detected");
            assert_eq!(report.corrupt, 0, "{name}: clean prefix read as corrupt");
            assert!(report.records > 0, "{name}: complete records discarded");
        }
        drop(wal);
        let (_, recovered2, report2) = rlleg_serve::wal::Wal::open(&dir, 1 << 20)
            .unwrap_or_else(|e| panic!("{name}: second recovery must not error: {e}"));
        assert_eq!(
            recovered.len(),
            recovered2.len(),
            "{name}: recovery is not idempotent"
        );
        assert_eq!(report2.torn_tail, 0, "{name}: compaction left a torn tail");
        assert_eq!(report2.corrupt, 0, "{name}: compaction left corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn params_corpus_cases_hold_the_store_invariants() {
    let files = corpus_files("params");
    assert!(!files.is_empty(), "no .params corpus cases committed");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let failures = oracle_params::replay(&text);
        assert!(
            failures.is_empty(),
            "{}: {:?}",
            path.display(),
            failures
                .iter()
                .map(|f| f.message.clone())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn json_corpus_designs_hold_all_oracles() {
    for path in corpus_files("json") {
        // The saturation case deliberately carries near-i64::MAX positions
        // that no placement/legalization oracle is specified over; it is
        // replayed by `json_metrics_saturation_case_saturates` instead.
        if path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().starts_with("regress_metrics"))
        {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let design = Design::from_json(&text)
            .unwrap_or_else(|e| panic!("{} is not a design: {e}", path.display()));
        let sc = Scenario {
            label: format!("corpus:{}", path.display()),
            design,
        };
        for seed in [1u64, 2] {
            let mut failures = oracle_legalize::check(&sc, seed);
            failures.extend(oracle_grid::check(&sc, seed));
            failures.extend(oracle_gplace::check(&sc, seed));
            assert!(
                failures.is_empty(),
                "{}: {:?}",
                path.display(),
                failures
                    .iter()
                    .map(|f| f.message.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn json_metrics_saturation_case_saturates() {
    telemetry::enable();
    let path = corpus_dir().join("regress_metrics_saturation.json");
    let text = std::fs::read_to_string(&path).expect("committed saturation case");
    let design = Design::from_json(&text).expect("saturation case is a design");
    // Spans between the near-extreme cells overflow i64; the metrics must
    // clamp to the Dbu extremes (wrapping here used to flip HPWL negative)
    // and count the event.
    let before = saturation_count();
    let total = rlleg_design::metrics::total_hpwl(&design);
    assert_eq!(total, i64::MAX, "overflowing HPWL must saturate");
    let qor = rlleg_design::metrics::Qor::measure(&design);
    assert!(qor.hpwl >= 0 && qor.total_displacement >= 0 && qor.max_displacement >= 0);
    assert!(
        saturation_count() > before,
        "saturation must be counted in telemetry"
    );
}

fn saturation_count() -> u64 {
    telemetry::snapshot()
        .counters
        .get("design.metrics_saturated")
        .copied()
        .unwrap_or(0)
}
