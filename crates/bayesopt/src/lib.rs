//! Gaussian-process Bayesian optimization with expected improvement.
//!
//! The paper tunes its network dimension and RL hyperparameters (learning
//! rate, discount, batch size, loss coefficients) with Bayesian
//! optimization, capped at 50 iterations (Sec. III-E-3). This crate is that
//! optimizer: an RBF-kernel [`gp::GaussianProcess`] surrogate plus
//! expected-improvement acquisition over random candidates, for
//! **minimization** of a black-box objective.
//!
//! # Example
//!
//! ```
//! use rlleg_bayesopt::BayesOpt;
//!
//! // Minimize (x-0.3)² + (y-0.7)² over the unit square.
//! let mut opt = BayesOpt::new(vec![(0.0, 1.0), (0.0, 1.0)], 42);
//! for _ in 0..30 {
//!     let x = opt.suggest();
//!     let y = (x[0] - 0.3f64).powi(2) + (x[1] - 0.7f64).powi(2);
//!     opt.observe(x, y);
//! }
//! let (best_x, best_y) = opt.best().expect("observations exist");
//! assert!(best_y < 0.05, "found {best_y} at {best_x:?}");
//! ```

#![warn(missing_docs)]

pub mod gp;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gp::GaussianProcess;

/// Standard normal probability density.
fn norm_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7, plenty for acquisition ranking).
fn norm_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// A sequential Bayesian optimizer (minimization).
#[derive(Debug, Clone)]
pub struct BayesOpt {
    bounds: Vec<(f64, f64)>,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    rng: ChaCha8Rng,
    /// Number of purely random warm-up suggestions.
    pub init_points: usize,
    /// Random candidates scored per EI maximization.
    pub candidates: usize,
}

impl BayesOpt {
    /// Creates an optimizer over `bounds` (one `(lo, hi)` pair per
    /// dimension).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or any `lo >= hi`.
    pub fn new(bounds: Vec<(f64, f64)>, seed: u64) -> Self {
        assert!(!bounds.is_empty(), "need at least one dimension");
        assert!(
            bounds.iter().all(|&(lo, hi)| lo < hi),
            "bounds must be increasing"
        );
        Self {
            bounds,
            xs: Vec::new(),
            ys: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            init_points: 5,
            candidates: 512,
        }
    }

    fn random_point(&mut self) -> Vec<f64> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| self.rng.gen_range(lo..hi))
            .collect()
    }

    fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(&self.bounds)
            .map(|(v, &(lo, hi))| (v - lo) / (hi - lo))
            .collect()
    }

    /// Proposes the next point to evaluate: random during warm-up, then the
    /// expected-improvement maximizer over random candidates.
    pub fn suggest(&mut self) -> Vec<f64> {
        if self.xs.len() < self.init_points {
            return self.random_point();
        }
        let unit_xs: Vec<Vec<f64>> = self.xs.iter().map(|x| self.to_unit(x)).collect();
        let gp = GaussianProcess::fit(unit_xs, &self.ys, 0.25, 1e-3);
        let best = self.ys.iter().copied().fold(f64::INFINITY, f64::min);
        let mut best_cand = self.random_point();
        let mut best_ei = f64::NEG_INFINITY;
        for _ in 0..self.candidates {
            let cand = self.random_point();
            let (mu, sd) = gp.predict(&self.to_unit(&cand));
            let z = (best - mu) / sd;
            let ei = (best - mu) * norm_cdf(z) + sd * norm_pdf(z);
            if ei > best_ei {
                best_ei = ei;
                best_cand = cand;
            }
        }
        best_cand
    }

    /// Records an evaluated point.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong dimensionality or `y` is not finite.
    pub fn observe(&mut self, x: Vec<f64>, y: f64) {
        assert_eq!(x.len(), self.bounds.len(), "dimensionality mismatch");
        assert!(y.is_finite(), "objective must be finite");
        self.xs.push(x);
        self.ys.push(y);
    }

    /// The best observation so far, `(x, y)`.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        let (i, y) = self
            .ys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))?;
        Some((&self.xs[i], *y))
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_sane() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(norm_cdf(3.0) > 0.99);
        assert!(norm_cdf(-3.0) < 0.01);
        assert!((norm_cdf(1.0) - 0.8413).abs() < 1e-3);
    }

    #[test]
    fn beats_random_search_on_rosenbrock_like() {
        // 2-D quadratic valley; compare best-after-25 against pure random
        // with the same budget and seed.
        let f = |x: &[f64]| (x[0] - 0.8f64).powi(2) * 4.0 + (x[1] - 0.2f64).powi(2);
        let mut opt = BayesOpt::new(vec![(0.0, 1.0), (0.0, 1.0)], 7);
        for _ in 0..25 {
            let x = opt.suggest();
            let y = f(&x);
            opt.observe(x, y);
        }
        let (_, bo_best) = opt.best().expect("has data");

        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut rand_best = f64::INFINITY;
        for _ in 0..25 {
            let x = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            rand_best = rand_best.min(f(&x));
        }
        assert!(bo_best <= rand_best, "BO {bo_best} vs random {rand_best}");
        assert!(bo_best < 0.05);
    }

    #[test]
    fn handles_one_dimension_and_flat_objective() {
        let mut opt = BayesOpt::new(vec![(0.0, 10.0)], 1);
        for _ in 0..12 {
            let x = opt.suggest();
            opt.observe(x, 1.0); // flat
        }
        let (_, y) = opt.best().expect("data");
        assert_eq!(y, 1.0);
        assert_eq!(opt.len(), 12);
    }

    #[test]
    #[should_panic(expected = "bounds must be increasing")]
    fn rejects_bad_bounds() {
        let _ = BayesOpt::new(vec![(1.0, 1.0)], 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_observations() {
        let mut opt = BayesOpt::new(vec![(0.0, 1.0)], 0);
        opt.observe(vec![0.5], f64::NAN);
    }
}
