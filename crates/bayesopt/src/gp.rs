//! A small Gaussian-process regressor with an RBF kernel.

/// Gaussian process with an isotropic RBF kernel and additive noise,
/// fitted by Cholesky decomposition.
///
/// Inputs are expected to be scaled to the unit hypercube by the caller
/// (the optimizer does this), so a single length scale is adequate.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    /// Cholesky factor L of (K + noise²·I).
    chol: Vec<Vec<f64>>,
    /// α = (K + noise²·I)⁻¹ y
    alpha: Vec<f64>,
    length_scale: f64,
    signal: f64,
    noise: f64,
}

fn rbf(a: &[f64], b: &[f64], length_scale: f64, signal: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    signal * signal * (-0.5 * d2 / (length_scale * length_scale)).exp()
}

/// Cholesky decomposition of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor, or `None` when the matrix is not
/// positive definite (callers then increase the noise term).
pub fn cholesky(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for (lik, ljk) in l[i][..j].to_vec().iter().zip(&l[j][..j]) {
                sum -= lik * ljk;
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Some(l)
}

fn solve_lower(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    x
}

fn solve_upper_t(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    // Solves Lᵀ x = b given lower-triangular L.
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in (i + 1)..n {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    x
}

impl GaussianProcess {
    /// Fits a GP to `(xs, ys)`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` have different lengths or are empty.
    pub fn fit(xs: Vec<Vec<f64>>, ys: &[f64], length_scale: f64, noise: f64) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit a GP to no data");
        let n = xs.len();
        let signal = {
            let mean = ys.iter().sum::<f64>() / n as f64;
            let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64;
            var.sqrt().max(1e-6)
        };
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                k[i][j] = rbf(&xs[i], &xs[j], length_scale, signal);
            }
        }
        // Increase jitter until the kernel matrix is positive definite.
        let mut jitter = noise * noise;
        let chol = loop {
            let mut kj = k.clone();
            for (i, row) in kj.iter_mut().enumerate() {
                row[i] += jitter;
            }
            if let Some(l) = cholesky(&kj) {
                break l;
            }
            jitter = (jitter * 10.0).max(1e-10);
        };
        let tmp = solve_lower(&chol, ys);
        let alpha = solve_upper_t(&chol, &tmp);
        Self {
            xs,
            chol,
            alpha,
            length_scale,
            signal,
            noise,
        }
    }

    /// Posterior mean and standard deviation at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| rbf(xi, x, self.length_scale, self.signal))
            .collect();
        let mean: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        let v = solve_lower(&self.chol, &kstar);
        let kxx = rbf(x, x, self.length_scale, self.signal) + self.noise * self.noise;
        let var = (kxx - v.iter().map(|vi| vi * vi).sum::<f64>()).max(1e-12);
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_reconstructs() {
        let a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let l = cholesky(&a).expect("spd");
        // L Lᵀ = A
        for i in 0..2 {
            for j in 0..2 {
                let v: f64 = (0..2).map(|k| l[i][k] * l[j][k]).sum();
                assert!((v - a[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = [1.0, -1.0, 2.0];
        let gp = GaussianProcess::fit(xs.clone(), &ys, 0.3, 1e-4);
        for (x, y) in xs.iter().zip(&ys) {
            let (mean, sd) = gp.predict(x);
            assert!((mean - y).abs() < 0.05, "mean {mean} vs {y}");
            assert!(sd < 0.1, "low uncertainty at data: {sd}");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = [0.0, 0.1];
        let gp = GaussianProcess::fit(xs, &ys, 0.2, 1e-4);
        let (_, sd_near) = gp.predict(&[0.05]);
        let (_, sd_far) = gp.predict(&[1.0]);
        assert!(sd_far > sd_near * 2.0, "near {sd_near} far {sd_far}");
    }
}
