//! End-to-end, chaos, and determinism tests for the job server.
//!
//! Everything runs over real loopback sockets against an in-process
//! server. The chaos cases (kill mid-job, checkpoint corruption,
//! slow-loris clients, oversized frames) must all end clean: jobs may
//! fail, the server may reap a connection, but nothing ever wedges.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rlleg_benchgen::{find_spec, generate};
use rlleg_design::def::{parse_def, write_def};
use rlleg_design::{legality, Technology};
use rlleg_serve::client::{Client, ClientError};
use rlleg_serve::job::state;
use rlleg_serve::proto::{self, flags, Frame, FrameReader, JobKind, JobSpec};
use rlleg_serve::server::{ServeConfig, Server, ServerHandle};

const TIMEOUT: Duration = Duration::from_secs(120);

fn small_def(scale: f64) -> String {
    // Contest family: parses back under the JobSpec-default tech (0).
    let spec = find_spec("fft_2_md2").expect("spec").scaled(scale);
    write_def(&generate(&spec))
}

fn start(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> (ServerHandle, std::path::PathBuf) {
    let data_dir =
        std::env::temp_dir().join(format!("rlleg-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut cfg = ServeConfig {
        data_dir: data_dir.clone(),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    (Server::start(cfg).expect("start server"), data_dir)
}

#[test]
fn loopback_job_round_trip_and_graceful_shutdown() {
    let (handle, dir) = start("rt", |_| {});
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    client.ping(TIMEOUT).expect("ping");
    let spec = JobSpec {
        def: small_def(0.002),
        ..JobSpec::default()
    };
    let result = client.run(&spec, TIMEOUT).expect("round trip");
    assert!(result.ok, "stats: {}", result.stats);
    assert!(
        result.progress.contains("job.parsed") && result.progress.contains("job.done"),
        "progress stream must carry journal events: {:?}",
        &result.progress[..result.progress.len().min(200)]
    );
    let d = parse_def(&result.def, Technology::contest()).expect("parse result");
    assert!(
        legality::check(&d, false).is_empty(),
        "result must be legal"
    );
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sixty_four_concurrent_sessions_none_wedged() {
    // Capacity 16x16 = 256: all 64 jobs fit without backpressure, so
    // every session must complete — a missing result is a wedge.
    let (handle, dir) = start("many", |c| {
        c.shards = 16;
        c.shard_depth = 16;
    });
    let addr = handle.addr();
    let def = small_def(0.002);
    let sessions: Vec<_> = (0..64)
        .map(|s| {
            let def = def.clone();
            std::thread::spawn(move || -> Result<bool, String> {
                let mut client =
                    Client::connect(addr, TIMEOUT).map_err(|e| format!("connect: {e}"))?;
                let spec = JobSpec {
                    seed: s as u64,
                    def,
                    ..JobSpec::default()
                };
                let r = client
                    .run(&spec, TIMEOUT)
                    .map_err(|e| format!("run: {e}"))?;
                Ok(r.ok)
            })
        })
        .collect();
    let mut ok = 0;
    for (i, s) in sessions.into_iter().enumerate() {
        match s.join().expect("session thread") {
            Ok(true) => ok += 1,
            Ok(false) => panic!("session {i} job reported failure"),
            Err(e) => panic!("session {i} wedged or errored: {e}"),
        }
    }
    assert_eq!(ok, 64, "every concurrent session must complete");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn result_is_byte_identical_alone_and_under_concurrency() {
    let def = small_def(0.002);
    let probe = JobSpec {
        seed: 42,
        ordering: 2, // seeded random: the most order-sensitive path
        def: def.clone(),
        ..JobSpec::default()
    };

    // Run the probe job alone.
    let (handle, dir) = start("det-alone", |_| {});
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let alone = client.run(&probe, TIMEOUT).expect("alone run");
    assert!(alone.ok);
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);

    // Run it again while 8 other jobs churn on the same server.
    let (handle, dir) = start("det-busy", |c| {
        c.shards = 8;
        c.shard_depth = 8;
    });
    let addr = handle.addr();
    let churn: Vec<_> = (0..8)
        .map(|s| {
            let def = def.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, TIMEOUT).expect("connect");
                let spec = JobSpec {
                    seed: 1_000 + s as u64,
                    ordering: 2,
                    def,
                    ..JobSpec::default()
                };
                c.run(&spec, TIMEOUT).expect("churn job")
            })
        })
        .collect();
    let mut client = Client::connect(addr, TIMEOUT).expect("connect");
    let busy = client.run(&probe, TIMEOUT).expect("busy run");
    for t in churn {
        // Churn jobs exist to create concurrency; seeded-random ordering may
        // legitimately leave violations (ok=false), but every job must
        // complete — a missing result means a wedged session.
        let _ = t.join().expect("churn thread");
    }
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(busy.ok);
    assert_eq!(
        alone.def, busy.def,
        "result DEF must be byte-identical alone vs under concurrency"
    );
}

#[test]
fn chaos_kill_mid_job_fails_the_job_not_the_server() {
    let (handle, dir) = start("kill", |c| c.chaos_enabled = true);
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let spec = JobSpec {
        flags: flags::CHAOS_PANIC,
        def: small_def(0.002),
        ..JobSpec::default()
    };
    let job = client.submit(&spec, TIMEOUT).expect("accepted");
    let result = client.wait_result(job, TIMEOUT).expect("terminal result");
    assert!(!result.ok, "a killed job must report failure");
    assert!(
        result.stats.contains("panicked") || result.stats.contains("chaos"),
        "stats: {}",
        result.stats
    );
    // The server survived: a healthy job still runs end to end.
    let healthy = client
        .run(
            &JobSpec {
                def: small_def(0.002),
                ..JobSpec::default()
            },
            TIMEOUT,
        )
        .expect("healthy job after the kill");
    assert!(healthy.ok);
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_checkpoint_corruption_still_resumes_training() {
    let (handle, dir) = start("ckpt", |c| {
        c.chaos_enabled = true;
        c.ckpt_every = 1;
    });
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let key = 0xC0FFEE_u64;
    // Phase 1: training job is chaos-killed after >= 1 checkpointed
    // episode.
    let killed = client
        .run(
            &JobSpec {
                kind: JobKind::Train,
                episodes: 4,
                hidden: 8,
                job_key: key,
                flags: flags::CHAOS_PANIC,
                def: small_def(0.002),
                ..JobSpec::default()
            },
            TIMEOUT,
        )
        .expect("killed training job");
    assert!(!killed.ok, "chaos-killed training must fail");

    // Phase 2: corrupt the newest checkpoint generation on disk.
    let ckpt_dir = dir.join(format!("ckpt-{key:016x}"));
    let mut files: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    files.sort();
    let newest = files.last().expect("at least one checkpoint");
    let mut bytes = std::fs::read(newest).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(newest, &bytes).expect("corrupt checkpoint");

    // Phase 3: resubmit without chaos — must resume from a surviving
    // generation (the store skips the corrupted newest one) and finish.
    let resumed = client
        .run(
            &JobSpec {
                kind: JobKind::Train,
                episodes: 4,
                hidden: 8,
                job_key: key,
                def: small_def(0.002),
                ..JobSpec::default()
            },
            TIMEOUT,
        )
        .expect("resumed training job");
    assert!(resumed.ok, "stats: {}", resumed.stats);
    assert!(
        resumed.stats.contains("\"resumed_from_episode\":")
            && !resumed.stats.contains("\"resumed_from_episode\":0,"),
        "must resume from a checkpointed episode: {}",
        resumed.stats
    );
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_loris_is_reaped_and_server_stays_responsive() {
    let (handle, dir) = start("loris", |c| {
        c.idle_timeout = Duration::from_millis(200);
    });
    // The attacker: sends half a frame header, then goes silent.
    let mut loris = TcpStream::connect(handle.addr()).expect("connect");
    loris.write_all(b"RLSF\x01\x10").expect("half a header");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // The server must reap the stalled connection: the next read sees EOF.
    let mut buf = [0u8; 64];
    let start_wait = Instant::now();
    loop {
        match loris.read(&mut buf) {
            Ok(0) => break, // reaped
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                break
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
        assert!(
            start_wait.elapsed() < Duration::from_secs(30),
            "stalled connection was never reaped"
        );
    }
    // A well-behaved client is unaffected.
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    client.ping(TIMEOUT).expect("server responsive after loris");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_frame_is_rejected_cleanly() {
    let (handle, dir) = start("big", |c| c.max_frame = 64 * 1024);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // A header declaring a 1 MiB payload against a 64 KiB cap.
    let mut wire = Vec::new();
    wire.extend_from_slice(&proto::MAGIC);
    wire.push(0x01);
    wire.extend_from_slice(&(1u32 << 20).to_le_bytes());
    wire.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&wire).expect("send header");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    // The server answers REJECTED(OVERSIZED) and closes — without ever
    // buffering the declared payload.
    let mut reader = FrameReader::new();
    let mut got = None;
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                reader.push(&chunk[..n]);
                if let Ok(Some(f)) = reader.next_frame(proto::MAX_FRAME) {
                    got = Some(f);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                break
            }
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
    match got {
        Some(Frame::Rejected { code, .. }) => assert_eq!(code, proto::reject::OVERSIZED),
        other => panic!("expected Rejected(OVERSIZED), got {other:?}"),
    }
    // Server is still healthy.
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    client
        .ping(TIMEOUT)
        .expect("responsive after oversized frame");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backpressure_rejects_with_queue_full() {
    // One shard, depth 1, and a single executor: the first job occupies
    // the executor, the second sits queued, the third must bounce.
    let (handle, dir) = start("busy", |c| {
        c.shards = 1;
        c.shard_depth = 1;
        c.executors = 1;
    });
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let slow = JobSpec {
        kind: JobKind::Train,
        episodes: 5,
        hidden: 8,
        def: small_def(0.002),
        ..JobSpec::default()
    };
    let _running = client.submit(&slow, TIMEOUT).expect("first accepted");
    let _queued = client.submit(&slow, TIMEOUT).expect("second queued");
    let mut rejected = false;
    for _ in 0..20 {
        match client.submit(&slow, TIMEOUT) {
            Err(ClientError::Rejected { code, .. }) if code == proto::reject::QUEUE_FULL => {
                rejected = true;
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(rejected, "a full shard must answer QUEUE_FULL");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_stops_a_waiting_job_from_running() {
    let (handle, dir) = start("cancel", |c| {
        c.shards = 1;
        c.shard_depth = 4;
        c.executors = 1;
    });
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let slow = JobSpec {
        kind: JobKind::Train,
        episodes: 20,
        hidden: 8,
        def: small_def(0.002),
        ..JobSpec::default()
    };
    let _running = client.submit(&slow, TIMEOUT).expect("first");
    let queued = client.submit(&slow, TIMEOUT).expect("second");
    let st = client.cancel(queued, TIMEOUT).expect("cancel confirmed");
    assert_eq!(st, state::CANCELLED, "queued job must cancel");
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_persists_undelivered_results() {
    let (handle, dir) = start("drain", |_| {});
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    // A multi-episode training job: long enough that the server sees the
    // client leave (next tick) well before the job finishes.
    let job = client
        .submit(
            &JobSpec {
                kind: JobKind::Train,
                episodes: 10,
                hidden: 8,
                def: small_def(0.002),
                ..JobSpec::default()
            },
            TIMEOUT,
        )
        .expect("accepted");
    // Walk away without collecting the result, then drain the server.
    drop(client);
    handle.shutdown_graceful();
    let def_path = dir.join(format!("job-{job}.def"));
    let stats_path = dir.join(format!("job-{job}.stats.json"));
    assert!(
        def_path.exists(),
        "undelivered result must be persisted on drain"
    );
    assert!(stats_path.exists(), "stats must be persisted on drain");
    let model = std::fs::read_to_string(&def_path).expect("read drained result");
    assert!(
        !model.is_empty(),
        "drained training result must carry the model"
    );
    let stats = std::fs::read_to_string(&stats_path).expect("read drained stats");
    assert!(stats.contains("\"episodes\":10"), "stats: {stats}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_adapter_serves_health_jobs_and_metrics() {
    let (handle, dir) = start("http", |_| {});
    let addr = handle.addr();
    let http = |request: String| -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(request.as_bytes()).expect("send");
        s.set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let mut out = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::BrokenPipe =>
                {
                    break
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    };

    let health = http("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".into());
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert!(health.contains("\"ok\":true"));

    let def = small_def(0.002);
    let submit = http(format!(
        "POST /jobs?seed=5 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{def}",
        def.len()
    ));
    assert!(submit.starts_with("HTTP/1.1 202"), "submit: {submit}");
    let body = submit.split("\r\n\r\n").nth(1).expect("body");
    let id: u64 = body
        .trim()
        .trim_start_matches("{\"job\":")
        .trim_end_matches('}')
        .parse()
        .expect("job id");

    // Poll until done.
    let t0 = Instant::now();
    loop {
        let status = http(format!("GET /jobs/{id} HTTP/1.1\r\nHost: x\r\n\r\n"));
        if status.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            !status.contains("\"state\":\"failed\""),
            "job failed: {status}"
        );
        assert!(t0.elapsed() < TIMEOUT, "job never finished: {status}");
        std::thread::sleep(Duration::from_millis(50));
    }
    let def_resp = http(format!("GET /jobs/{id}/def HTTP/1.1\r\nHost: x\r\n\r\n"));
    assert!(def_resp.starts_with("HTTP/1.1 200"), "def: {def_resp}");
    let def_text = def_resp.split("\r\n\r\n").nth(1).expect("def body");
    let d = parse_def(def_text, Technology::contest()).expect("def parses");
    assert!(legality::check(&d, false).is_empty());

    let metrics = http("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".into());
    assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
    assert!(metrics.contains("counters"));

    let missing = http("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n".into());
    assert!(missing.starts_with("HTTP/1.1 404"));

    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gplace_job_over_http_and_unknown_kind_is_400() {
    let (handle, dir) = start("gphttp", |_| {});
    let addr = handle.addr();
    let http = |request: String| -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(request.as_bytes()).expect("send");
        s.set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        let mut out = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionReset
                        || e.kind() == std::io::ErrorKind::BrokenPipe =>
                {
                    break
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    };

    let def = small_def(0.002);
    // Regression pin: an unrecognized kind is a 400 error response, never
    // a connection drop or a panic.
    let bad = http(format!(
        "POST /jobs?kind=warp HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{def}",
        def.len()
    ));
    assert!(bad.starts_with("HTTP/1.1 400"), "bad kind: {bad}");

    let submit = http(format!(
        "POST /jobs?kind=gplace&seed=3 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{def}",
        def.len()
    ));
    assert!(submit.starts_with("HTTP/1.1 202"), "submit: {submit}");
    let body = submit.split("\r\n\r\n").nth(1).expect("body");
    let id: u64 = body
        .trim()
        .trim_start_matches("{\"job\":")
        .trim_end_matches('}')
        .parse()
        .expect("job id");

    let t0 = Instant::now();
    let status = loop {
        let status = http(format!("GET /jobs/{id} HTTP/1.1\r\nHost: x\r\n\r\n"));
        if status.contains("\"state\":\"done\"") {
            break status;
        }
        assert!(
            !status.contains("\"state\":\"failed\""),
            "job failed: {status}"
        );
        assert!(t0.elapsed() < TIMEOUT, "job never finished: {status}");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        status.contains("gp_hpwl"),
        "gplace stats must surface the placement wirelength: {status}"
    );
    let def_resp = http(format!("GET /jobs/{id}/def HTTP/1.1\r\nHost: x\r\n\r\n"));
    assert!(def_resp.starts_with("HTTP/1.1 200"), "def: {def_resp}");
    let def_text = def_resp.split("\r\n\r\n").nth(1).expect("def body");
    let d = parse_def(def_text, Technology::contest()).expect("def parses");
    assert!(legality::check(&d, false).is_empty());

    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rl_job_over_the_wire_respects_budget() {
    let (handle, dir) = start("rl", |_| {});
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let result = client
        .run(
            &JobSpec {
                kind: JobKind::RlLegalize,
                hidden: 8,
                max_steps: 2,
                def: small_def(0.002),
                ..JobSpec::default()
            },
            TIMEOUT,
        )
        .expect("rl job");
    assert!(result.ok, "stats: {}", result.stats);
    assert!(
        result.stats.contains("StepBudget"),
        "budget degradation must be reported: {}",
        result.stats
    );
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the real `rlleg-serve` binary over `data_dir` and parses the
/// bound address off its banner (flushed before any work, so a later
/// SIGKILL cannot hide it).
fn spawn_server(data_dir: &std::path::Path) -> (std::process::Child, std::net::SocketAddr) {
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_rlleg-serve"))
        .args(["--addr", "127.0.0.1:0", "--executors", "2", "--data-dir"])
        .arg(data_dir)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("child exited before banner")
            .expect("read banner");
        if let Some(rest) = line.strip_prefix("rlleg-serve listening on ") {
            break rest.trim().parse().expect("banner addr");
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn http_to(addr: std::net::SocketAddr, request: String) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(request.as_bytes()).expect("send");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut out = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                break
            }
            Err(e) => panic!("read: {e}"),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn poll_done(addr: std::net::SocketAddr, id: u64) -> String {
    let t0 = Instant::now();
    loop {
        let st = http_to(addr, format!("GET /jobs/{id} HTTP/1.1\r\nHost: x\r\n\r\n"));
        if st.contains("\"state\":\"done\"") {
            return st;
        }
        assert!(
            !st.contains("\"state\":\"failed\"") && !st.contains("\"state\":\"cancelled\""),
            "job {id} failed: {st}"
        );
        assert!(t0.elapsed() < TIMEOUT, "job {id} never finished: {st}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn sigkill_restart_recovers_every_acknowledged_http_job() {
    let data_dir =
        std::env::temp_dir().join(format!("rlleg-serve-e2e-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let (mut child, addr) = spawn_server(&data_dir);

    // Submit four jobs over HTTP: HTTP acks without subscribing, so no
    // delivery can retire them — after a crash, the journal owes all four.
    let def = small_def(0.002);
    let ids: Vec<u64> = (0..4)
        .map(|seed| {
            let resp = http_to(
                addr,
                format!(
                    "POST /jobs?seed={seed} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{def}",
                    def.len()
                ),
            );
            assert!(resp.starts_with("HTTP/1.1 202"), "submit: {resp}");
            let body = resp.split("\r\n\r\n").nth(1).expect("body");
            body.trim()
                .trim_start_matches("{\"job\":")
                .trim_end_matches('}')
                .parse()
                .expect("job id")
        })
        .collect();

    // Read the first job's terminal status before the crash, so the
    // restarted server can be held to reproducing it. Fetching the status
    // (not the def) keeps the job undelivered and therefore owed: only a
    // `/def` fetch journals a delivery and may retire the job.
    let before = poll_done(addr, ids[0]);
    let before_stats = before
        .split_once("\"stats\":")
        .expect("pre-kill done status carries stats")
        .1
        .to_string();

    // Crash: SIGKILL, no drain, no flush. Then tear the journal tail the
    // way a crash mid-append would: garbage bytes after the last record.
    child.kill().expect("sigkill");
    let _ = child.wait();
    let wal_dir = data_dir.join("wal");
    let mut segs: Vec<_> = std::fs::read_dir(&wal_dir)
        .expect("wal dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segs.sort();
    let newest = segs.last().expect("at least one segment");
    let mut bytes = std::fs::read(newest).expect("read segment");
    bytes.extend_from_slice(&[0xAB; 17]);
    std::fs::write(newest, &bytes).expect("tear segment tail");

    // Restart on the same data directory: every acknowledged job must
    // reach a terminal state again — served from the journal or re-run.
    let (mut child, addr) = spawn_server(&data_dir);
    let mut after = String::new();
    for &id in &ids {
        let st = poll_done(addr, id);
        if id == ids[0] {
            after = st;
        }
    }
    // The job whose result was journalled `done` before the crash must be
    // served back with byte-identical stats, not re-run to a new answer.
    let after_stats = after
        .split_once("\"stats\":")
        .expect("post-kill done status carries stats")
        .1;
    assert_eq!(
        before_stats, after_stats,
        "recovered result must be byte-identical to the acknowledged one"
    );
    // And its DEF payload survived the crash intact.
    let def_resp = http_to(
        addr,
        format!("GET /jobs/{}/def HTTP/1.1\r\nHost: x\r\n\r\n", ids[0]),
    );
    assert!(def_resp.starts_with("HTTP/1.1 200"), "def: {def_resp}");
    let def_text = def_resp.split("\r\n\r\n").nth(1).expect("def body");
    let d = parse_def(def_text, Technology::contest()).expect("recovered def parses");
    assert!(legality::check(&d, false).is_empty());

    child.kill().expect("kill restarted server");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn query_answers_unknown_for_bogus_ids() {
    let (handle, dir) = start("query", |_| {});
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let st = client.query(9_999, TIMEOUT).expect("query");
    assert_eq!(st, state::UNKNOWN);
    handle.shutdown_graceful();
    let _ = std::fs::remove_dir_all(&dir);
}
